use mood_geo::GeoPoint;

/// One leg of a day plan: the agent moves linearly from `from` to `to`
/// during `[start_s, end_s)` (seconds within the day). A stationary dwell
/// has `from == to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Segment {
    pub start_s: i64,
    pub end_s: i64,
    pub from: GeoPoint,
    pub to: GeoPoint,
}

impl Segment {
    fn position_at(&self, t: i64) -> GeoPoint {
        if self.from == self.to || self.end_s <= self.start_s {
            return self.from;
        }
        let f = (t - self.start_s) as f64 / (self.end_s - self.start_s) as f64;
        self.from.lerp(&self.to, f)
    }
}

/// A simulated agent's itinerary for one day: a gap-free sequence of
/// dwell and travel segments covering the agent's active hours.
///
/// The plan is the simulator's intermediate representation: generators
/// build a plan per user-day and then sample GPS records from it at the
/// dataset's sampling interval.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DayPlan {
    segments: Vec<Segment>,
}

impl DayPlan {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Appends a stationary dwell at `place` during `[start_s, end_s)`.
    /// Empty or inverted intervals are ignored.
    pub(crate) fn dwell(&mut self, place: GeoPoint, start_s: i64, end_s: i64) {
        if end_s > start_s {
            self.segments.push(Segment {
                start_s,
                end_s,
                from: place,
                to: place,
            });
        }
    }

    /// Appends a travel leg from `from` to `to` during `[start_s, end_s)`.
    pub(crate) fn travel(&mut self, from: GeoPoint, to: GeoPoint, start_s: i64, end_s: i64) {
        if end_s > start_s {
            self.segments.push(Segment {
                start_s,
                end_s,
                from,
                to,
            });
        }
    }

    /// Number of segments in the plan.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Start of the first segment (seconds within the day), or `None` for
    /// an empty plan.
    pub fn start_s(&self) -> Option<i64> {
        self.segments.first().map(|s| s.start_s)
    }

    /// End of the last segment (seconds within the day), or `None` for an
    /// empty plan.
    pub fn end_s(&self) -> Option<i64> {
        self.segments.last().map(|s| s.end_s)
    }

    /// The agent's position at `t` seconds into the day, or `None` when
    /// `t` falls outside every segment (e.g. night hours).
    pub fn position_at(&self, t: i64) -> Option<GeoPoint> {
        // Segments are appended in time order; binary search the start.
        let idx = self.segments.partition_point(|s| s.end_s <= t);
        let seg = self.segments.get(idx)?;
        if t >= seg.start_s && t < seg.end_s {
            Some(seg.position_at(t))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    fn sample_plan() -> DayPlan {
        let home = p(46.20, 6.10);
        let work = p(46.24, 6.16);
        let mut plan = DayPlan::new();
        plan.dwell(home, 7 * 3600, 8 * 3600);
        plan.travel(home, work, 8 * 3600, 8 * 3600 + 1800);
        plan.dwell(work, 8 * 3600 + 1800, 17 * 3600);
        plan.travel(work, home, 17 * 3600, 17 * 3600 + 1800);
        plan.dwell(home, 17 * 3600 + 1800, 23 * 3600);
        plan
    }

    #[test]
    fn dwell_position_is_constant() {
        let plan = sample_plan();
        let a = plan.position_at(7 * 3600 + 100).unwrap();
        let b = plan.position_at(7 * 3600 + 3000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn travel_interpolates() {
        let plan = sample_plan();
        let mid = plan.position_at(8 * 3600 + 900).unwrap();
        let home = p(46.20, 6.10);
        let work = p(46.24, 6.16);
        assert!((mid.lat() - (home.lat() + work.lat()) / 2.0).abs() < 1e-9);
        // moving toward work over time
        let later = plan.position_at(8 * 3600 + 1500).unwrap();
        assert!(later.lat() > mid.lat());
    }

    #[test]
    fn outside_hours_is_none() {
        let plan = sample_plan();
        assert!(plan.position_at(3 * 3600).is_none()); // night
        assert!(plan.position_at(23 * 3600 + 1).is_none()); // after end
    }

    #[test]
    fn boundaries_are_half_open() {
        let plan = sample_plan();
        assert!(plan.position_at(7 * 3600).is_some());
        assert!(plan.position_at(23 * 3600).is_none());
    }

    #[test]
    fn degenerate_intervals_ignored() {
        let mut plan = DayPlan::new();
        plan.dwell(p(46.2, 6.1), 100, 100);
        plan.travel(p(46.2, 6.1), p(46.3, 6.2), 200, 150);
        assert_eq!(plan.segment_count(), 0);
        assert!(plan.start_s().is_none());
    }

    #[test]
    fn start_end_accessors() {
        let plan = sample_plan();
        assert_eq!(plan.start_s(), Some(7 * 3600));
        assert_eq!(plan.end_s(), Some(23 * 3600));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a random but well-formed plan: alternating dwells and
    /// travels over random places and durations.
    fn arb_plan() -> impl Strategy<Value = DayPlan> {
        proptest::collection::vec(((-0.04f64..0.04), (-0.04f64..0.04), 300i64..7200), 2..12)
            .prop_map(|stops| {
                let mut plan = DayPlan::new();
                let mut t = 6 * 3600;
                let mut here = GeoPoint::new(46.2, 6.1).unwrap();
                for (dlat, dlng, dur) in stops {
                    let next = GeoPoint::new(46.2 + dlat, 6.1 + dlng).unwrap();
                    let leg = 600;
                    plan.travel(here, next, t, t + leg);
                    t += leg;
                    plan.dwell(next, t, t + dur);
                    t += dur;
                    here = next;
                }
                plan
            })
    }

    proptest! {
        #[test]
        fn positions_exist_throughout_active_hours(plan in arb_plan()) {
            let (start, end) = (plan.start_s().unwrap(), plan.end_s().unwrap());
            let step = ((end - start) / 50).max(1);
            let mut t = start;
            while t < end {
                prop_assert!(plan.position_at(t).is_some(), "hole at {t}");
                t += step;
            }
        }

        #[test]
        fn movement_is_continuous(plan in arb_plan()) {
            // no teleports: consecutive stops are at most ~0.08° apart
            // (~11 km diagonal) covered in 600 s legs => < 20 m/s
            let (start, end) = (plan.start_s().unwrap(), plan.end_s().unwrap());
            let step = ((end - start) / 200).max(1);
            let mut t = start;
            let mut prev: Option<GeoPoint> = None;
            while t < end {
                if let Some(p) = plan.position_at(t) {
                    if let Some(q) = prev {
                        let speed = p.approx_distance(&q) / step as f64;
                        prop_assert!(speed < 25.0, "teleport at {t}: {speed} m/s");
                    }
                    prev = Some(p);
                } else {
                    prev = None;
                }
                t += step;
            }
        }

        #[test]
        fn positions_outside_plan_are_none(plan in arb_plan()) {
            let start = plan.start_s().unwrap();
            let end = plan.end_s().unwrap();
            prop_assert!(plan.position_at(start - 1).is_none());
            prop_assert!(plan.position_at(end).is_none());
        }
    }
}
