use rand::rngs::StdRng;
use rand::Rng;

use mood_geo::{GeoPoint, LocalProjection};
use mood_trace::{Dataset, Record, Timestamp, Trace, UserId};

use crate::plan::DayPlan;
use crate::rngs::{derive, normal};
use crate::DatasetSpec;

/// Seconds in a simulated day.
const DAY_S: i64 = 86_400;

/// RNG stream tags (second argument of [`derive`]); disjoint per purpose
/// so adding streams never perturbs existing ones.
const STREAM_ANCHORS: u64 = 1;
const STREAM_PERSONA: u64 = 2;
const STREAM_DAY: u64 = 3;
const STREAM_HOTSPOTS: u64 = 4;

/// Anchor places of a resident (shared verbatim inside a twin group).
#[derive(Debug, Clone)]
struct Anchors {
    home: GeoPoint,
    work: GeoPoint,
    lunch: GeoPoint,
    leisure: Vec<GeoPoint>,
}

/// Behavioural traits of a resident (shared inside a twin group so twins
/// stay confusable).
#[derive(Debug, Clone)]
struct ResidentTraits {
    /// Hour the agent's phone starts recording.
    active_start_h: f64,
    /// Hour recording stops.
    active_end_h: f64,
    /// Hour the commute to work begins.
    work_start_h: f64,
    /// Hour the commute home begins.
    work_end_h: f64,
    /// Probability of a lunch trip on a weekday.
    lunch_prob: f64,
    /// Probability of an evening leisure trip.
    leisure_prob: f64,
    /// Probability a day produces no data at all.
    day_skip_prob: f64,
    /// Travel speed in m/s (mixed walking / transit / driving).
    speed_mps: f64,
}

/// Generator for commuting-resident populations (MDC / Privamov / Geolife
/// stand-ins). See [`crate::PopulationModel::Residents`] for the meaning
/// of the two parameters.
#[derive(Debug, Clone)]
pub struct ResidentModel {
    distinct_fraction: f64,
    twin_group_size: usize,
}

impl ResidentModel {
    /// Creates a resident model.
    ///
    /// # Panics
    ///
    /// Panics when `distinct_fraction ∉ [0, 1]` or `twin_group_size < 2`.
    pub fn new(distinct_fraction: f64, twin_group_size: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&distinct_fraction),
            "distinct_fraction must be in [0, 1]"
        );
        assert!(twin_group_size >= 2, "twin groups need at least 2 members");
        Self {
            distinct_fraction,
            twin_group_size,
        }
    }

    /// Generates the dataset for `spec`.
    pub fn generate(&self, spec: &DatasetSpec) -> Dataset {
        let mut traces = Vec::with_capacity(spec.users);
        self.for_each_user(spec, &mut |user, records| {
            traces.push(Trace::new(user, records).expect("non-empty records"));
        });
        Dataset::from_traces(traces).expect("user ids unique by construction")
    }

    /// Simulates every user in id order, handing each non-empty record
    /// vector (time-sorted) to `sink`. This is the streaming core behind
    /// [`ResidentModel::generate`] and
    /// [`DatasetSpec::generate_store`](crate::DatasetSpec::generate_store):
    /// only one user's records are ever decoded at a time.
    pub(crate) fn for_each_user(
        &self,
        spec: &DatasetSpec,
        sink: &mut dyn FnMut(UserId, Vec<Record>),
    ) {
        let n = spec.users;
        let n_distinct = (n as f64 * self.distinct_fraction).round() as usize;

        // Anchor assignment: distinct users get their own anchor set;
        // the rest share a set per twin group (with small per-member
        // offsets applied below).
        let mut group_anchor_cache: Vec<Anchors> = Vec::new();
        let mut group_trait_cache: Vec<ResidentTraits> = Vec::new();

        for user_idx in 0..n {
            let (anchors, traits) = if user_idx < n_distinct {
                let mut rng = derive(spec.seed, STREAM_ANCHORS, user_idx as u64);
                (
                    Self::sample_anchors(spec, &mut rng),
                    Self::sample_traits(&mut derive(spec.seed, STREAM_PERSONA, user_idx as u64)),
                )
            } else {
                let group = (user_idx - n_distinct) / self.twin_group_size;
                while group_anchor_cache.len() <= group {
                    let g = group_anchor_cache.len() as u64;
                    let mut rng = derive(spec.seed, STREAM_ANCHORS, 1_000_000 + g);
                    group_anchor_cache.push(Self::sample_anchors(spec, &mut rng));
                    group_trait_cache.push(Self::sample_traits(&mut derive(
                        spec.seed,
                        STREAM_PERSONA,
                        1_000_000 + g,
                    )));
                }
                // Twins share anchors verbatim — that is what makes them
                // mutually confusable for profile-based attacks.
                (
                    group_anchor_cache[group].clone(),
                    group_trait_cache[group].clone(),
                )
            };

            let records = self.simulate_user(spec, user_idx, &anchors, &traits);
            if !records.is_empty() {
                sink(UserId::new(user_idx as u64), records);
            }
        }
    }

    /// Samples a fresh anchor set: home anywhere in the inner city, work
    /// at least 1.5 km away, lunch near work, two leisure places.
    fn sample_anchors(spec: &DatasetSpec, rng: &mut StdRng) -> Anchors {
        let bbox = spec.city.bbox();
        let sample_point = |rng: &mut StdRng| {
            bbox.point_at_fraction(rng.gen_range(0.08..0.92), rng.gen_range(0.08..0.92))
        };
        let home = sample_point(rng);
        let work = loop {
            let w = sample_point(rng);
            if home.approx_distance(&w) > 1_500.0 {
                break w;
            }
        };
        let proj = LocalProjection::new(work);
        let lunch = proj
            .displace(
                &work,
                rng.gen_range(0.0..360.0),
                rng.gen_range(200.0..500.0),
            )
            .expect("non-negative distance");
        let leisure = (0..2).map(|_| sample_point(rng)).collect();
        Anchors {
            home,
            work,
            lunch,
            leisure,
        }
    }

    /// Daily variation of the anchors (parking spot, building entrance):
    /// every agent-day displaces each anchor by a fresh ~45 m offset.
    ///
    /// This jitter is what keeps twin groups confusable: twins share the
    /// *same* base anchors, and because the day-level offsets do not
    /// average out below the offset scale within 15 days, a twin's
    /// learned POI centroids are as close to their twins' as to their
    /// own.
    fn day_anchors(base: &Anchors, rng: &mut StdRng) -> Anchors {
        let mut jitter = |p: &GeoPoint| {
            let proj = LocalProjection::new(*p);
            let (dx, dy) = (normal(rng, 0.0, 45.0), normal(rng, 0.0, 45.0));
            proj.to_geo(dx, dy)
        };
        Anchors {
            home: jitter(&base.home),
            work: jitter(&base.work),
            lunch: jitter(&base.lunch),
            leisure: base.leisure.iter().map(&mut jitter).collect(),
        }
    }

    fn sample_traits(rng: &mut StdRng) -> ResidentTraits {
        ResidentTraits {
            active_start_h: normal(rng, 7.0, 0.4).clamp(5.5, 8.5),
            active_end_h: normal(rng, 23.0, 0.4).clamp(21.5, 24.0),
            work_start_h: normal(rng, 8.5, 0.5).clamp(6.5, 10.5),
            work_end_h: normal(rng, 17.5, 0.5).clamp(15.5, 20.0),
            lunch_prob: rng.gen_range(0.1..0.5),
            leisure_prob: rng.gen_range(0.3..0.7),
            day_skip_prob: rng.gen_range(0.05..0.15),
            speed_mps: rng.gen_range(6.0..12.0),
        }
    }

    fn simulate_user(
        &self,
        spec: &DatasetSpec,
        user_idx: usize,
        anchors: &Anchors,
        traits: &ResidentTraits,
    ) -> Vec<Record> {
        let mut records = Vec::new();
        for day in 0..spec.days {
            let mut rng = derive(spec.seed, STREAM_DAY, (user_idx as u64) << 16 | day as u64);
            if rng.gen::<f64>() < traits.day_skip_prob {
                continue;
            }
            let today = Self::day_anchors(anchors, &mut rng);
            let weekend = day % 7 >= 5;
            let plan = if weekend {
                Self::weekend_plan(&today, traits, &mut rng)
            } else {
                Self::weekday_plan(&today, traits, &mut rng)
            };
            sample_plan(
                &plan,
                day as i64 * DAY_S,
                spec.sampling_interval_s,
                spec.gps_noise_m,
                &mut rng,
                &mut records,
            );
        }
        records
    }

    fn weekday_plan(anchors: &Anchors, traits: &ResidentTraits, rng: &mut StdRng) -> DayPlan {
        let mut plan = DayPlan::new();
        let h = |hours: f64| (hours * 3600.0) as i64;
        let start = h(traits.active_start_h + normal(rng, 0.0, 0.1));
        let end = h(traits.active_end_h + normal(rng, 0.0, 0.1));
        let depart = h(traits.work_start_h + normal(rng, 0.0, 0.25));
        let commute = travel_time(&anchors.home, &anchors.work, traits.speed_mps);
        let work_leave = h(traits.work_end_h + normal(rng, 0.0, 0.25));

        plan.dwell(anchors.home, start, depart);
        plan.travel(anchors.home, anchors.work, depart, depart + commute);

        let mut at_work_from = depart + commute;
        if rng.gen::<f64>() < traits.lunch_prob {
            let lunch_out = h(12.0 + normal(rng, 0.0, 0.2));
            if lunch_out > at_work_from + 600 {
                let walk = travel_time(&anchors.work, &anchors.lunch, 1.4);
                plan.dwell(anchors.work, at_work_from, lunch_out);
                plan.travel(anchors.work, anchors.lunch, lunch_out, lunch_out + walk);
                let lunch_end = lunch_out + walk + 2_400;
                plan.dwell(anchors.lunch, lunch_out + walk, lunch_end);
                plan.travel(anchors.lunch, anchors.work, lunch_end, lunch_end + walk);
                at_work_from = lunch_end + walk;
            }
        }
        plan.dwell(anchors.work, at_work_from, work_leave);

        let mut position = anchors.work;
        let mut t = work_leave;
        if rng.gen::<f64>() < traits.leisure_prob && !anchors.leisure.is_empty() {
            let spot = anchors.leisure[rng.gen_range(0..anchors.leisure.len())];
            let leg = travel_time(&position, &spot, traits.speed_mps);
            plan.travel(position, spot, t, t + leg);
            let stay = (rng.gen_range(1.0..2.5) * 3600.0) as i64;
            plan.dwell(spot, t + leg, t + leg + stay);
            position = spot;
            t = t + leg + stay;
        }
        let leg_home = travel_time(&position, &anchors.home, traits.speed_mps);
        plan.travel(position, anchors.home, t, t + leg_home);
        plan.dwell(anchors.home, t + leg_home, end.max(t + leg_home + 600));
        plan
    }

    fn weekend_plan(anchors: &Anchors, traits: &ResidentTraits, rng: &mut StdRng) -> DayPlan {
        let mut plan = DayPlan::new();
        let h = |hours: f64| (hours * 3600.0) as i64;
        let start = h(traits.active_start_h + normal(rng, 0.0, 0.3) + 1.0);
        let end = h(traits.active_end_h + normal(rng, 0.0, 0.2));
        let mut position = anchors.home;
        let mut t = start;
        let outings = if anchors.leisure.is_empty() {
            0
        } else {
            rng.gen_range(0..=2)
        };
        // morning at home
        let first_out = h(rng.gen_range(9.5..11.5));
        plan.dwell(anchors.home, t, first_out);
        t = first_out;
        for _ in 0..outings {
            let spot = anchors.leisure[rng.gen_range(0..anchors.leisure.len())];
            let leg = travel_time(&position, &spot, traits.speed_mps);
            plan.travel(position, spot, t, t + leg);
            let stay = (rng.gen_range(1.5..3.0) * 3600.0) as i64;
            plan.dwell(spot, t + leg, t + leg + stay);
            position = spot;
            t = t + leg + stay;
        }
        let leg_home = travel_time(&position, &anchors.home, traits.speed_mps);
        plan.travel(position, anchors.home, t, t + leg_home);
        plan.dwell(anchors.home, t + leg_home, end.max(t + leg_home + 600));
        plan
    }
}

/// Generator for taxi-fleet populations (Cabspotting stand-in). All
/// drivers sample fares from one shared weighted hotspot pool; a
/// configurable fraction is additionally biased toward the hotspots
/// nearest its depot, which makes those drivers' heatmaps distinctive.
#[derive(Debug, Clone)]
pub struct TaxiModel {
    biased_fraction: f64,
    hotspot_count: usize,
}

impl TaxiModel {
    /// Creates a taxi model.
    ///
    /// # Panics
    ///
    /// Panics when `biased_fraction ∉ [0, 1]` or `hotspot_count < 4`.
    pub fn new(biased_fraction: f64, hotspot_count: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&biased_fraction),
            "biased_fraction must be in [0, 1]"
        );
        assert!(hotspot_count >= 4, "need at least 4 hotspots");
        Self {
            biased_fraction,
            hotspot_count,
        }
    }

    /// Generates the dataset for `spec`.
    pub fn generate(&self, spec: &DatasetSpec) -> Dataset {
        let mut traces = Vec::with_capacity(spec.users);
        self.for_each_user(spec, &mut |user, records| {
            traces.push(Trace::new(user, records).expect("non-empty records"));
        });
        Dataset::from_traces(traces).expect("user ids unique by construction")
    }

    /// Simulates every driver in id order, handing each non-empty record
    /// vector (time-sorted) to `sink`. Streaming core behind
    /// [`TaxiModel::generate`] and
    /// [`DatasetSpec::generate_store`](crate::DatasetSpec::generate_store).
    pub(crate) fn for_each_user(
        &self,
        spec: &DatasetSpec,
        sink: &mut dyn FnMut(UserId, Vec<Record>),
    ) {
        let bbox = spec.city.bbox();
        // Shared hotspot pool with zipf-ish weights.
        let mut pool_rng = derive(spec.seed, STREAM_HOTSPOTS, 0);
        let hotspots: Vec<GeoPoint> = (0..self.hotspot_count)
            .map(|_| {
                bbox.point_at_fraction(
                    pool_rng.gen_range(0.05..0.95),
                    pool_rng.gen_range(0.05..0.95),
                )
            })
            .collect();
        let weights: Vec<f64> = (0..self.hotspot_count)
            .map(|k| 1.0 / (k as f64 + 1.0).powf(0.7))
            .collect();

        let n = spec.users;
        let n_biased = (n as f64 * self.biased_fraction).round() as usize;
        for user_idx in 0..n {
            let mut persona_rng = derive(spec.seed, STREAM_PERSONA, user_idx as u64);
            let shift_start_h: f64 = normal(&mut persona_rng, 8.0, 2.5).clamp(0.0, 13.0);
            let shift_len_h: f64 = persona_rng.gen_range(8.0..11.0);
            let day_skip: f64 = persona_rng.gen_range(0.05..0.15);
            // Biased drivers prefer the hotspots nearest a random
            // cruising anchor — a *neighbourhood*-level signature. The
            // triple's hotspots sit a few km apart: distinct 800 m cells
            // (so AP-Attack can fingerprint the driver on raw data) but
            // close enough that TRL's 1 km smearing blends the
            // neighbourhood into its surroundings, reproducing the
            // paper's TRL-beats-HMC crossover on the taxi fleet.
            // Unbiased drivers all sample the same global pool and stay
            // interchangeable.
            let bias = if user_idx < n_biased {
                let anchor = bbox.point_at_fraction(
                    persona_rng.gen_range(0.1..0.9),
                    persona_rng.gen_range(0.1..0.9),
                );
                let mut by_dist: Vec<usize> = (0..hotspots.len()).collect();
                by_dist.sort_by(|&a, &b| {
                    anchor
                        .approx_distance(&hotspots[a])
                        .partial_cmp(&anchor.approx_distance(&hotspots[b]))
                        .expect("distances are finite")
                });
                Some((by_dist[..3].to_vec(), persona_rng.gen_range(0.65..0.9)))
            } else {
                None
            };

            let mut records = Vec::new();
            for day in 0..spec.days {
                let mut rng = derive(spec.seed, STREAM_DAY, (user_idx as u64) << 16 | day as u64);
                if rng.gen::<f64>() < day_skip {
                    continue;
                }
                let plan = Self::shift_plan(
                    &hotspots,
                    &weights,
                    bias.as_ref(),
                    shift_start_h,
                    shift_len_h,
                    &mut rng,
                );
                sample_plan(
                    &plan,
                    day as i64 * DAY_S,
                    spec.sampling_interval_s,
                    spec.gps_noise_m,
                    &mut rng,
                    &mut records,
                );
            }
            if !records.is_empty() {
                sink(UserId::new(user_idx as u64), records);
            }
        }
    }

    fn pick_hotspot(
        hotspots: &[GeoPoint],
        weights: &[f64],
        bias: Option<&(Vec<usize>, f64)>,
        rng: &mut StdRng,
    ) -> GeoPoint {
        if let Some((preferred, p)) = bias {
            if rng.gen::<f64>() < *p {
                return hotspots[preferred[rng.gen_range(0..preferred.len())]];
            }
        }
        // weighted sample from the global pool
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return hotspots[i];
            }
        }
        hotspots[hotspots.len() - 1]
    }

    /// One shift: recording runs from the first pickup to the last
    /// dropoff (fare-based recording, like Cabspotting's meters) — no
    /// depot appears in the trace, so drivers carry no trivial home-base
    /// fingerprint.
    fn shift_plan(
        hotspots: &[GeoPoint],
        weights: &[f64],
        bias: Option<&(Vec<usize>, f64)>,
        shift_start_h: f64,
        shift_len_h: f64,
        rng: &mut StdRng,
    ) -> DayPlan {
        const TAXI_SPEED: f64 = 9.0; // m/s ≈ 32 km/h urban average
        let mut plan = DayPlan::new();
        let start = ((shift_start_h + normal(rng, 0.0, 0.3)).clamp(0.0, 14.0) * 3600.0) as i64;
        let end = start + (shift_len_h * 3600.0) as i64;
        let mut t = start;
        let mut position = Self::pick_hotspot(hotspots, weights, bias, rng);
        while t < end {
            let pickup = Self::pick_hotspot(hotspots, weights, bias, rng);
            let deadhead = travel_time(&position, &pickup, TAXI_SPEED);
            plan.travel(position, pickup, t, t + deadhead);
            t += deadhead;
            let wait: i64 = rng.gen_range(120..360);
            plan.dwell(pickup, t, t + wait);
            t += wait;
            let dropoff = Self::pick_hotspot(hotspots, weights, bias, rng);
            let ride = travel_time(&pickup, &dropoff, TAXI_SPEED);
            plan.travel(pickup, dropoff, t, t + ride);
            t += ride;
            let idle: i64 = rng.gen_range(300..900);
            plan.dwell(dropoff, t, t + idle);
            t += idle;
            position = dropoff;
        }
        plan
    }
}

/// Travel time in seconds between two points at `speed_mps`, minimum 60 s.
fn travel_time(from: &GeoPoint, to: &GeoPoint, speed_mps: f64) -> i64 {
    ((from.approx_distance(to) / speed_mps) as i64).max(60)
}

/// Samples GPS records from `plan` every `interval_s` seconds, adding
/// per-axis gaussian noise of `noise_m` meters and a 3 % per-record
/// dropout; appends to `out` with timestamps offset by `day_offset_s`.
fn sample_plan(
    plan: &DayPlan,
    day_offset_s: i64,
    interval_s: i64,
    noise_m: f64,
    rng: &mut StdRng,
    out: &mut Vec<Record>,
) {
    let (Some(start), Some(end)) = (plan.start_s(), plan.end_s()) else {
        return;
    };
    // Random phase so records of different users don't align.
    let mut t = start + rng.gen_range(0..interval_s.max(1));
    while t < end {
        if let Some(p) = plan.position_at(t) {
            if rng.gen::<f64>() >= 0.03 {
                let noisy = if noise_m > 0.0 {
                    let proj = LocalProjection::new(p);
                    proj.to_geo(normal(rng, 0.0, noise_m), normal(rng, 0.0, noise_m))
                } else {
                    p
                };
                out.push(Record::new(noisy, Timestamp::from_unix(day_offset_s + t)));
            }
        }
        t += interval_s.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use mood_trace::TimeDelta;

    #[test]
    fn resident_dataset_is_deterministic() {
        let spec = presets::mdc_like().scaled(0.05);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn taxi_dataset_is_deterministic() {
        let spec = presets::cabspotting_like().scaled(0.02);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = presets::mdc_like().scaled(0.05);
        let mut other = spec.clone();
        other.seed = spec.seed + 1;
        assert_ne!(spec.generate(), other.generate());
    }

    #[test]
    fn records_stay_near_city() {
        let spec = presets::privamov_like().scaled(0.1);
        let ds = spec.generate();
        // GPS noise can push a little outside the box; 2 km margin
        let expanded = spec.city.bbox().expanded(2_000.0).unwrap();
        for trace in ds.iter() {
            for r in trace.records() {
                assert!(expanded.contains(&r.point()), "record off-map: {r}");
            }
        }
    }

    #[test]
    fn traces_span_the_simulated_month() {
        let spec = presets::mdc_like().scaled(0.05);
        let ds = spec.generate();
        for trace in ds.iter() {
            assert!(trace.duration() > TimeDelta::from_days(20));
            assert!(trace.duration() <= TimeDelta::from_days(spec.days as i64));
        }
    }

    #[test]
    fn expected_record_volume() {
        let spec = presets::mdc_like().scaled(0.1);
        let ds = spec.generate();
        // ~16 active hours / interval, x days, x users, minus skips.
        let per_day = 16.0 * 3600.0 / spec.sampling_interval_s as f64;
        let upper = spec.users as f64 * spec.days as f64 * per_day * 1.3;
        let lower = spec.users as f64 * spec.days as f64 * per_day * 0.3;
        let got = ds.record_count() as f64;
        assert!(
            got > lower && got < upper,
            "volume {got}, [{lower}, {upper}]"
        );
    }

    #[test]
    fn residents_dwell_at_home_and_work() {
        use mood_models_free::count_stationary_runs;
        let spec = presets::privamov_like().scaled(0.1);
        let ds = spec.generate();
        let trace = ds.iter().next().unwrap();
        // at least a handful of long stationary runs (home/work dwells)
        assert!(count_stationary_runs(trace, 150.0, 10) >= 4);
    }

    #[test]
    fn taxis_move_most_of_the_time() {
        use mood_models_free::count_stationary_runs;
        let spec = presets::cabspotting_like().scaled(0.02);
        let ds = spec.generate();
        let trace = ds.iter().next().unwrap();
        let runs = count_stationary_runs(trace, 150.0, 10);
        // fares keep cabs moving: long stationary runs are rare relative
        // to trace length
        assert!(
            (runs as f64) < trace.len() as f64 / 50.0,
            "{runs} stationary runs in {} records",
            trace.len()
        );
    }

    #[test]
    fn twin_groups_share_neighbourhoods() {
        // With 0 distinct users everyone is a twin; group anchors shared.
        let mut spec = presets::mdc_like().scaled(0.06);
        if let crate::PopulationModel::Residents {
            distinct_fraction, ..
        } = &mut spec.population
        {
            *distinct_fraction = 0.0;
        }
        let ds = spec.generate();
        let traces: Vec<&Trace> = ds.iter().collect();
        // users 0..k in the same group: their bounding boxes overlap
        let a = traces[0].bounding_box();
        let b = traces[1].bounding_box();
        let center_dist = a.center().approx_distance(&b.center());
        assert!(center_dist < 3_000.0, "twin centers {center_dist} m apart");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[test]
            fn any_seed_produces_wellformed_resident_data(seed in 0u64..1000) {
                let mut spec = presets::privamov_like().scaled(0.1);
                spec.seed = seed;
                let ds = spec.generate();
                prop_assert!(ds.user_count() > 0);
                let margin = spec.city.bbox().expanded(2_000.0).unwrap();
                for trace in ds.iter() {
                    // time-sorted by construction; spatially within city
                    for r in trace.records() {
                        prop_assert!(margin.contains(&r.point()));
                    }
                    prop_assert!(trace.duration() <= TimeDelta::from_days(spec.days as i64));
                }
            }

            #[test]
            fn any_seed_produces_wellformed_taxi_data(seed in 0u64..1000) {
                let mut spec = presets::cabspotting_like().scaled(0.015);
                spec.seed = seed;
                let ds = spec.generate();
                prop_assert!(ds.user_count() > 0);
                let margin = spec.city.bbox().expanded(2_000.0).unwrap();
                for trace in ds.iter() {
                    for r in trace.records() {
                        prop_assert!(margin.contains(&r.point()));
                    }
                }
            }
        }
    }

    /// tiny helpers usable without the models crate (avoids a dev-dep
    /// cycle)
    mod mood_models_free {
        use mood_trace::Trace;

        /// Counts maximal runs of >= `min_len` consecutive records that
        /// stay within `radius_m` of the run's first record.
        pub fn count_stationary_runs(trace: &Trace, radius_m: f64, min_len: usize) -> usize {
            let rs = trace.records();
            let mut runs = 0;
            let mut i = 0;
            while i < rs.len() {
                let origin = rs[i].point();
                let mut j = i + 1;
                while j < rs.len() && origin.approx_distance(&rs[j].point()) <= radius_m {
                    j += 1;
                }
                if j - i >= min_len {
                    runs += 1;
                }
                i = j.max(i + 1);
            }
            runs
        }
    }
}
