use serde::{Deserialize, Serialize};

use mood_trace::{Dataset, StoreConfig, TraceStore};

use crate::{CityModel, ResidentModel, TaxiModel};

/// Which population model generates the agents of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PopulationModel {
    /// Commuting residents with home/work/leisure anchors (the MDC,
    /// Privamov and Geolife stand-ins).
    Residents {
        /// Fraction of users with unique anchors. The rest are grouped
        /// into *twin groups* sharing anchors, which makes them naturally
        /// hard to re-identify (they impersonate each other).
        distinct_fraction: f64,
        /// Number of users per twin group (≥ 2).
        twin_group_size: usize,
    },
    /// A taxi fleet sampling fares from one shared hotspot pool (the
    /// Cabspotting stand-in).
    Taxis {
        /// Fraction of drivers biased toward the hotspots nearest their
        /// depot; biased drivers develop distinctive heatmaps.
        biased_fraction: f64,
        /// Number of shared fare hotspots in the city.
        hotspot_count: usize,
    },
}

/// Complete recipe for one synthetic dataset.
///
/// A spec is pure data: calling [`DatasetSpec::generate`] twice yields
/// identical datasets (all randomness derives from `seed`).
///
/// # Examples
///
/// ```
/// use mood_synth::presets;
///
/// let spec = presets::privamov_like().scaled(0.1);
/// let a = spec.generate();
/// let b = spec.generate();
/// assert_eq!(a, b); // bit-for-bit deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable dataset name (e.g. "mdc-like").
    pub name: String,
    /// The city agents move in.
    pub city: CityModel,
    /// Population model (residents or taxis).
    pub population: PopulationModel,
    /// Number of users.
    pub users: usize,
    /// Number of simulated days (the paper uses the 30 most active days).
    pub days: u32,
    /// Seconds between GPS fixes while an agent is active.
    pub sampling_interval_s: i64,
    /// GPS noise standard deviation in meters (per axis).
    pub gps_noise_m: f64,
    /// Master seed; every stream of randomness derives from it.
    pub seed: u64,
}

impl DatasetSpec {
    /// A copy of the spec scaled to `factor` of the original record
    /// volume: user count is multiplied by `factor` (minimum 2 users,
    /// and at least one twin group's worth for resident populations).
    /// Use small factors for tests, `1.0` for the paper-scale runs.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let mut spec = self.clone();
        spec.users = ((self.users as f64 * factor).round() as usize).max(4);
        spec
    }

    /// Generates the dataset described by this spec.
    pub fn generate(&self) -> Dataset {
        match &self.population {
            PopulationModel::Residents {
                distinct_fraction,
                twin_group_size,
            } => ResidentModel::new(*distinct_fraction, *twin_group_size).generate(self),
            PopulationModel::Taxis {
                biased_fraction,
                hotspot_count,
            } => TaxiModel::new(*biased_fraction, *hotspot_count).generate(self),
        }
    }

    /// Generates the dataset straight into a compressed [`TraceStore`]
    /// without ever materializing the full [`Dataset`]: each user's
    /// records are simulated, appended, and sealed into chunks before
    /// the next user is simulated. Bit-for-bit equivalent to
    /// `TraceStore::from_dataset(&spec.generate(), config)` — the
    /// simulation order and randomness are identical.
    pub fn generate_store(&self, config: StoreConfig) -> TraceStore {
        let mut store = TraceStore::new(config);
        let mut sink = |user, records: Vec<mood_trace::Record>| {
            for record in records {
                store.append(user, record);
            }
        };
        match &self.population {
            PopulationModel::Residents {
                distinct_fraction,
                twin_group_size,
            } => ResidentModel::new(*distinct_fraction, *twin_group_size)
                .for_each_user(self, &mut sink),
            PopulationModel::Taxis {
                biased_fraction,
                hotspot_count,
            } => TaxiModel::new(*biased_fraction, *hotspot_count).for_each_user(self, &mut sink),
        }
        store.finish();
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn scaled_reduces_users() {
        let spec = presets::mdc_like();
        let small = spec.scaled(0.1);
        assert_eq!(small.users, (spec.users as f64 * 0.1).round() as usize);
        assert_eq!(small.days, spec.days);
    }

    #[test]
    fn scaled_floors_at_four_users() {
        let spec = presets::privamov_like();
        let tiny = spec.scaled(0.01);
        assert_eq!(tiny.users, 4);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_zero() {
        presets::mdc_like().scaled(0.0);
    }

    #[test]
    fn generate_store_matches_generate() {
        for spec in [
            presets::privamov_like().scaled(0.05),
            presets::cabspotting_like().scaled(0.05),
        ] {
            let dataset = spec.generate();
            let store = spec.generate_store(StoreConfig::default().with_seal_records(16));
            assert!(store.stats().chunks >= store.user_count());
            assert_eq!(
                store.to_dataset(),
                dataset,
                "{} store != dataset",
                spec.name
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let spec = presets::cabspotting_like();
        let json = serde_json::to_string(&spec).unwrap();
        let back: DatasetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
