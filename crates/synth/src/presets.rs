//! One [`DatasetSpec`] per paper dataset (Table 1), scaled to laptop
//! size.
//!
//! | preset | paper dataset | users | city | paper records | target records |
//! |---|---|---|---|---|---|
//! | [`mdc_like`] | MDC | 141 | Geneva | 904 282 | ~0.9 M |
//! | [`privamov_like`] | Privamov | 41 | Lyon | 948 965 | ~0.7 M |
//! | [`geolife_like`] | Geolife | 41 | Beijing | 1 468 989 | ~1.1 M |
//! | [`cabspotting_like`] | Cabspotting | 531 | San Francisco | 11 179 014 | ~1.6 M |
//!
//! User counts, the 30-day horizon and the **relative** dataset sizes
//! match the paper; absolute record counts are scaled down (by roughly
//! 10x on Cabspotting) via the GPS sampling interval so the full
//! experiment suite runs on one machine. The `distinct_fraction` /
//! `biased_fraction` knobs are calibrated so the no-LPPM re-identification
//! rates land near the paper's (76–90 % on resident datasets, ~50 % on
//! the taxi fleet).

use crate::{CityModel, DatasetSpec, PopulationModel};

/// Master seed shared by all presets; change it to draw a fresh universe.
pub const PRESET_SEED: u64 = 0x4d6f_6f44; // "MooD"

/// MDC stand-in: 141 residents of Geneva (paper: 141 users, 904 282
/// records).
pub fn mdc_like() -> DatasetSpec {
    DatasetSpec {
        name: "mdc-like".into(),
        city: CityModel::geneva(),
        population: PopulationModel::Residents {
            distinct_fraction: 0.58,
            twin_group_size: 4,
        },
        users: 141,
        days: 30,
        sampling_interval_s: 270,
        gps_noise_m: 15.0,
        seed: PRESET_SEED ^ 1,
    }
}

/// Privamov stand-in: 41 residents of Lyon (paper: 41 users, 948 965
/// records; the most re-identifiable dataset).
pub fn privamov_like() -> DatasetSpec {
    DatasetSpec {
        name: "privamov-like".into(),
        city: CityModel::lyon(),
        population: PopulationModel::Residents {
            distinct_fraction: 0.80,
            twin_group_size: 4,
        },
        users: 41,
        days: 30,
        sampling_interval_s: 100,
        gps_noise_m: 12.0,
        seed: PRESET_SEED ^ 2,
    }
}

/// Geolife stand-in: 41 active residents of Beijing (paper: 41 users,
/// 1 468 989 records).
pub fn geolife_like() -> DatasetSpec {
    DatasetSpec {
        name: "geolife-like".into(),
        city: CityModel::beijing(),
        population: PopulationModel::Residents {
            distinct_fraction: 0.62,
            twin_group_size: 4,
        },
        users: 41,
        days: 30,
        sampling_interval_s: 65,
        gps_noise_m: 15.0,
        seed: PRESET_SEED ^ 3,
    }
}

/// Cabspotting stand-in: 531 San Francisco taxis (paper: 531 cabs,
/// 11 179 014 records; ~half the fleet naturally protected).
pub fn cabspotting_like() -> DatasetSpec {
    DatasetSpec {
        name: "cabspotting-like".into(),
        city: CityModel::san_francisco(),
        population: PopulationModel::Taxis {
            biased_fraction: 0.60,
            hotspot_count: 90,
        },
        users: 531,
        days: 30,
        sampling_interval_s: 300,
        gps_noise_m: 10.0,
        seed: PRESET_SEED ^ 4,
    }
}

/// All four presets in the paper's (Table 1) order:
/// Cabspotting, Geolife, MDC, Privamov.
pub fn all() -> Vec<DatasetSpec> {
    vec![
        cabspotting_like(),
        geolife_like(),
        mdc_like(),
        privamov_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_user_counts_match_paper() {
        assert_eq!(mdc_like().users, 141);
        assert_eq!(privamov_like().users, 41);
        assert_eq!(geolife_like().users, 41);
        assert_eq!(cabspotting_like().users, 531);
    }

    #[test]
    fn all_presets_use_30_days() {
        for spec in all() {
            assert_eq!(spec.days, 30, "{}", spec.name);
        }
    }

    #[test]
    fn preset_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = all().iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn relative_sizes_preserve_paper_order() {
        // generate small scaled variants and compare records *per user*
        // scaled by interval: cab fleet must be the biggest total dataset.
        // (Full-scale check happens in the table1 experiment.)
        let cab = cabspotting_like().scaled(0.02).generate().record_count();
        assert!(cab > 0);
    }
}
