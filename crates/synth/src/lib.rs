//! Synthetic mobility workloads for the MooD reproduction.
//!
//! The paper evaluates on four real datasets (MDC, Privamov, Geolife,
//! Cabspotting) that cannot be redistributed. This crate generates
//! synthetic stand-ins that preserve exactly the structure the paper's
//! attacks and LPPMs interact with:
//!
//! * **Residents** ([`ResidentModel`]) — agents with home/work/leisure
//!   anchor places, commuting schedules, GPS noise and day-level dropout.
//!   A configurable fraction of users are *distinct* (unique anchors →
//!   naturally re-identifiable); the rest are placed in *twin groups*
//!   sharing anchors (→ naturally confused with their twins, like the
//!   paper's naturally protected users).
//! * **Taxis** ([`TaxiModel`]) — a fleet sampling fares from one shared
//!   hotspot pool, with a configurable fraction of drivers biased toward
//!   a home neighbourhood. Fleet homogeneity is why roughly half of
//!   Cabspotting is naturally protected (paper §4.3).
//!
//! [`presets`] provides one [`DatasetSpec`] per paper dataset, scaled to
//! laptop size, with fixed seeds for bit-for-bit reproducibility.
//!
//! # Examples
//!
//! ```
//! use mood_synth::presets;
//!
//! // a miniature MDC-like dataset for tests
//! let spec = presets::mdc_like().scaled(0.05);
//! let ds = spec.generate();
//! assert!(ds.user_count() > 0);
//! assert!(ds.record_count() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod city;
mod generator;
mod plan;
pub mod presets;
mod rngs;
mod spec;

pub use city::CityModel;
pub use generator::{ResidentModel, TaxiModel};
pub use plan::DayPlan;
pub use spec::{DatasetSpec, PopulationModel};
