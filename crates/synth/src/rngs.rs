//! Deterministic RNG derivation.
//!
//! Every user and every simulated day gets its own `StdRng` derived from
//! the dataset seed, so generated datasets are identical bit-for-bit
//! regardless of generation order or parallelism.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — mixes a 64-bit value into an avalanche-quality
/// hash. Used to derive independent RNG streams from (seed, stream, sub).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent RNG for `(seed, stream, substream)`.
pub fn derive(seed: u64, stream: u64, substream: u64) -> StdRng {
    let mixed = splitmix64(seed ^ splitmix64(stream ^ splitmix64(substream)));
    StdRng::seed_from_u64(mixed)
}

/// Samples a normal variate via Box–Muller (avoids a rand_distr
/// dependency).
pub fn normal(rng: &mut impl rand::Rng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-15);
    let u2: f64 = rng.gen();
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        let mut a = derive(42, 1, 2);
        let mut b = derive(42, 1, 2);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = derive(42, 1, 0);
        let mut b = derive(42, 2, 0);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = derive(7, 0, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
