use serde::{Deserialize, Serialize};

use mood_geo::BoundingBox;

/// A named city extent for workload generation.
///
/// The four presets correspond to the cities of the paper's datasets
/// (Table 1): Geneva (MDC), Lyon (Privamov), Beijing (Geolife) and
/// San Francisco (Cabspotting). Boxes cover the dense urban core — about
/// 10–25 km on a side — which is where the simulated agents live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityModel {
    name: String,
    bbox: BoundingBox,
}

impl CityModel {
    /// Creates a city from a name and extent.
    pub fn new(name: impl Into<String>, bbox: BoundingBox) -> Self {
        Self {
            name: name.into(),
            bbox,
        }
    }

    /// Geneva, Switzerland — the MDC dataset's city.
    pub fn geneva() -> Self {
        Self::new(
            "Geneva",
            BoundingBox::new(46.15, 46.26, 6.05, 6.22).expect("preset box valid"),
        )
    }

    /// Lyon, France — the Privamov dataset's city.
    pub fn lyon() -> Self {
        Self::new(
            "Lyon",
            BoundingBox::new(45.70, 45.81, 4.78, 4.93).expect("preset box valid"),
        )
    }

    /// Beijing, China — the Geolife dataset's city.
    pub fn beijing() -> Self {
        Self::new(
            "Beijing",
            BoundingBox::new(39.80, 40.05, 116.25, 116.55).expect("preset box valid"),
        )
    }

    /// San Francisco, USA — the Cabspotting dataset's city.
    pub fn san_francisco() -> Self {
        Self::new(
            "San Francisco",
            BoundingBox::new(37.70, 37.82, -122.52, -122.36).expect("preset box valid"),
        )
    }

    /// City name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// City extent.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }
}

impl std::fmt::Display for CityModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.name, self.bbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_reasonable_extents() {
        for city in [
            CityModel::geneva(),
            CityModel::lyon(),
            CityModel::beijing(),
            CityModel::san_francisco(),
        ] {
            let b = city.bbox();
            assert!(b.height_m() > 5_000.0, "{} too small", city.name());
            assert!(b.height_m() < 50_000.0, "{} too big", city.name());
            assert!(b.width_m() > 5_000.0);
            assert!(b.width_m() < 50_000.0);
        }
    }

    #[test]
    fn names_match() {
        assert_eq!(CityModel::geneva().name(), "Geneva");
        assert_eq!(CityModel::san_francisco().name(), "San Francisco");
    }

    #[test]
    fn serde_roundtrip() {
        let c = CityModel::lyon();
        let json = serde_json::to_string(&c).unwrap();
        let back: CityModel = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
