//! `mood` — deployment CLI for the MooD mobility-privacy middleware.
//!
//! Subcommands:
//!
//! * `mood synth`   — generate a synthetic mobility dataset (CSV)
//! * `mood split`   — chronological train/test split of a CSV dataset
//! * `mood protect` — protect a dataset with MooD and publish pseudonymized CSV
//! * `mood ingest`  — stream a CSV into the compressed chunked trace store
//!   (bounded memory) and optionally protect it from there
//! * `mood attack`  — run the re-identification attacks against a dataset
//! * `mood eval`    — count-query utility of a protected dataset vs the original
//! * `mood serve`   — run the long-running HTTP protection service
//! * `mood trace`   — protect a dataset with tracing on, dump a Chrome trace
//!
//! Run `mood help` for per-command usage.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mood_core::obs::{chrome_trace, StageAgg, TraceSpans};
use mood_core::{publish, EngineBuilder, ExecutorKind, MoodConfig, ENGINE_STAGES};
use mood_geo::Grid;
use mood_metrics::CountQueryStats;
use mood_serve::{ChaosConfig, MoodServer, ServeConfig};
use mood_synth::presets;
use mood_trace::{io as trace_io, StoreConfig, TimeDelta};

const USAGE: &str = "\
mood — MObility Data privacy as Orphan Disease (Middleware '19)

USAGE:
  mood synth   --preset <mdc|privamov|geolife|cabspotting> --out <file.csv>
               [--scale <0..1>] [--seed <n>]
  mood split   --input <file.csv> --train <out.csv> --test <out.csv>
               [--train-days <n=15>]
  mood protect --input <test.csv> --background <train.csv> --out <file.csv>
               [--report <file.json>] [--threads <n>]
               [--executor <sequential|pool|steal|persistent>]
               [--delta-hours <n=4>] [--window-hours <n=24>] [--seed <n>] [--quiet <0|1>]
  mood ingest  --input <file.csv> [--store-budget <bytes=67108864>]
               [--chunk-records <n=4096>] [--seal-records <n=512>]
               [--background <train.csv>] [--out <file.csv>] [--report <file.json>]
               [--threads <n>] [--executor <sequential|pool|steal|persistent>]
               [--delta-hours <n=4>] [--window-hours <n=24>] [--seed <n>] [--quiet <0|1>]
  mood attack  --input <file.csv> --background <train.csv>
               [--threads <n>] [--executor <sequential|pool|steal|persistent>]
  mood eval    --original <file.csv> --protected <file.csv> [--cell-m <n=800>]
  mood serve   --background <train.csv> [--addr <host:port=127.0.0.1:7079>]
               [--threads <n>] [--executor <sequential|pool|steal|persistent>]
               [--workers <n>] [--seed <n>] [--max-requests <n=0 (forever)>]
               [--budget <n>] [--chaos-profile <drop|shed|delay|panic|truncate|all|a+b>]
               [--chaos-seed <n>] [--tracing <0|1=1>] [--legacy-metric-names <0|1=0>]
  mood trace   --input <test.csv> --background <train.csv> --trace-out <file.json>
               [--seed <n>] [--delta-hours <n=4>] [--window-hours <n=24>]
               [--limit-users <n=0 (all)>]
  mood help

`mood protect` streams per-user progress to stderr as results complete;
--executor selects the execution backend for the user-level fan-out and
`mood attack`'s per-trace fan-out (default: persistent, a long-lived
pool of parked workers — threads are spawned once per run, not once per
batch).

`mood ingest` streams a CSV into the compressed, chunked trace store
without ever materializing the file: rows are parsed line by line,
buffered per user and sealed into delta-encoded chunks, so peak memory
is bounded by --store-budget (the decoded-trace cache) plus small
per-user ingest buffers — not by corpus size. With --background it then
protects the corpus straight from the store (chunk-at-a-time decode),
producing a report and published CSV byte-identical to `mood protect`
on the same inputs.

`mood serve` runs the online middleware: POST /v1/protect (one trace),
POST /v1/protect/batch (many, via protect_stream), GET /healthz,
GET /v1/config, GET /metrics. --seed is the server seed of the
per-request determinism contract; --max-requests N serves N responses
then shuts down cleanly (for smoke tests), 0 means run until killed.
--budget caps candidates scored per request (over-budget responses are
served degraded, deterministically); --chaos-profile arms seeded fault
injection (drop/shed/delay/panic/truncate, `+`-combinable; counted in
/metrics) with --chaos-seed picking the fault stream. Tracing (the
flight recorder behind GET /v1/debug/trace plus per-stage histograms
in /metrics) is on by default; --tracing 0 serves untraced.
--legacy-metric-names 1 additionally emits the old unprefixed
attack_scratch_reuses_total / heatmap_cache_total series during a
dashboard migration (the primary names are now mood_serve_-prefixed).

`mood trace` protects a dataset sequentially with per-stage tracing on
and writes --trace-out as Chrome-trace-viewer JSON (load it in
chrome://tracing or https://ui.perfetto.dev): one lane per user, one
span per engine stage. Span ids are deterministic — derived from
(--seed, user index), never wall-clock — so two runs produce the same
trace structure; only the measured durations differ.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "synth" => cmd_synth(&opts),
        "split" => cmd_split(&opts),
        "protect" => cmd_protect(&opts),
        "ingest" => cmd_ingest(&opts),
        "attack" => cmd_attack(&opts),
        "eval" => cmd_eval(&opts),
        "serve" => cmd_serve(&opts),
        "trace" => cmd_trace(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs; repeated keys keep the last value.
fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_or<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for --{key}")),
    }
}

/// Parses the shared `--threads` (default: available parallelism) and
/// `--executor` (default: persistent) flags used by `protect` and
/// `attack`.
fn executor_opts(opts: &HashMap<String, String>) -> Result<(usize, ExecutorKind), String> {
    let threads: usize = parse_or(
        opts,
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    )?;
    let kind: ExecutorKind = match opts.get("executor") {
        None => ExecutorKind::Persistent,
        Some(name) => name.parse()?,
    };
    Ok((threads.max(1), kind))
}

fn cmd_synth(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = required(opts, "preset")?;
    let out = required(opts, "out")?;
    let scale: f64 = parse_or(opts, "scale", 1.0)?;
    let mut spec = match preset {
        "mdc" => presets::mdc_like(),
        "privamov" => presets::privamov_like(),
        "geolife" => presets::geolife_like(),
        "cabspotting" => presets::cabspotting_like(),
        other => return Err(format!("unknown preset '{other}'")),
    };
    if let Some(seed) = opts.get("seed") {
        spec.seed = seed.parse().map_err(|_| "invalid --seed".to_string())?;
    }
    let spec = if scale < 1.0 {
        spec.scaled(scale)
    } else {
        spec
    };
    let ds = spec.generate();
    trace_io::write_csv_file(&ds, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} users, {} records)",
        out,
        ds.user_count(),
        ds.record_count()
    );
    Ok(())
}

fn cmd_split(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = required(opts, "input")?;
    let train_out = required(opts, "train")?;
    let test_out = required(opts, "test")?;
    let days: i64 = parse_or(opts, "train-days", 15)?;
    if days <= 0 {
        return Err("--train-days must be positive".into());
    }
    let ds = trace_io::read_csv_file(input).map_err(|e| e.to_string())?;
    let (train, test) = ds.split_chronological(TimeDelta::from_days(days));
    trace_io::write_csv_file(&train, train_out).map_err(|e| e.to_string())?;
    trace_io::write_csv_file(&test, test_out).map_err(|e| e.to_string())?;
    println!(
        "split {} users: train {} records -> {train_out}, test {} records -> {test_out}",
        train.user_count(),
        train.record_count(),
        test.record_count()
    );
    Ok(())
}

fn cmd_protect(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = required(opts, "input")?;
    let background_path = required(opts, "background")?;
    let out = required(opts, "out")?;
    let (threads, executor_kind) = executor_opts(opts)?;
    let quiet: u8 = parse_or(opts, "quiet", 0)?;
    let delta_hours: i64 = parse_or(opts, "delta-hours", 4)?;
    let window_hours: i64 = parse_or(opts, "window-hours", 24)?;
    let seed: u64 = parse_or(opts, "seed", MoodConfig::paper_default().seed)?;
    if delta_hours <= 0 || window_hours <= 0 {
        return Err("--delta-hours and --window-hours must be positive".into());
    }

    let background = trace_io::read_csv_file(background_path).map_err(|e| e.to_string())?;
    let test = trace_io::read_csv_file(input).map_err(|e| e.to_string())?;
    if background.is_empty() || test.is_empty() {
        return Err("input datasets must not be empty".into());
    }
    println!(
        "protecting {} users / {} records against POI+PIT+AP attacks \
         [{executor_kind} executor, {threads} threads]...",
        test.user_count(),
        test.record_count()
    );

    let mut config = MoodConfig::paper_default();
    config.delta = TimeDelta::from_hours(delta_hours);
    config.initial_window = Some(TimeDelta::from_hours(window_hours));
    config.seed = seed;
    // The thread budget goes to the user-level fan-out; the engine
    // keeps its sequential candidate executor. Parallelizing both
    // levels with the full budget would oversubscribe (threads ×
    // candidate batches of scoped threads per recursive split) and is
    // only worth it when users ≪ cores — batch protection is the
    // opposite regime.
    let executor = executor_kind.build(threads.max(1));
    let engine = EngineBuilder::paper_default(&background)
        .config(config)
        .build()
        .map_err(|e| e.to_string())?;

    // Stream per-user outcomes to stderr as they complete: on large
    // datasets the operator sees orphan users the moment they are
    // found, not minutes later when the whole batch lands.
    let total = test.user_count();
    let mut done = 0usize;
    let mut orphans = 0usize;
    let report = mood_core::protect_stream(&engine, &test, executor.as_ref(), |outcome| {
        done += 1;
        if outcome.class.is_orphan() {
            orphans += 1;
        }
        if quiet == 0 {
            eprint!(
                "\r  [{done}/{total}] protected, {orphans} orphan users (last: {} -> {})   ",
                outcome.user, outcome.class
            );
            let _ = std::io::stderr().flush();
        }
    })
    .map_err(|e| e.to_string())?;
    if quiet == 0 {
        eprintln!();
    }
    let (published, _ground_truth) = publish(report.outcomes());
    trace_io::write_csv_file(&published, out).map_err(|e| e.to_string())?;

    println!("\nprotection classes:");
    for (class, count) in &report.class_counts {
        println!("  {class}: {count}");
    }
    println!("data loss: {}", report.data_loss);
    println!(
        "published {} pseudonymous traces -> {out}",
        published.user_count()
    );
    if let Some(report_path) = opts.get("report") {
        let json = serde_json::to_string_pretty(&report.summary()).map_err(|e| e.to_string())?;
        std::fs::write(report_path, json).map_err(|e| e.to_string())?;
        println!("report -> {report_path}");
    }
    Ok(())
}

fn cmd_ingest(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = required(opts, "input")?;
    let budget: usize = parse_or(opts, "store-budget", 64 << 20)?;
    let chunk_records: usize = parse_or(opts, "chunk-records", 4096)?;
    let seal_records: usize = parse_or(opts, "seal-records", 512)?;
    if budget == 0 || chunk_records == 0 || seal_records == 0 {
        return Err("--store-budget, --chunk-records and --seal-records must be positive".into());
    }
    let quiet: u8 = parse_or(opts, "quiet", 0)?;

    let config = StoreConfig::default()
        .with_cache_budget(budget)
        .with_chunk_records(chunk_records)
        .with_seal_records(seal_records);
    let store = trace_io::stream_csv_file(input, config).map_err(|e| e.to_string())?;
    if store.is_empty() {
        return Err("input dataset must not be empty".into());
    }
    let stats = store.stats();
    let raw_bytes = stats.records * std::mem::size_of::<mood_trace::Record>();
    println!(
        "ingested {} users / {} records from {input} (streaming, never fully resident)",
        stats.users, stats.records
    );
    println!(
        "  chunks: {}, encoded: {} bytes ({:.2} bytes/record, {:.1}% of in-memory form)",
        stats.chunks,
        stats.encoded_bytes,
        stats.encoded_bytes as f64 / stats.records as f64,
        stats.encoded_bytes as f64 / raw_bytes as f64 * 100.0
    );
    println!(
        "  peak ingest buffer: {} bytes, compactions: {}, resorts: {}",
        stats.peak_buffer_bytes, stats.compactions, stats.resorts
    );

    let Some(background_path) = opts.get("background") else {
        println!("cache budget: {budget} bytes (pass --background to protect from the store)");
        return Ok(());
    };
    let (threads, executor_kind) = executor_opts(opts)?;
    let delta_hours: i64 = parse_or(opts, "delta-hours", 4)?;
    let window_hours: i64 = parse_or(opts, "window-hours", 24)?;
    let seed: u64 = parse_or(opts, "seed", MoodConfig::paper_default().seed)?;
    if delta_hours <= 0 || window_hours <= 0 {
        return Err("--delta-hours and --window-hours must be positive".into());
    }
    let background = trace_io::read_csv_file(background_path).map_err(|e| e.to_string())?;
    if background.is_empty() {
        return Err("background dataset must not be empty".into());
    }
    println!(
        "protecting {} users straight from the store [{executor_kind} executor, {threads} threads]...",
        store.user_count()
    );

    let mut config = MoodConfig::paper_default();
    config.delta = TimeDelta::from_hours(delta_hours);
    config.initial_window = Some(TimeDelta::from_hours(window_hours));
    config.seed = seed;
    let executor = executor_kind.build(threads.max(1));
    let engine = EngineBuilder::paper_default(&background)
        .config(config)
        .build()
        .map_err(|e| e.to_string())?;

    let total = store.user_count();
    let mut done = 0usize;
    let mut orphans = 0usize;
    let report = mood_core::protect_store_stream(&engine, &store, executor.as_ref(), |outcome| {
        done += 1;
        if outcome.class.is_orphan() {
            orphans += 1;
        }
        if quiet == 0 {
            eprint!(
                "\r  [{done}/{total}] protected, {orphans} orphan users (last: {} -> {})   ",
                outcome.user, outcome.class
            );
            let _ = std::io::stderr().flush();
        }
    })
    .map_err(|e| e.to_string())?;
    if quiet == 0 {
        eprintln!();
    }

    let stats = store.stats();
    println!(
        "store cache: budget {} bytes, peak resident {} bytes, hits {}, decodes {}, evictions: {}",
        stats.budget_bytes,
        stats.peak_resident_bytes,
        stats.cache_hits,
        stats.decodes,
        stats.evictions
    );
    println!("\nprotection classes:");
    for (class, count) in &report.class_counts {
        println!("  {class}: {count}");
    }
    println!("data loss: {}", report.data_loss);
    if let Some(out) = opts.get("out") {
        let (published, _ground_truth) = publish(report.outcomes());
        trace_io::write_csv_file(&published, out).map_err(|e| e.to_string())?;
        println!(
            "published {} pseudonymous traces -> {out}",
            published.user_count()
        );
    }
    if let Some(report_path) = opts.get("report") {
        let json = serde_json::to_string_pretty(&report.summary()).map_err(|e| e.to_string())?;
        std::fs::write(report_path, json).map_err(|e| e.to_string())?;
        println!("report -> {report_path}");
    }
    Ok(())
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = required(opts, "input")?;
    let background_path = required(opts, "background")?;
    let (threads, executor_kind) = executor_opts(opts)?;
    let background = trace_io::read_csv_file(background_path).map_err(|e| e.to_string())?;
    let target = trace_io::read_csv_file(input).map_err(|e| e.to_string())?;
    if background.is_empty() || target.is_empty() {
        return Err("input datasets must not be empty".into());
    }
    let suite = mood_attacks::AttackSuite::train(
        &[
            &mood_attacks::PoiAttack::paper_default() as &dyn mood_attacks::Attack,
            &mood_attacks::PitAttack::paper_default(),
            &mood_attacks::ApAttack::paper_default(),
        ],
        &background,
    );
    let executor = executor_kind.build(threads.max(1));
    let eval = suite.evaluate_with(&target, executor.as_ref());
    println!(
        "re-identified {} of {} users ({:.1}%)",
        eval.non_protected_count(),
        eval.users_total,
        eval.non_protected_ratio() * 100.0
    );
    for (attack, count) in &eval.re_identified_per_attack {
        println!("  {attack}: {count}");
    }
    println!(
        "data that would be lost on deletion: {:.1}%",
        eval.data_loss_ratio() * 100.0
    );
    Ok(())
}

fn cmd_eval(opts: &HashMap<String, String>) -> Result<(), String> {
    let original_path = required(opts, "original")?;
    let protected_path = required(opts, "protected")?;
    let cell_m: f64 = parse_or(opts, "cell-m", 800.0)?;
    let original = trace_io::read_csv_file(original_path).map_err(|e| e.to_string())?;
    let protected = trace_io::read_csv_file(protected_path).map_err(|e| e.to_string())?;
    let bbox = original
        .bounding_box()
        .ok_or("original dataset is empty")?
        .expanded(2_000.0)
        .map_err(|e| e.to_string())?;
    let grid = Grid::new(bbox, cell_m).map_err(|e| e.to_string())?;
    let stats = CountQueryStats::compare(&grid, &original, &protected);
    println!("count-query utility over {cell_m} m cells:");
    println!("  cell recall      {:.1}%", stats.cell_recall * 100.0);
    println!("  cell precision   {:.1}%", stats.cell_precision * 100.0);
    println!("  cell F1          {:.1}%", stats.cell_f1 * 100.0);
    println!("  weighted Jaccard {:.3}", stats.weighted_jaccard);
    println!("  mean |count error| {:.2}", stats.mean_absolute_error);
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let background_path = required(opts, "background")?;
    let addr = opts
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7079".to_string());
    let (threads, executor_kind) = executor_opts(opts)?;
    let workers: usize = parse_or(opts, "workers", threads)?;
    let seed: u64 = parse_or(opts, "seed", MoodConfig::paper_default().seed)?;
    let max_requests: u64 = parse_or(opts, "max-requests", 0)?;
    let candidate_budget = match opts.get("budget") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("invalid value '{v}' for --budget"))?,
        ),
    };
    let chaos = match (opts.get("chaos-profile"), opts.get("chaos-seed")) {
        (None, None) => None,
        (profile, seed) => {
            let chaos_seed: u64 = seed
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("invalid value '{v}' for --chaos-seed"))
                })
                .transpose()?
                .unwrap_or(0);
            Some(
                ChaosConfig::from_profile(profile.map_or("all", String::as_str), chaos_seed)
                    .map_err(|e| format!("invalid --chaos-profile: {e}"))?,
            )
        }
    };

    let background = trace_io::read_csv_file(background_path).map_err(|e| e.to_string())?;
    if background.is_empty() {
        return Err("background dataset must not be empty".into());
    }
    println!(
        "training POI+PIT+AP attacks on {} users / {} records...",
        background.user_count(),
        background.record_count()
    );
    let tracing_on = parse_or(opts, "tracing", 1u8)? != 0;
    let legacy_metric_names = parse_or(opts, "legacy-metric-names", 0u8)? != 0;
    let mut config = ServeConfig {
        addr,
        connection_workers: workers.max(1),
        executor: executor_kind,
        executor_threads: threads.max(1),
        server_seed: seed,
        chaos,
        candidate_budget,
        legacy_metric_names,
        ..ServeConfig::default()
    };
    if !tracing_on {
        config.tracing = None;
    }
    let server = MoodServer::start_paper_default(config, &background).map_err(|e| e.to_string())?;
    if let Some(chaos) = chaos {
        println!(
            "CHAOS ARMED (seed {}): drop {:.2} shed {:.2} delay {:.2}@{}ms panic {:.2} truncate {:.2} — faults land in /metrics",
            chaos.seed, chaos.accept_drop, chaos.shed, chaos.delay, chaos.delay_ms, chaos.panic, chaos.truncate
        );
    }
    println!(
        "mood-serve listening on http://{} [{executor_kind} executor x{threads}, {} connection workers, seed {seed}]",
        server.local_addr(),
        workers.max(1)
    );
    println!("  GET /healthz | GET /v1/config | GET /metrics | GET /v1/debug/trace | POST /v1/protect | POST /v1/protect/batch");
    if max_requests == 0 {
        // Run until the process is killed; the acceptor and workers do
        // the serving, this thread just stays out of the way.
        loop {
            std::thread::park();
        }
    }
    while server.metrics().responses_total() < max_requests {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let served = server.metrics().responses_total();
    let users = server.metrics().users_protected_total();
    server.shutdown();
    println!("served {served} responses ({users} users protected); shut down cleanly");
    Ok(())
}

fn cmd_trace(opts: &HashMap<String, String>) -> Result<(), String> {
    let input = required(opts, "input")?;
    let background_path = required(opts, "background")?;
    let trace_out = required(opts, "trace-out")?;
    let delta_hours: i64 = parse_or(opts, "delta-hours", 4)?;
    let window_hours: i64 = parse_or(opts, "window-hours", 24)?;
    let seed: u64 = parse_or(opts, "seed", MoodConfig::paper_default().seed)?;
    let limit: usize = parse_or(opts, "limit-users", 0)?;
    if delta_hours <= 0 || window_hours <= 0 {
        return Err("--delta-hours and --window-hours must be positive".into());
    }

    let background = trace_io::read_csv_file(background_path).map_err(|e| e.to_string())?;
    let test = trace_io::read_csv_file(input).map_err(|e| e.to_string())?;
    if background.is_empty() || test.is_empty() {
        return Err("input datasets must not be empty".into());
    }

    let mut config = MoodConfig::paper_default();
    config.delta = TimeDelta::from_hours(delta_hours);
    config.initial_window = Some(TimeDelta::from_hours(window_hours));
    config.seed = seed;
    // Sequential on purpose: one user at a time means the shared stage
    // aggregate drained after each user is exactly that user's work.
    let agg = Arc::new(StageAgg::new(&ENGINE_STAGES));
    let engine = EngineBuilder::paper_default(&background)
        .config(config)
        .stage_observer(Arc::clone(&agg))
        .build()
        .map_err(|e| e.to_string())?;

    let mut records = Vec::new();
    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for (index, trace) in test.iter().enumerate() {
        if limit > 0 && index >= limit {
            break;
        }
        // The same id the server would assign to request_id = index:
        // offline traces line up with online ones for the same seed.
        let spans = TraceSpans::new(mood_serve::request_seed(seed, index as u64));
        let root = spans.begin("protect_user");
        spans.attr(root, "user", trace.user());
        let outcome = engine.protect_user(trace);
        for total in agg.drain() {
            let entry = totals.entry(total.stage).or_insert((0, 0));
            entry.0 += total.ns;
            entry.1 += total.count;
            spans.child_complete(
                root,
                total.stage,
                Duration::from_nanos(total.ns),
                total.count,
            );
        }
        spans.attr(root, "class", outcome.class);
        spans.end(root);
        if let Some(record) = spans.finish() {
            records.push(record);
        }
    }

    let json = serde_json::to_string_pretty(&chrome_trace(&records)).map_err(|e| e.to_string())?;
    std::fs::write(trace_out, json).map_err(|e| e.to_string())?;

    println!("per-stage totals over {} users:", records.len());
    for (stage, (ns, count)) in &totals {
        println!(
            "  {stage:<20} {:>10.2} ms  ({count} units)",
            *ns as f64 / 1e6
        );
    }
    println!(
        "wrote Chrome trace ({} users) -> {trace_out} (open in chrome://tracing or ui.perfetto.dev)",
        records.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_pairs() {
        let args: Vec<String> = ["--scale", "0.5", "--out", "x.csv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_flags(&args);
        assert_eq!(opts["scale"], "0.5");
        assert_eq!(opts["out"], "x.csv");
    }

    #[test]
    fn required_reports_missing_flag() {
        let opts = HashMap::new();
        let err = required(&opts, "input").unwrap_err();
        assert!(err.contains("--input"));
    }

    #[test]
    fn parse_or_uses_default_and_validates() {
        let mut opts = HashMap::new();
        assert_eq!(parse_or(&opts, "threads", 4usize).unwrap(), 4);
        opts.insert("threads".into(), "7".into());
        assert_eq!(parse_or(&opts, "threads", 4usize).unwrap(), 7);
        opts.insert("threads".into(), "x".into());
        assert!(parse_or(&opts, "threads", 4usize).is_err());
    }

    #[test]
    fn executor_flag_values_parse() {
        for (name, expected) in [
            ("sequential", ExecutorKind::Sequential),
            ("pool", ExecutorKind::ScopedPool),
            ("steal", ExecutorKind::WorkStealing),
            ("persistent", ExecutorKind::Persistent),
        ] {
            assert_eq!(name.parse::<ExecutorKind>().unwrap(), expected);
        }
        assert!("gpu".parse::<ExecutorKind>().is_err());
    }

    #[test]
    fn synth_rejects_unknown_preset() {
        let mut opts = HashMap::new();
        opts.insert("preset".into(), "nope".into());
        opts.insert("out".into(), "/tmp/x.csv".into());
        assert!(cmd_synth(&opts).unwrap_err().contains("unknown preset"));
    }
}
