//! Loopback integration tests of the protection service: protocol
//! robustness (malformed requests → 4xx, never a hang), keep-alive
//! reuse, backpressure (503 on overload), the per-request determinism
//! contract (served bytes == offline `protect_stream` bytes, under
//! concurrency), and the thread-leak gate extended to the serve pool.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use mood_core::{protect_stream, ExecutorKind};
use mood_serve::{
    fetch, request_seed, BatchRequest, BatchResponse, Client, EngineTemplate, MoodServer,
    ProtectRequest, ProtectResponse, ProtectResult, RetryClient, RetryPolicy, ServeConfig,
};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};

/// One shared world + engine template for the whole test binary: attack
/// training is the expensive part, and every test can share it safely
/// (templates are immutable).
fn world() -> &'static (Dataset, Dataset, EngineTemplate) {
    static WORLD: OnceLock<(Dataset, Dataset, EngineTemplate)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let ds = presets::privamov_like().scaled(0.12).generate();
        let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
        let template = EngineTemplate::paper_default(&background);
        (background, test, template)
    })
}

fn test_config() -> ServeConfig {
    ServeConfig {
        connection_workers: 6,
        executor: ExecutorKind::Persistent,
        executor_threads: 2,
        server_seed: 0xD0_5E_ED,
        // Generous: debug-mode clients can take a while between
        // requests (JSON parsing of large bodies); the short-deadline
        // behavior has its own dedicated server below.
        keep_alive: Duration::from_secs(30),
        request_timeout: Duration::from_millis(600),
        ..ServeConfig::default()
    }
}

/// Keep-alive deadline actually exercised by the idle-close test.
const SHORT_KEEP_ALIVE: Duration = Duration::from_millis(600);

fn start_server(config: ServeConfig) -> MoodServer {
    let (_, _, template) = world();
    MoodServer::start(config, template.clone()).expect("bind loopback server")
}

/// The offline reference for one `(server_seed, request_id)` pair:
/// `protect_stream` with the derived seed over `traces`, rendered as
/// the exact per-user `ProtectResponse` JSON the server would serve.
fn offline_protect_bytes(
    server_seed: u64,
    request_id: u64,
    traces: &[Trace],
) -> Vec<(Trace, Vec<u8>)> {
    let (_, _, template) = world();
    let seed = request_seed(server_seed, request_id);
    let engine = template.engine_for(seed);
    let dataset = Dataset::from_traces(traces.to_vec()).expect("distinct users");
    let executor = ExecutorKind::WorkStealing.build(4);
    let report =
        protect_stream(&engine, &dataset, executor.as_ref(), |_| {}).expect("sink does not panic");
    traces
        .iter()
        .map(|trace| {
            let outcome = report
                .outcomes()
                .iter()
                .find(|o| o.user == trace.user())
                .expect("user in report");
            let response = ProtectResponse {
                request_id,
                seed,
                result: ProtectResult::from_outcome(outcome),
            };
            (
                trace.clone(),
                serde_json::to_string(&response)
                    .expect("serializable")
                    .into_bytes(),
            )
        })
        .collect()
}

#[test]
fn smoke_healthz_protect_roundtrip_and_clean_shutdown() {
    let server = start_server(test_config());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text().unwrap(), "ok\n");

    let (_, test, _) = world();
    let trace = test.iter().next().expect("non-empty test set");
    let request = ProtectRequest {
        request_id: 1,
        trace: trace.clone(),
        budget: None,
    };
    let resp = client.post_json("/v1/protect", &request).expect("protect");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    let body: ProtectResponse = resp.json().expect("protect response shape");
    assert_eq!(body.request_id, 1);
    assert_eq!(body.result.user, trace.user());
    assert_eq!(body.result.original_records, trace.len());
    let published_records: usize = body.result.published.iter().map(|p| p.trace.len()).sum();
    assert!(published_records + body.result.records_dropped > 0);

    let metrics = client.get("/metrics").expect("metrics");
    let text = metrics.text().unwrap();
    assert!(
        text.contains("mood_serve_requests_total{endpoint=\"protect\"} 1"),
        "{text}"
    );
    assert!(text.contains("mood_serve_scratch_reuses_total"), "{text}");
    assert!(
        text.contains("mood_serve_attack_scratch_reuses_total"),
        "{text}"
    );
    assert!(
        text.contains("mood_serve_heatmap_cache_total{result=\"hit\"}"),
        "{text}"
    );
    assert!(
        text.contains("mood_serve_heatmap_cache_total{result=\"miss\"}"),
        "{text}"
    );
    // The template trains its suite through a ProfileStore: heatmaps,
    // POI profiles and chains each miss once, and the chain derivation
    // re-fetches the POI profiles (one hit) — per-request engines reuse
    // the trained sets, so the counts stay put across requests.
    assert!(
        text.contains("mood_serve_profile_store_total{result=\"hit\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("mood_serve_profile_store_total{result=\"miss\"} 3"),
        "{text}"
    );
    assert!(
        !text.contains("mood_serve_profile_builds_total 0\n"),
        "training must have built profiles: {text}"
    );
    assert!(
        text.contains("mood_serve_executor_threads{backend=\"persistent\"} 2"),
        "{text}"
    );

    let config = client.get("/v1/config").expect("config");
    assert_eq!(config.status, 200);
    let text = config.text().unwrap().to_string();
    assert!(
        text.contains("\"lppms\":[\"Geo-I\",\"TRL\",\"HMC\"]"),
        "{text}"
    );

    assert_eq!(server.metrics().responses_total(), 4);
    server.shutdown(); // joins acceptor, connection workers, executor
}

#[test]
fn malformed_requests_get_4xx_not_a_hang() {
    let server = start_server(test_config());
    let addr = server.local_addr();

    // Garbage request line → 400.
    let resp = fetch(addr, "BL ARGH", "/x", None); // two spaces → 4-part line
    assert_eq!(resp.expect("answered").status, 400);

    // Unknown path → 404; wrong method on a known path → 405.
    assert_eq!(fetch(addr, "GET", "/nope", None).status_or(), 404);
    assert_eq!(fetch(addr, "GET", "/v1/protect", None).status_or(), 405);
    assert_eq!(
        fetch(addr, "POST", "/healthz", Some(b"{}")).status_or(),
        405
    );

    // Unsupported version → 505 (raw socket; the client always speaks 1.1).
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"GET /healthz HTTP/2.0\r\n\r\n").unwrap();
    let mut buf = String::new();
    let _ = raw.read_to_string(&mut buf);
    assert!(buf.starts_with("HTTP/1.1 505"), "{buf}");

    // Body larger than the configured limit → 413 without reading it.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let huge = server_max_body() + 1;
    raw.write_all(
        format!("POST /v1/protect HTTP/1.1\r\ncontent-length: {huge}\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut buf = String::new();
    let _ = raw.read_to_string(&mut buf);
    assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");

    // Complete request whose JSON is cut short → 400, not a hang.
    let truncated = b"{\"request_id\":1,\"trace\":{\"user\":1,\"rec";
    let resp = fetch(addr, "POST", "/v1/protect", Some(truncated)).expect("answered");
    assert_eq!(resp.status, 400);
    assert!(resp.text().unwrap().contains("invalid request body"));

    // Valid JSON of the wrong shape (empty trace) → 400.
    let bad = br#"{"request_id":1,"trace":{"user":1,"records":[]}}"#;
    let resp = fetch(addr, "POST", "/v1/protect", Some(bad)).expect("answered");
    assert_eq!(resp.status, 400);

    // Body shorter than content-length, then silence → 408 after the
    // request timeout, not a hang.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"POST /v1/protect HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"tru")
        .unwrap();
    let mut buf = String::new();
    let _ = raw.read_to_string(&mut buf);
    assert!(buf.starts_with("HTTP/1.1 408"), "{buf}");

    // Slowloris: a client dribbling one header byte at a time never
    // completes within the wall-clock request timeout → 408, the
    // worker is not pinned indefinitely.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let drip = b"GET /healthz HTTP/1.1\r\nx-slow: ";
    let started = std::time::Instant::now();
    let mut answered = String::new();
    for byte in drip.iter().cycle() {
        if raw.write_all(&[*byte]).is_err() {
            break; // server gave up on us — read the verdict
        }
        std::thread::sleep(Duration::from_millis(20));
        if started.elapsed() > Duration::from_secs(8) {
            panic!("server never cut off the dribbling client");
        }
        if started.elapsed() > test_config().request_timeout + Duration::from_millis(300) {
            let _ = raw.read_to_string(&mut answered);
            break;
        }
    }
    if answered.is_empty() {
        let _ = raw.read_to_string(&mut answered);
    }
    assert!(answered.starts_with("HTTP/1.1 408"), "{answered}");

    // Conflicting duplicate content-length headers → 400 (smuggling).
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"POST /v1/protect HTTP/1.1\r\ncontent-length: 10\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let mut buf = String::new();
    let _ = raw.read_to_string(&mut buf);
    assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");

    // Empty batch → 400.
    let resp = fetch(
        addr,
        "POST",
        "/v1/protect/batch",
        Some(br#"{"request_id":1,"traces":[]}"#),
    )
    .expect("answered");
    assert_eq!(resp.status, 400);

    server.shutdown();
}

/// Tiny helpers keeping the malformed-request test readable.
trait StatusOr {
    fn status_or(self) -> u16;
}
impl StatusOr for std::io::Result<mood_serve::ClientResponse> {
    fn status_or(self) -> u16 {
        self.expect("answered").status
    }
}
fn server_max_body() -> usize {
    ServeConfig::default().max_body_bytes
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = start_server(ServeConfig {
        keep_alive: SHORT_KEEP_ALIVE,
        ..test_config()
    });
    let addr = server.local_addr();
    let (_, test, _) = world();
    let trace = test.iter().next().expect("non-empty test set").clone();

    let mut client = Client::connect(addr).expect("connect");
    for request_id in 0..3 {
        assert_eq!(client.get("/healthz").expect("healthz").status, 200);
        let request = ProtectRequest {
            request_id,
            trace: trace.clone(),
            budget: None,
        };
        let resp = client.post_json("/v1/protect", &request).expect("protect");
        assert_eq!(resp.status, 200);
    }
    assert_eq!(
        server.metrics().connections_total(),
        1,
        "keep-alive must reuse the single connection"
    );
    assert_eq!(server.metrics().responses_total(), 6);

    // An idle keep-alive connection is closed once the deadline
    // passes: the next request on it fails instead of being served.
    std::thread::sleep(SHORT_KEEP_ALIVE + Duration::from_millis(400));
    assert!(
        client.get("/healthz").is_err(),
        "server should have closed the idle connection"
    );
    server.shutdown();
}

#[test]
fn concurrent_protect_is_byte_identical_to_offline_protect_stream() {
    let server = start_server(test_config());
    let addr = server.local_addr();
    let (_, test, _) = world();
    let traces: Vec<Trace> = test.iter().cloned().collect();
    assert!(traces.len() >= 4, "need >= 4 concurrent users");
    let request_id = 7;
    let expected = offline_protect_bytes(test_config().server_seed, request_id, &traces);

    std::thread::scope(|scope| {
        for (trace, want) in &expected {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let request = ProtectRequest {
                    request_id,
                    trace: trace.clone(),
                    budget: None,
                };
                let resp = client.post_json("/v1/protect", &request).expect("protect");
                assert_eq!(resp.status, 200, "{:?}", resp.text());
                assert_eq!(
                    &resp.body,
                    want,
                    "served bytes for {} diverged from offline protect_stream",
                    trace.user()
                );
                // Replay on the same connection: byte-identical again.
                let again = client.post_json("/v1/protect", &request).expect("replay");
                assert_eq!(&again.body, want, "replay diverged for {}", trace.user());
            });
        }
    });
    server.shutdown();
}

#[test]
fn batch_equals_single_requests_with_the_same_request_id() {
    let server = start_server(test_config());
    let addr = server.local_addr();
    let (_, test, _) = world();
    let traces: Vec<Trace> = test.iter().take(3).cloned().collect();
    let request_id = 11;

    let mut client = Client::connect(addr).expect("connect");
    let batch = BatchRequest {
        request_id,
        traces: traces.clone(),
        budget: None,
    };
    let resp = client
        .post_json("/v1/protect/batch", &batch)
        .expect("batch");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    let batch: BatchResponse = resp.json().expect("batch response shape");
    assert_eq!(batch.users_total, traces.len());
    assert_eq!(batch.results.len(), traces.len());
    assert_eq!(
        batch.class_counts.values().sum::<usize>(),
        traces.len(),
        "class counts must cover every user"
    );

    for trace in &traces {
        let request = ProtectRequest {
            request_id,
            trace: trace.clone(),
            budget: None,
        };
        let single: ProtectResponse = client
            .post_json("/v1/protect", &request)
            .expect("single")
            .json()
            .expect("single response shape");
        let from_batch = batch
            .results
            .iter()
            .find(|r| r.user == trace.user())
            .expect("user in batch");
        assert_eq!(
            &single.result,
            from_batch,
            "batch and single outcomes diverged for {}",
            trace.user()
        );
        assert_eq!(single.seed, batch.seed, "seed derivation must match");
    }
    server.shutdown();
}

#[test]
fn idempotent_replay_after_a_dropped_connection_is_byte_identical() {
    let server = start_server(test_config());
    let addr = server.local_addr();
    let (_, test, _) = world();
    let trace = test.iter().next().expect("non-empty test set").clone();
    let request = ProtectRequest {
        request_id: 99,
        trace,
        budget: None,
    };

    let mut client = RetryClient::new(addr.to_string(), RetryPolicy::default()).verifying();
    let first = client.post_json("/v1/protect", &request).expect("first");
    assert_eq!(first.status, 200, "{:?}", first.text());

    // A client that gives up mid-request: the server sees a truncated
    // body followed by a dead socket — the wire-level "network drop"
    // that makes retrying-with-the-same-request_id necessary.
    {
        let mut raw = TcpStream::connect(addr).expect("connect raw");
        raw.write_all(
            b"POST /v1/protect HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"request_id\":99,",
        )
        .expect("partial write");
        // Dropped here without finishing the body.
    }

    // Replaying the identical request on a fresh connection must
    // return identical bytes — the determinism contract is what makes
    // blind client retries safe.
    let mut fresh = RetryClient::new(addr.to_string(), RetryPolicy::default()).verifying();
    let second = fresh.post_json("/v1/protect", &request).expect("replay");
    assert_eq!(second.status, 200, "{:?}", second.text());
    assert_eq!(
        first.body, second.body,
        "replayed request_id must serve byte-identical bytes"
    );
    server.shutdown();
}

#[test]
fn overload_sheds_connections_with_503() {
    let server = start_server(ServeConfig {
        connection_workers: 1,
        max_pending: 1,
        ..test_config()
    });
    let addr = server.local_addr();

    // Connection A occupies the only worker (keep-alive holds it).
    let mut a = Client::connect(addr).expect("connect A");
    assert_eq!(a.get("/healthz").expect("A healthz").status, 200);
    // Connection B fills the single queue slot.
    let _b = TcpStream::connect(addr).expect("connect B");
    // Give the acceptor a moment to enqueue B, then C must be shed.
    std::thread::sleep(Duration::from_millis(150));
    let resp = fetch(addr, "GET", "/healthz", None).expect("C answered");
    assert_eq!(resp.status, 503, "{:?}", resp.text());
    assert!(server.metrics().overload_rejected_total() >= 1);
    server.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn server_shutdown_joins_all_threads() {
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .map(|dir| dir.count())
            .unwrap_or(0)
    }

    // Warm the shared world first so its construction cost is not
    // attributed to the server.
    let (_, test, _) = world();
    let trace = test.iter().next().expect("non-empty test set").clone();
    let before = thread_count();
    for round in 0..3 {
        let server = start_server(test_config());
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let request = ProtectRequest {
            request_id: round,
            trace: trace.clone(),
            budget: None,
        };
        assert_eq!(
            client
                .post_json("/v1/protect", &request)
                .expect("protect")
                .status,
            200
        );
        server.shutdown();
    }
    // Other tests in this binary run concurrently and spawn their own
    // servers; poll until the count settles instead of sampling once.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after <= before + 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread count stuck at {after} (started at {before}): serve pool leaked"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}
