//! Loopback tests of the tracing tentpole: served bytes must be
//! bit-identical with tracing on or off, span ids/structure must be
//! deterministic (wall-clock only in the observability `*_us` fields),
//! the flight recorder must export over `GET /v1/debug/trace`, and the
//! new `/metrics` series (queue gauges, per-stage histograms, trace
//! counters, legacy aliases) must render.

use std::sync::OnceLock;
use std::time::Duration;

use mood_serve::mood_obs::RecorderConfig;
use mood_serve::{
    request_seed, Client, EngineTemplate, MoodServer, ProtectRequest, ServeConfig, TraceExport,
};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};

/// One shared world + engine template for the whole test binary.
fn world() -> &'static (Dataset, Dataset, EngineTemplate) {
    static WORLD: OnceLock<(Dataset, Dataset, EngineTemplate)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let ds = presets::privamov_like().scaled(0.12).generate();
        let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
        let template = EngineTemplate::paper_default(&background);
        (background, test, template)
    })
}

const SEED: u64 = 0x0B_5EED;

fn config() -> ServeConfig {
    ServeConfig {
        connection_workers: 4,
        executor_threads: 2,
        server_seed: SEED,
        keep_alive: Duration::from_secs(30),
        request_timeout: Duration::from_millis(600),
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> MoodServer {
    let (_, _, template) = world();
    MoodServer::start(config, template.clone()).expect("bind loopback server")
}

fn a_trace() -> Trace {
    let (_, test, _) = world();
    test.iter().next().expect("non-empty test set").clone()
}

fn protect(client: &mut Client, request_id: u64) -> Vec<u8> {
    let request = ProtectRequest {
        request_id,
        trace: a_trace(),
        budget: None,
    };
    let resp = client
        .post_json("/v1/protect", &request)
        .expect("protect request");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    resp.body
}

fn export(client: &mut Client, limit: usize) -> TraceExport {
    let resp = client
        .get(&format!("/v1/debug/trace?limit={limit}"))
        .expect("debug trace request");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    serde_json::from_reader(&resp.body[..]).expect("parse TraceExport")
}

#[test]
fn served_bytes_are_identical_with_tracing_on_and_off() {
    let traced = start(config());
    let untraced = start(ServeConfig {
        tracing: None,
        ..config()
    });
    let mut on = Client::connect(traced.local_addr()).expect("connect traced");
    let mut off = Client::connect(untraced.local_addr()).expect("connect untraced");
    for request_id in [1u64, 2, 99] {
        let with_tracing = protect(&mut on, request_id);
        let without = protect(&mut off, request_id);
        assert_eq!(
            with_tracing, without,
            "request {request_id}: tracing changed served bytes"
        );
        // And replay on the traced server is byte-identical too.
        assert_eq!(protect(&mut on, request_id), with_tracing);
    }
    traced.shutdown();
    untraced.shutdown();
}

#[test]
fn debug_trace_exports_deterministic_span_structure() {
    let server = start(config());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    protect(&mut client, 7);
    protect(&mut client, 7);
    let export = export(&mut client, 64);
    assert!(export.recorded_total >= 2, "{export:?}");

    let expected_trace_id = request_seed(SEED, 7);
    let replays: Vec<_> = export
        .traces
        .iter()
        .filter(|t| t.trace_id == expected_trace_id)
        .collect();
    assert_eq!(
        replays.len(),
        2,
        "both protect replays must be keyed by request_seed(seed, request_id)"
    );

    // Identical structure across replays: same (id, parent, stage,
    // index, count) for every span — only the *_us fields may differ.
    // `queue_wait` is excluded: it belongs to a connection's first
    // request only, and both replays here share one connection.
    let shape = |t: &mood_serve::mood_obs::TraceRecord| {
        t.spans
            .iter()
            .filter(|s| s.stage != "queue_wait")
            .map(|s| (s.id, s.parent_id, s.stage.clone(), s.index, s.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(replays[0]), shape(replays[1]));

    // The tree has the pipeline shape: request root; parse, engine,
    // respond, write children; aggregated engine stages under engine.
    let spans = &replays[0].spans;
    let root = &spans[0];
    assert_eq!(root.stage, "request");
    assert_eq!(root.parent_id, 0);
    assert!(root.id != 0);
    let stage_of = |name: &str| spans.iter().find(|s| s.stage == name);
    for name in ["parse", "engine", "respond", "write"] {
        let span = stage_of(name).unwrap_or_else(|| panic!("missing {name} span: {spans:?}"));
        assert_eq!(span.parent_id, root.id, "{name} must hang off the root");
    }
    let engine = stage_of("engine").expect("engine span");
    let raw_check = stage_of("raw_check").expect("aggregated raw_check child");
    assert_eq!(raw_check.parent_id, engine.id);
    server.shutdown();
}

#[test]
fn slow_requests_are_retained_separately() {
    // Threshold zero makes every request "slow": the slow ring and the
    // slow counter must both see them.
    let server = start(ServeConfig {
        tracing: Some(RecorderConfig {
            slow_threshold: Duration::ZERO,
            ..RecorderConfig::default()
        }),
        ..config()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    protect(&mut client, 1);
    let export = export(&mut client, 8);
    assert!(export.slow_total >= 1, "{export:?}");
    assert!(!export.slow.is_empty());
    assert!(export.slow.iter().all(|t| t.slow));
    server.shutdown();
}

#[test]
fn debug_trace_is_absent_when_tracing_is_disabled() {
    let server = start(ServeConfig {
        tracing: None,
        ..config()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client.get("/v1/debug/trace").expect("request");
    assert_eq!(resp.status, 404, "{:?}", resp.text());
    server.shutdown();
}

#[test]
fn metrics_expose_queue_gauges_stage_histograms_and_trace_counters() {
    let server = start(config());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    protect(&mut client, 3);
    let resp = client.get("/metrics").expect("metrics");
    let text = resp.text().expect("utf8 metrics");
    for needle in [
        "# TYPE mood_serve_queue_depth gauge",
        "mood_serve_in_flight_connections",
        "mood_serve_queue_wait_seconds_count",
        "mood_serve_stage_seconds_bucket{stage=\"request\",le=\"+Inf\"}",
        "mood_serve_stage_seconds_bucket{stage=\"engine\"",
        "mood_serve_traces_recorded_total",
        "mood_serve_slow_requests_total",
        "mood_serve_requests_total{endpoint=\"debug_trace\"}",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // The serving connection itself is in flight while /metrics renders.
    let in_flight = text
        .lines()
        .find_map(|l| l.strip_prefix("mood_serve_in_flight_connections "))
        .expect("in-flight gauge");
    assert!(in_flight.trim().parse::<u64>().expect("gauge value") >= 1);
    server.shutdown();
}

#[test]
fn legacy_metric_names_flag_restores_unprefixed_aliases() {
    let server = start(ServeConfig {
        legacy_metric_names: true,
        ..config()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    protect(&mut client, 4);
    let resp = client.get("/metrics").expect("metrics");
    let text = resp.text().expect("utf8 metrics");
    assert!(text.contains("\nattack_scratch_reuses_total "), "{text}");
    assert!(
        text.contains("\nheatmap_cache_total{result=\"hit\"}"),
        "{text}"
    );
    // Prefixed names stay the primary series either way.
    assert!(text.contains("mood_serve_attack_scratch_reuses_total"));
    server.shutdown();

    let modern = start(config());
    let mut client = Client::connect(modern.local_addr()).expect("connect");
    let resp = client.get("/metrics").expect("metrics");
    let text = resp.text().expect("utf8 metrics");
    assert!(
        !text.contains("\nattack_scratch_reuses_total "),
        "legacy aliases must be opt-in: {text}"
    );
    modern.shutdown();
}
