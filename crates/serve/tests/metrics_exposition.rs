//! Prometheus text-exposition conformance for `/metrics`: every sample
//! belongs to a family declared with `# TYPE`, no series (name +
//! label set) appears twice, label values use only valid escapes, and
//! every value parses. Run against a live server with tracing AND the
//! legacy-name aliases enabled, after traffic on several endpoints, so
//! the scrape covers every section the renderer can emit.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;
use std::time::Duration;

use mood_serve::{Client, EngineTemplate, MoodServer, ProtectRequest, ServeConfig};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta};

fn world() -> &'static (Dataset, Dataset, EngineTemplate) {
    static WORLD: OnceLock<(Dataset, Dataset, EngineTemplate)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let ds = presets::privamov_like().scaled(0.12).generate();
        let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
        let template = EngineTemplate::paper_default(&background);
        (background, test, template)
    })
}

/// One parsed sample line: family-resolved metric name + raw label set.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Series {
    name: String,
    labels: String,
}

/// Splits a sample line into (metric name, label block, value), then
/// validates label escaping and the value. Panics with the offending
/// line on any malformed input.
fn parse_sample(line: &str) -> Series {
    let (series, value) = match line.find('}') {
        Some(end) => {
            let (series, rest) = line.split_at(end + 1);
            (series, rest.trim())
        }
        None => line.split_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        }),
    };
    assert!(
        value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
        "unparseable value {value:?} in {line:?}"
    );

    let (name, labels) = match series.split_once('{') {
        Some((name, labels)) => {
            let labels = labels
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label block: {line:?}"));
            validate_labels(labels, line);
            (name, labels)
        }
        None => (series.trim(), ""),
    };
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?} in {line:?}"
    );
    Series {
        name: name.to_string(),
        labels: labels.to_string(),
    }
}

/// Walks `key="value",...` checking that every value is quoted and
/// uses only the legal escapes (`\\`, `\"`, `\n`).
fn validate_labels(labels: &str, line: &str) {
    let mut chars = labels.chars().peekable();
    loop {
        // Label name up to '='.
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "invalid label name {name:?} in {line:?}"
        );
        assert_eq!(chars.next(), Some('"'), "unquoted label value in {line:?}");
        // Quoted value with escape validation.
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => {
                    let esc = chars.next();
                    assert!(
                        matches!(esc, Some('\\') | Some('"') | Some('n')),
                        "illegal escape \\{esc:?} in {line:?}"
                    );
                }
                Some(_) => {}
                None => panic!("unterminated label value in {line:?}"),
            }
        }
        match chars.next() {
            None => return,
            Some(',') => continue,
            Some(c) => panic!("unexpected {c:?} after label value in {line:?}"),
        }
    }
}

/// Resolves a sample name to its declared family, accounting for the
/// `_bucket`/`_sum`/`_count` suffixes of histograms and summaries.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if types.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(kind) = types.get(base) {
                if kind == "histogram" || kind == "summary" {
                    return Some(base);
                }
            }
        }
    }
    None
}

#[test]
fn metrics_exposition_is_well_formed() {
    let (_, test, template) = world();
    let config = ServeConfig {
        connection_workers: 4,
        executor_threads: 2,
        server_seed: 0x005C_249E,
        keep_alive: Duration::from_secs(30),
        request_timeout: Duration::from_millis(600),
        legacy_metric_names: true,
        ..ServeConfig::default()
    };
    let server = MoodServer::start(config, template.clone()).expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Touch every endpoint family so every renderer section has data:
    // protect (engine stages + histograms), an error (4xx counter),
    // healthz/config, the flight recorder, and a first metrics scrape.
    let trace = test.iter().next().expect("non-empty test set").clone();
    for request_id in 0..3u64 {
        let request = ProtectRequest {
            request_id,
            trace: trace.clone(),
            budget: None,
        };
        let resp = client.post_json("/v1/protect", &request).expect("protect");
        assert_eq!(resp.status, 200);
    }
    assert_eq!(client.get("/nope").expect("404 route").status, 404);
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/v1/config").expect("config").status, 200);
    assert_eq!(
        client.get("/v1/debug/trace?limit=4").expect("trace").status,
        200
    );
    assert_eq!(client.get("/metrics").expect("warmup scrape").status, 200);

    let resp = client.get("/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    let text = resp.text().expect("utf8 metrics");

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: BTreeSet<Series> = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("malformed TYPE line: {line:?}"));
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "summary"),
                "unknown metric type {kind:?} in {line:?}"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE declaration for {name}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let sample = parse_sample(line);
        assert!(
            family_of(&sample.name, &types).is_some(),
            "sample {:?} has no preceding # TYPE declaration",
            sample.name
        );
        assert!(
            !seen.contains(&sample),
            "duplicate series: {} {{{}}}",
            sample.name,
            sample.labels
        );
        seen.insert(sample);
    }

    // The scrape actually covered the interesting sections.
    for family in [
        "mood_serve_requests_total",
        "mood_serve_request_seconds",
        "mood_serve_queue_depth",
        "mood_serve_queue_wait_seconds",
        "mood_serve_stage_seconds",
        "mood_serve_traces_recorded_total",
        "attack_scratch_reuses_total",
        "heatmap_cache_total",
    ] {
        assert!(types.contains_key(family), "family {family} not rendered");
    }
    // Every declared family must also have at least one sample.
    for family in types.keys() {
        assert!(
            seen.iter()
                .any(|s| family_of(&s.name, &types) == Some(family.as_str())),
            "family {family} declared but has no samples"
        );
    }
    server.shutdown();
}
