//! Chaos integration tests: a loopback server under each seeded fault
//! profile, driven by the retrying idempotent client. The gate is the
//! paper's determinism contract under fire — every success a client
//! extracts from a faulty server must be byte-identical to the
//! fault-free run, injected faults must be visible in `/metrics`,
//! degraded (budgeted) responses must replay exactly, and shutdown
//! must still join every thread.
//!
//! Faults are seeded (`SplitMix64` over `(chaos_seed, connection_id,
//! event_idx)`) and the tests drive servers with a single sequential
//! client, so connection ids — and therefore every fault decision —
//! are deterministic: none of these tests is statistically flaky.

use std::sync::OnceLock;
use std::time::Duration;

use mood_core::ExecutorKind;
use mood_serve::{
    ChaosConfig, Client, EngineTemplate, FaultKind, MoodServer, ProtectRequest, ProtectResponse,
    RetryClient, RetryPolicy, ServeConfig,
};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};

const SERVER_SEED: u64 = 0xC4A0_5EED;
const CHAOS_SEED: u64 = 0x0DD_BA11;

/// One shared world + engine template for the whole test binary
/// (attack training is the expensive part; templates are immutable).
fn world() -> &'static (Dataset, Dataset, EngineTemplate) {
    static WORLD: OnceLock<(Dataset, Dataset, EngineTemplate)> = OnceLock::new();
    WORLD.get_or_init(|| {
        let ds = presets::privamov_like().scaled(0.12).generate();
        let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
        let template = EngineTemplate::paper_default(&background);
        (background, test, template)
    })
}

fn base_config() -> ServeConfig {
    ServeConfig {
        connection_workers: 4,
        executor: ExecutorKind::Persistent,
        executor_threads: 2,
        server_seed: SERVER_SEED,
        keep_alive: Duration::from_secs(30),
        request_timeout: Duration::from_millis(600),
        ..ServeConfig::default()
    }
}

fn chaos_config(profile: &str) -> ServeConfig {
    ServeConfig {
        chaos: Some(ChaosConfig::from_profile(profile, CHAOS_SEED).expect("known profile")),
        ..base_config()
    }
}

/// Generous attempts, tiny backoff: the budget only has to outlast
/// per-connection coin flips, and the tests should not sleep much.
fn patient_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 24,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        jitter_seed: 1,
    }
}

/// Fault-free reference bytes for `(request_id, trace)` pairs: what a
/// server with the same `server_seed` and no chaos serves. Every
/// success under chaos must equal these bytes exactly.
fn reference_bytes(pairs: &[(u64, &Trace)]) -> Vec<Vec<u8>> {
    let (_, _, template) = world();
    let server = MoodServer::start(base_config(), template.clone()).expect("bind reference server");
    let mut client = Client::connect(server.local_addr()).expect("connect reference client");
    let bytes = pairs
        .iter()
        .map(|(request_id, trace)| {
            let request = ProtectRequest {
                request_id: *request_id,
                trace: (*trace).clone(),
                budget: None,
            };
            let resp = client
                .post_json("/v1/protect", &request)
                .expect("reference request");
            assert_eq!(resp.status, 200, "{:?}", resp.text());
            resp.body
        })
        .collect();
    server.shutdown();
    bytes
}

#[test]
fn smoke_drop_delay_profile_round_trips_through_the_retry_client() {
    let (_, test, template) = world();
    let traces: Vec<Trace> = test.iter().take(2).cloned().collect();
    let pairs: Vec<(u64, &Trace)> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| (40 + i as u64, t))
        .collect();
    let want = reference_bytes(&pairs);

    let server =
        MoodServer::start(chaos_config("drop+delay"), template.clone()).expect("bind chaos server");
    let addr = server.local_addr();
    let mut client = RetryClient::new(addr.to_string(), patient_retries()).verifying();
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    for ((request_id, trace), want) in pairs.iter().zip(&want) {
        let request = ProtectRequest {
            request_id: *request_id,
            trace: (*trace).clone(),
            budget: None,
        };
        let resp = client
            .post_json("/v1/protect", &request)
            .expect("protect under chaos");
        assert_eq!(resp.status, 200, "{:?}", resp.text());
        assert_eq!(
            &resp.body, want,
            "success under drop+delay diverged from the fault-free bytes"
        );
    }

    // The profile arms delay with probability 1.0: every handled
    // request records a fault, so the counters must have moved.
    let metrics = server.metrics();
    assert!(metrics.faults_injected_total(FaultKind::Delay) > 0);
    let text = client
        .get("/metrics")
        .expect("metrics")
        .text()
        .map(String::from)
        .expect("utf-8");
    assert!(
        text.contains("mood_serve_faults_injected_total{kind=\"delay\"}"),
        "{text}"
    );
    assert!(
        text.contains("mood_serve_faults_injected_total{kind=\"accept_drop\"}"),
        "{text}"
    );
    server.shutdown();
}

#[test]
fn every_fault_profile_yields_byte_identical_successes() {
    let (_, test, template) = world();
    let trace = test.iter().next().expect("non-empty test set").clone();
    let want = reference_bytes(&[(77, &trace)]).remove(0);

    for profile in ["drop", "shed", "delay", "panic", "truncate", "all"] {
        let server =
            MoodServer::start(chaos_config(profile), template.clone()).expect("bind chaos server");
        let addr = server.local_addr();
        let expected_kind = match profile {
            "drop" => FaultKind::AcceptDrop,
            "shed" => FaultKind::Shed,
            "delay" => FaultKind::Delay,
            "panic" => FaultKind::Panic,
            "truncate" => FaultKind::Truncate,
            // "all" arms everything; delay fires most often.
            _ => FaultKind::Delay,
        };

        // A fresh client per round forces a fresh connection (fresh
        // accept/shed coin flips); keep going until the profile's own
        // fault kind has demonstrably fired. The loop is deterministic
        // for a fixed seed and the cap is unreachable in practice
        // (each round dodges a p>=0.25 fault only by luck).
        let mut rounds = 0;
        while server.metrics().faults_injected_total(expected_kind) == 0 {
            rounds += 1;
            assert!(
                rounds <= 64,
                "{profile}: fault never fired in {rounds} rounds"
            );
            let mut client = RetryClient::new(addr.to_string(), patient_retries()).verifying();
            let request = ProtectRequest {
                request_id: 77,
                trace: trace.clone(),
                budget: None,
            };
            let resp = client
                .post_json("/v1/protect", &request)
                .expect("success under chaos");
            assert_eq!(resp.status, 200, "{profile}: {:?}", resp.text());
            assert_eq!(
                resp.body, want,
                "{profile}: served bytes diverged from the fault-free run"
            );
        }
        assert!(server.metrics().faults_injected_total(expected_kind) > 0);
        server.shutdown();
    }
}

#[test]
fn zero_probability_chaos_is_invisible() {
    let (_, test, template) = world();
    let trace = test.iter().next().expect("non-empty test set").clone();
    let want = reference_bytes(&[(5, &trace)]).remove(0);

    // Chaos compiled in and armed — but every probability is zero.
    let server = MoodServer::start(
        ServeConfig {
            chaos: Some(ChaosConfig {
                seed: 0xFEED,
                ..ChaosConfig::default()
            }),
            ..base_config()
        },
        template.clone(),
    )
    .expect("bind armed-zero server");

    // A plain client with no retries must sail through.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..3 {
        let request = ProtectRequest {
            request_id: 5,
            trace: trace.clone(),
            budget: None,
        };
        let resp = client.post_json("/v1/protect", &request).expect("protect");
        assert_eq!(resp.status, 200, "{:?}", resp.text());
        assert_eq!(resp.body, want, "armed-zero chaos changed served bytes");
    }
    assert_eq!(server.metrics().faults_injected_all(), 0);
    server.shutdown();
}

#[test]
fn budget_degrades_deterministically_and_is_counted() {
    let (_, test, template) = world();
    let server = MoodServer::start(base_config(), template.clone()).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut saw_degraded = false;
    for (i, trace) in test.iter().take(4).enumerate() {
        let request_id = 60 + i as u64;
        let starved = ProtectRequest {
            request_id,
            trace: trace.clone(),
            budget: Some(1),
        };
        let resp = client.post_json("/v1/protect", &starved).expect("starved");
        assert_eq!(resp.status, 200, "{:?}", resp.text());
        // The cut point is part of the pure function: replaying the
        // same (request_id, budget) serves the same bytes.
        let again = client.post_json("/v1/protect", &starved).expect("replay");
        assert_eq!(
            resp.body, again.body,
            "budgeted responses must replay byte-identically"
        );
        let body: ProtectResponse = resp.json().expect("protect response shape");
        saw_degraded |= body.result.degraded;

        // An effectively unlimited budget is the same as no budget.
        let unlimited = ProtectRequest {
            request_id,
            trace: trace.clone(),
            budget: Some(u64::MAX),
        };
        let free = ProtectRequest {
            request_id,
            trace: trace.clone(),
            budget: None,
        };
        let a = client
            .post_json("/v1/protect", &unlimited)
            .expect("unlimited");
        let b = client.post_json("/v1/protect", &free).expect("no budget");
        assert_eq!(a.body, b.body, "u64::MAX budget must not change bytes");
        let b: ProtectResponse = b.json().expect("protect response shape");
        assert!(
            !b.result.degraded,
            "an unbudgeted response is never degraded"
        );
    }
    assert!(
        saw_degraded,
        "budget=1 should exhaust the candidate search for at least one user"
    );
    assert!(server.metrics().degraded_results_total() > 0);
    let text = client
        .get("/metrics")
        .expect("metrics")
        .text()
        .map(String::from)
        .expect("utf-8");
    assert!(text.contains("mood_serve_degraded_results_total"), "{text}");
    server.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn chaotic_server_shutdown_joins_all_threads() {
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task")
            .map(|dir| dir.count())
            .unwrap_or(0)
    }

    // Warm the shared world first so its construction cost is not
    // attributed to the servers under test.
    let (_, test, template) = world();
    let trace = test.iter().next().expect("non-empty test set").clone();
    let before = thread_count();
    for round in 0..3 {
        let server =
            MoodServer::start(chaos_config("all"), template.clone()).expect("bind chaos server");
        let mut client =
            RetryClient::new(server.local_addr().to_string(), patient_retries()).verifying();
        let request = ProtectRequest {
            request_id: round,
            trace: trace.clone(),
            budget: None,
        };
        let resp = client
            .post_json("/v1/protect", &request)
            .expect("protect under chaos");
        assert_eq!(resp.status, 200, "{:?}", resp.text());
        server.shutdown();
    }
    // Other tests in this binary run concurrently and spawn their own
    // servers; poll until the count settles instead of sampling once.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let after = thread_count();
        if after <= before + 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread count stuck at {after} (started at {before}): chaos servers leaked threads"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}
