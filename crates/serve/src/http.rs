//! A hand-rolled HTTP/1.1 subset over `std::net` — exactly what the
//! protection service needs, nothing more.
//!
//! The build environment is offline, so there is no hyper/axum to
//! lean on; this module implements the slice of RFC 9112 the service
//! speaks: request line + headers + `Content-Length` bodies, keep-alive
//! by default, `Connection: close` honored, no chunked transfer
//! encoding (rejected with 501). Reads are timeout-polled so connection
//! workers can observe shutdown and idle deadlines without dedicated
//! timer threads, and every malformed input maps to a 4xx/5xx status
//! instead of a hang.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Serialize;

/// Cap on the request head (request line + all headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, as sent (path plus optional query).
    pub target: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path, with any query string stripped.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }
}

/// What one attempt to read a request from a connection produced.
#[derive(Debug)]
pub enum RequestOutcome {
    /// A complete request.
    Complete(Request),
    /// The peer closed (or broke) the connection at a request boundary;
    /// nothing to answer.
    Closed,
    /// The read timed out with no request bytes buffered — the
    /// connection is idle; the caller decides whether to keep waiting.
    Idle,
    /// Protocol violation or mid-request timeout: answer with `status`
    /// and close the connection.
    Bad {
        /// HTTP status to answer with (4xx/5xx).
        status: u16,
        /// Human-readable reason, for the error body.
        reason: String,
    },
}

/// Parsed request head, before the body is read.
#[derive(Debug)]
struct Head {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    close: bool,
}

/// A head split into its first line and the lowercased header list.
pub(crate) type SplitHead<'a> = (&'a str, Vec<(String, String)>);

/// Splits a raw head block (no trailing `\r\n\r\n`) into its first line
/// and the header list (names lowercased, values trimmed). Shared by
/// the server-side request parser and the loopback client's response
/// parser so header handling cannot drift between the two.
pub(crate) fn split_head(bytes: &[u8]) -> Result<SplitHead<'_>, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "head is not UTF-8".to_string())?;
    let mut lines = text.split("\r\n");
    let first = lines.next().ok_or_else(|| "empty head".to_string())?;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line `{line}`"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((first, headers))
}

/// Parses the request head (everything before the blank line).
fn parse_head(bytes: &[u8]) -> Result<Head, (u16, String)> {
    let (request_line, headers) = split_head(bytes).map_err(|reason| (400u16, reason))?;
    let parts: Vec<&str> = request_line.split(' ').collect();
    let [method, target, version] = parts[..] else {
        return Err((400, format!("malformed request line `{request_line}`")));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err((400, format!("malformed method `{method}`")));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err((505, format!("unsupported protocol version `{version}`")));
    }
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err((501, "transfer-encoding is not supported".to_string()));
    }
    // Conflicting duplicate Content-Length headers are the classic
    // request-smuggling shape (RFC 9112 §6.3): reject, don't pick one.
    let mut content_length = 0usize;
    let mut seen_length: Option<&str> = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        if seen_length.is_some_and(|prev| prev != v) {
            return Err((400, "conflicting content-length headers".to_string()));
        }
        seen_length = Some(v);
        content_length = v
            .parse::<usize>()
            .map_err(|_| (400u16, format!("invalid content-length `{v}`")))?;
    }
    // `Connection` is a comma-separated token list (RFC 9110 §7.6.1);
    // match tokens, not the whole value.
    let connection_tokens: Vec<String> = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| {
            v.split(',')
                .map(|t| t.trim().to_ascii_lowercase())
                .collect()
        })
        .unwrap_or_default();
    let close = if connection_tokens.iter().any(|t| t == "close") {
        true
    } else if connection_tokens.iter().any(|t| t == "keep-alive") {
        false
    } else {
        version == "HTTP/1.0"
    };
    Ok(Head {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        content_length,
        close,
    })
}

/// Result of one read attempt on the socket.
enum Fill {
    Data,
    Eof,
    Timeout,
}

/// A server-side connection: the socket plus its read buffer.
///
/// Pipelined requests work naturally — bytes past the current request
/// stay buffered for the next [`Conn::read_request`] call.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream, arming the poll-read timeout that
    /// drives [`RequestOutcome::Idle`].
    ///
    /// # Errors
    ///
    /// Returns the error from configuring the socket.
    pub fn new(stream: TcpStream, poll: Duration) -> io::Result<Self> {
        stream.set_read_timeout(Some(poll))?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    fn fill(&mut self) -> io::Result<Fill> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Data)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Fill::Timeout)
            }
            Err(e) => Err(e),
        }
    }

    /// Reads the next request off the connection.
    ///
    /// `request_timeout` is the wall-clock bound on a *partially
    /// received* request: the deadline arms when the first request byte
    /// arrives, and a request still incomplete past it becomes a 408 —
    /// whether the client goes silent or keeps dribbling single bytes
    /// (slowloris). Idle waits (no bytes at all) return
    /// [`RequestOutcome::Idle`] after a single poll so the caller can
    /// check shutdown and keep-alive deadlines.
    pub fn read_request(&mut self, max_body: usize, request_timeout: Duration) -> RequestOutcome {
        // Pipelined leftovers count as an already-started request.
        let mut deadline = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now() + request_timeout)
        };
        let overdue = |deadline: &Option<Instant>, phase: &str| -> Option<RequestOutcome> {
            match deadline {
                Some(d) if Instant::now() >= *d => Some(RequestOutcome::Bad {
                    status: 408,
                    reason: format!("timed out reading request {phase}"),
                }),
                _ => None,
            }
        };
        let head_len = loop {
            if let Some(pos) = find_subsequence(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return RequestOutcome::Bad {
                    status: 431,
                    reason: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                };
            }
            if let Some(bad) = overdue(&deadline, "head") {
                return bad;
            }
            match self.fill() {
                Ok(Fill::Data) => {
                    deadline.get_or_insert_with(|| Instant::now() + request_timeout);
                }
                Ok(Fill::Eof) => {
                    return if self.buf.is_empty() {
                        RequestOutcome::Closed
                    } else {
                        RequestOutcome::Bad {
                            status: 400,
                            reason: "connection closed mid-request".to_string(),
                        }
                    }
                }
                Ok(Fill::Timeout) => {
                    if self.buf.is_empty() {
                        return RequestOutcome::Idle;
                    }
                }
                Err(_) => return RequestOutcome::Closed,
            }
        };
        let head = match parse_head(&self.buf[..head_len - 4]) {
            Ok(head) => head,
            Err((status, reason)) => return RequestOutcome::Bad { status, reason },
        };
        if head.content_length > max_body {
            return RequestOutcome::Bad {
                status: 413,
                reason: format!(
                    "body of {} bytes exceeds the {max_body}-byte limit",
                    head.content_length
                ),
            };
        }
        while self.buf.len() < head_len + head.content_length {
            if let Some(bad) = overdue(&deadline, "body") {
                return bad;
            }
            match self.fill() {
                Ok(Fill::Data | Fill::Timeout) => {}
                Ok(Fill::Eof) => {
                    return RequestOutcome::Bad {
                        status: 400,
                        reason: "connection closed mid-body".to_string(),
                    }
                }
                Err(_) => return RequestOutcome::Closed,
            }
        }
        let body = self.buf[head_len..head_len + head.content_length].to_vec();
        self.buf.drain(..head_len + head.content_length);
        RequestOutcome::Complete(Request {
            method: head.method,
            target: head.target,
            headers: head.headers,
            body,
            close: head.close,
        })
    }

    /// Writes `response` to the connection.
    ///
    /// # Errors
    ///
    /// Returns the transport error, if any; the caller should close.
    pub fn write_response(&mut self, response: &Response) -> io::Result<()> {
        response.write_to(&mut self.stream)
    }

    /// Chaos-fault path: writes `response` cut off mid-body (see
    /// [`Response::write_truncated_to`]); the caller must then close.
    ///
    /// # Errors
    ///
    /// Returns the transport error, if any.
    pub fn write_response_truncated(&mut self, response: &Response) -> io::Result<()> {
        response.write_truncated_to(&mut self.stream)
    }
}

/// First position of `needle` in `haystack`.
pub(crate) fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// One HTTP response about to be written.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Response body; `content-length` is derived from it.
    pub body: Vec<u8>,
    /// Whether to send `connection: close` (the caller then closes).
    pub close: bool,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// A JSON response, serialized straight into the body buffer (no
    /// intermediate `String` — the shim's `to_writer` path).
    pub fn json<T: Serialize>(status: u16, value: &T) -> Self {
        let mut body = Vec::with_capacity(256);
        match serde_json::to_writer(&mut body, value) {
            Ok(()) => Self {
                status,
                content_type: "application/json",
                body,
                close: false,
            },
            Err(e) => Self::text(500, &format!("response serialization failed: {e}\n")),
        }
    }

    /// The same response, marked connection-closing.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// The response head (status line + headers + blank line) as bytes.
    fn head_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        if self.close {
            head.extend_from_slice(b"connection: close\r\n");
        }
        head.extend_from_slice(b"\r\n");
        head
    }

    /// Serializes the response (status line, headers, body) into `out`,
    /// riding out short writes: `Interrupted` retries immediately and
    /// `WouldBlock` (a throttled non-blocking or send-timeout socket)
    /// retries with a bounded patience instead of dropping the tail of
    /// the response on the floor.
    ///
    /// # Errors
    ///
    /// Returns the transport error, if any; `TimedOut` when the peer
    /// stays unwritable past the patience window.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_all_patient(out, &self.head_bytes(), WRITE_PATIENCE)?;
        write_all_patient(out, &self.body, WRITE_PATIENCE)?;
        flush_patient(out, WRITE_PATIENCE)
    }

    /// Chaos-fault write path: sends the full head but only the first
    /// half of the body, then stops. The `content-length` header still
    /// promises the full body, so a client that counts bytes sees an
    /// unambiguous truncation (`UnexpectedEof` once the server closes) —
    /// a *retryable* failure, never a plausible short response.
    ///
    /// # Errors
    ///
    /// Returns the transport error, if any.
    pub fn write_truncated_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write_all_patient(out, &self.head_bytes(), WRITE_PATIENCE)?;
        write_all_patient(out, &self.body[..self.body.len() / 2], WRITE_PATIENCE)?;
        flush_patient(out, WRITE_PATIENCE)
    }
}

/// How long a response write keeps retrying `WouldBlock` before giving
/// up on the peer.
const WRITE_PATIENCE: Duration = Duration::from_secs(5);

/// How long to back off between `WouldBlock` retries.
const WRITE_RETRY_PAUSE: Duration = Duration::from_millis(1);

/// `write_all` that survives interrupted and throttled sockets:
/// `Interrupted` retries immediately, `WouldBlock` retries after a
/// short pause until `patience` is spent, and a zero-length write is
/// reported as `WriteZero` instead of looping forever.
pub(crate) fn write_all_patient<W: Write>(
    out: &mut W,
    mut buf: &[u8],
    patience: Duration,
) -> io::Result<()> {
    let started = Instant::now();
    while !buf.is_empty() {
        match out.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer accepts no more bytes",
                ));
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if started.elapsed() >= patience {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stayed unwritable past the write patience",
                    ));
                }
                std::thread::sleep(WRITE_RETRY_PAUSE);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// `flush` with the same `Interrupted`/`WouldBlock` patience as
/// [`write_all_patient`].
fn flush_patient<W: Write>(out: &mut W, patience: Duration) -> io::Result<()> {
    let started = Instant::now();
    loop {
        match out.flush() {
            Ok(()) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if started.elapsed() >= patience {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stayed unflushable past the write patience",
                    ));
                }
                std::thread::sleep(WRITE_RETRY_PAUSE);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Canonical reason phrase for the statuses this service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(raw: &str) -> Result<Head, (u16, String)> {
        parse_head(raw.as_bytes())
    }

    #[test]
    fn parses_a_request_head() {
        let h = head("POST /v1/protect HTTP/1.1\r\nHost: x\r\nContent-Length: 12").unwrap();
        assert_eq!(h.method, "POST");
        assert_eq!(h.target, "/v1/protect");
        assert_eq!(h.content_length, 12);
        assert!(!h.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(h.headers[0], ("host".to_string(), "x".to_string()));
    }

    #[test]
    fn connection_semantics() {
        assert!(head("GET / HTTP/1.1\r\nConnection: close").unwrap().close);
        assert!(head("GET / HTTP/1.0").unwrap().close);
        assert!(
            !head("GET / HTTP/1.0\r\nConnection: Keep-Alive")
                .unwrap()
                .close
        );
        // Token lists: any `close` token closes; `keep-alive` in a
        // list keeps an HTTP/1.0 connection open.
        assert!(
            head("GET / HTTP/1.1\r\nConnection: close, TE")
                .unwrap()
                .close
        );
        assert!(
            !head("GET / HTTP/1.0\r\nConnection: Keep-Alive, Upgrade")
                .unwrap()
                .close
        );
    }

    #[test]
    fn malformed_heads_map_to_4xx() {
        assert_eq!(head("GET /").unwrap_err().0, 400);
        assert_eq!(head("GET / HTTP/1.1 extra").unwrap_err().0, 400);
        assert_eq!(head("get / HTTP/1.1").unwrap_err().0, 400);
        assert_eq!(head("GET / HTTP/2.0").unwrap_err().0, 505);
        assert_eq!(head("GET / HTTP/1.1\r\nbroken header").unwrap_err().0, 400);
        assert_eq!(
            head("GET / HTTP/1.1\r\nContent-Length: nope")
                .unwrap_err()
                .0,
            400
        );
        assert_eq!(
            head("GET / HTTP/1.1\r\nTransfer-Encoding: chunked")
                .unwrap_err()
                .0,
            501
        );
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // The request-smuggling shape: two disagreeing lengths.
        let err = head("POST / HTTP/1.1\r\nContent-Length: 10\r\nContent-Length: 0").unwrap_err();
        assert_eq!(err.0, 400);
        assert!(err.1.contains("conflicting"), "{}", err.1);
        // Agreeing duplicates are tolerated (RFC 9112 §6.3 allows it).
        let h = head("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7").unwrap();
        assert_eq!(h.content_length, 7);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
        assert!(!text.contains("connection: close"), "{text}");

        let mut out = Vec::new();
        Response::text(503, "busy")
            .closing()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"), "{text}");
    }

    #[test]
    fn json_response_streams_serialization() {
        let resp = Response::json(200, &vec![1u64, 2, 3]);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"[1,2,3]");
        assert_eq!(resp.content_type, "application/json");
        // Non-finite floats cannot serialize; the response degrades to
        // a 500 instead of panicking a worker.
        let resp = Response::json(200, &f64::NAN);
        assert_eq!(resp.status, 500);
    }

    #[test]
    fn find_subsequence_positions() {
        assert_eq!(find_subsequence(b"abc\r\n\r\nrest", b"\r\n\r\n"), Some(3));
        assert_eq!(find_subsequence(b"abc", b"\r\n\r\n"), None);
    }

    /// A `Write` that accepts at most `chunk` bytes per call and
    /// interleaves scripted `Interrupted`/`WouldBlock` errors between
    /// accepted chunks — the shape of a throttled or signal-riddled
    /// socket.
    struct ThrottleStream {
        written: Vec<u8>,
        chunk: usize,
        hiccups: std::collections::VecDeque<io::ErrorKind>,
    }

    impl ThrottleStream {
        fn new(chunk: usize, hiccups: &[io::ErrorKind]) -> Self {
            Self {
                written: Vec::new(),
                chunk,
                hiccups: hiccups.iter().copied().collect(),
            }
        }
    }

    impl Write for ThrottleStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if let Some(kind) = self.hiccups.pop_front() {
                return Err(io::Error::new(kind, "scripted hiccup"));
            }
            let n = buf.len().min(self.chunk);
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_to_rides_out_short_writes_and_hiccups() {
        use io::ErrorKind::{Interrupted, WouldBlock};
        let response = Response::text(200, "a body long enough to need many chunks");
        let mut reference = Vec::new();
        response.write_to(&mut reference).unwrap();

        let mut throttled = ThrottleStream::new(
            3,
            &[
                Interrupted,
                WouldBlock,
                Interrupted,
                Interrupted,
                WouldBlock,
                WouldBlock,
            ],
        );
        response.write_to(&mut throttled).unwrap();
        assert_eq!(
            throttled.written, reference,
            "short writes must not lose or reorder bytes"
        );
    }

    #[test]
    fn persistent_would_block_times_out() {
        // A peer that never becomes writable: every call WouldBlocks.
        struct Wedged;
        impl Write for Wedged {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "wedged"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_patient(&mut Wedged, b"payload", Duration::from_millis(20))
            .expect_err("a wedged peer must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn zero_length_write_is_write_zero_not_a_spin() {
        struct Stuck;
        impl Write for Stuck {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_all_patient(&mut Stuck, b"payload", Duration::from_millis(20))
            .expect_err("Ok(0) forever must error");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn truncated_write_promises_more_than_it_sends() {
        let response = Response::text(200, "0123456789");
        let mut out = Vec::new();
        response.write_truncated_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Full head with the full content-length…
        assert!(text.contains("content-length: 10\r\n"), "{text}");
        // …but only half the body follows.
        assert!(text.ends_with("\r\n\r\n01234"), "{text}");
    }
}
