//! The long-running protection server: acceptor thread, keep-alive
//! connection workers on a dedicated [`ServicePool`], routing, and a
//! graceful shutdown that joins every thread it spawned.
//!
//! ```text
//!  clients ──► acceptor ──try_submit──► ServicePool (connection workers)
//!                 │ full?                     │ per request
//!                 └──► 503, close             ├─ engine_for_on(seed)  one sibling engine
//!                                             └─ protect_user / protect_stream
//!                                                    └─ shared executor (persistent pool)
//! ```
//!
//! Backpressure: the accept queue is bounded (`max_pending`); when it
//! is full the acceptor answers `503 Service Unavailable` inline and
//! closes — it never blocks and never queues unboundedly. Shutdown:
//! stop accepting, wake the acceptor with a loopback connect, let the
//! connection workers observe the flag at their next read poll, drain,
//! join. Dropping the server performs the same shutdown.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mood_core::{protect_stream, Executor, ExecutorKind, MoodConfig, ENGINE_STAGES};
use mood_exec::{ServicePool, SubmitError, SubmitGate};
use mood_obs::{mix64, Recorder, RecorderConfig, SpanToken, StageAgg, TraceSpans};
use mood_trace::{Dataset, TraceStore};

use crate::api::{
    request_seed, BatchRequest, BatchResponse, ConfigResponse, EngineTemplate, ErrorBody,
    ProtectRequest, ProtectResponse, ProtectResult, TraceExport,
};
use crate::chaos::{ChaosConfig, FaultKind, FaultPlan};
use crate::http::{Conn, Request, RequestOutcome, Response};
use crate::metrics::{Endpoint, RenderScope, ServerMetrics};

/// How often blocked reads wake up to check shutdown and idle state.
const READ_POLL: Duration = Duration::from_millis(25);

/// Shape of a [`MoodServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Connection workers — concurrently served keep-alive connections.
    pub connection_workers: usize,
    /// Execution backend for the user-level fan-out of batch requests
    /// (and the candidate-level batches inside every request).
    pub executor: ExecutorKind,
    /// Thread budget of that backend.
    pub executor_threads: usize,
    /// The server seed of the determinism contract (see [`crate::api`]).
    pub server_seed: u64,
    /// Maximum accepted request-body size in bytes; larger bodies are
    /// answered with 413.
    pub max_body_bytes: usize,
    /// Accept-queue bound; connections beyond it are shed with 503.
    pub max_pending: usize,
    /// How long an idle keep-alive connection is held before closing.
    pub keep_alive: Duration,
    /// How long a partially received request may dribble in before the
    /// connection is answered with 408.
    pub request_timeout: Duration,
    /// Seeded fault injection ([`crate::chaos`]); `None` (the default)
    /// disables chaos entirely — every injection point reduces to one
    /// `Option` check.
    pub chaos: Option<ChaosConfig>,
    /// Default per-request candidate budget (deadline-aware graceful
    /// degradation); a request's own [`ProtectRequest::budget`] takes
    /// precedence. `None` means unlimited.
    pub candidate_budget: Option<u64>,
    /// Deterministic request tracing and the flight recorder: `Some`
    /// (the default) records per-request span trees into a bounded ring
    /// served by `GET /v1/debug/trace` and feeds the per-stage
    /// histograms on `/metrics`. `None` disables tracing entirely — no
    /// span clocks are read. Served bytes are bit-identical either way;
    /// only the `*_us` observability fields carry wall-clock.
    pub tracing: Option<RecorderConfig>,
    /// Additionally emit the pre-rename unprefixed metric aliases
    /// (`attack_scratch_reuses_total`, `heatmap_cache_total{...}`) on
    /// `/metrics` for scrapers that predate the `mood_serve_` prefix.
    pub legacy_metric_names: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            connection_workers: 4,
            executor: ExecutorKind::Persistent,
            executor_threads: 4,
            server_seed: MoodConfig::paper_default().seed,
            max_body_bytes: 4 * 1024 * 1024,
            max_pending: 128,
            keep_alive: Duration::from_secs(5),
            request_timeout: Duration::from_secs(5),
            chaos: None,
            candidate_budget: None,
            tracing: Some(RecorderConfig::default()),
            legacy_metric_names: false,
        }
    }
}

/// One accepted connection traveling through the [`ServicePool`]: the
/// stream plus its seeded fault schedule (`None` when chaos is off).
struct ConnJob {
    stream: TcpStream,
    plan: Option<FaultPlan>,
    /// The accept-time connection id; also keys non-protect trace ids.
    connection_id: u64,
    /// Accept timestamp, `Some` only when tracing: the worker derives
    /// the `queue_wait` synthetic span from it at pickup.
    accepted: Option<Instant>,
}

/// State shared by the acceptor, the connection workers and the handle.
struct ServerShared {
    template: EngineTemplate,
    executor: Arc<dyn Executor>,
    metrics: ServerMetrics,
    config: ServeConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Monotone connection ids: the `connection_id` of every fault
    /// decision, assigned at accept time.
    connection_seq: AtomicU64,
    /// The flight recorder; `None` when tracing is disabled.
    recorder: Option<Arc<Recorder>>,
    /// Back-reference to the connection pool for `/metrics` queue
    /// gauges. `Weak` because the pool's worker closure owns the
    /// `Arc<ServerShared>`; set once right after the pool is built.
    pool: OnceLock<Weak<ServicePool<ConnJob>>>,
    /// The compressed trace store backing this deployment, when one was
    /// attached — surfaces cache/compaction gauges on `/metrics`.
    store: OnceLock<Arc<TraceStore>>,
}

/// A running protection server. Shut it down explicitly with
/// [`MoodServer::shutdown`] or implicitly by dropping it; either way
/// every spawned thread (acceptor, connection workers, executor
/// workers) is joined — no leaks.
pub struct MoodServer {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<Arc<ServicePool<ConnJob>>>,
}

impl std::fmt::Debug for MoodServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MoodServer")
            .field("addr", &self.shared.addr)
            .field("executor", &self.shared.executor.name())
            .finish()
    }
}

impl MoodServer {
    /// Binds, spawns the acceptor and the connection-worker pool, and
    /// returns immediately; the server runs until shutdown.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration error, if any.
    pub fn start(config: ServeConfig, template: EngineTemplate) -> io::Result<MoodServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let executor = config.executor.build(config.executor_threads.max(1));
        let recorder = config.tracing.map(|cfg| Arc::new(Recorder::new(cfg)));
        let shared = Arc::new(ServerShared {
            template,
            executor,
            metrics: ServerMetrics::new(),
            config,
            addr,
            shutdown: AtomicBool::new(false),
            connection_seq: AtomicU64::new(0),
            recorder,
            pool: OnceLock::new(),
            store: OnceLock::new(),
        });

        let worker_shared = Arc::clone(&shared);
        // The forced-shedding injection point: chaos-flagged jobs are
        // rejected by the pool itself as `Full`, exercising the real
        // shed path. Fault decisions are stateless re-derivations, so
        // the gate needs no shared state — and without chaos no gate is
        // installed at all.
        let gate: Option<SubmitGate<ConnJob>> = shared.config.chaos.map(|_| {
            Box::new(|job: &ConnJob| job.plan.as_ref().is_some_and(|plan| plan.shed()))
                as SubmitGate<ConnJob>
        });
        let pool = Arc::new(ServicePool::with_submit_gate(
            "mood-serve",
            shared.config.connection_workers,
            shared.config.max_pending,
            move |_slot, job: ConnJob| {
                handle_connection(&worker_shared, job);
            },
            gate,
        ));
        let _ = shared.pool.set(Arc::downgrade(&pool));

        let acceptor_shared = Arc::clone(&shared);
        let acceptor_pool = Arc::clone(&pool);
        let acceptor = std::thread::Builder::new()
            .name("mood-serve-accept".to_string())
            .spawn(move || acceptor_loop(&listener, &acceptor_shared, &acceptor_pool))?;

        Ok(MoodServer {
            shared,
            acceptor: Some(acceptor),
            pool: Some(pool),
        })
    }

    /// Convenience: a server over the paper-default engine trained on
    /// `background`.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration error, if any.
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty (attack training needs data).
    pub fn start_paper_default(
        config: ServeConfig,
        background: &Dataset,
    ) -> io::Result<MoodServer> {
        Self::start(config, EngineTemplate::paper_default(background))
    }

    /// The bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metrics (live counters).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The flight recorder, when tracing is enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.shared.recorder.as_deref()
    }

    /// Attaches the compressed trace store backing this deployment so
    /// `/metrics` exposes its cache and compaction gauges
    /// (`mood_serve_store_*`). At most one store can be attached; later
    /// calls are ignored.
    pub fn attach_store(&self, store: Arc<TraceStore>) {
        let _ = self.shared.store.set(store);
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// join the acceptor, every connection worker and the executor.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of its blocking accept. A wildcard
            // bind reports the unspecified address, which is not
            // connectable everywhere — wake via loopback instead.
            let mut wake = self.shared.addr;
            if wake.ip().is_unspecified() {
                wake.set_ip(match wake.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect(wake);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for MoodServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &ServerShared, pool: &ServicePool<ConnJob>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.record_connection();
        let connection_id = shared.connection_seq.fetch_add(1, Ordering::Relaxed);
        let plan = shared
            .config
            .chaos
            .map(|chaos| FaultPlan::new(chaos, connection_id));
        // Injection point 1: accept-time connection drop — the client
        // sees an immediate EOF/reset, the retryable "server died on
        // us" failure.
        if let Some(plan) = &plan {
            if plan.accept_drop() {
                shared.metrics.record_fault(FaultKind::AcceptDrop);
                record_fault_trace(shared, connection_id, FaultKind::AcceptDrop);
                drop(stream);
                continue;
            }
        }
        let accepted = shared.recorder.as_ref().map(|_| Instant::now());
        match pool.try_submit(ConnJob {
            stream,
            plan,
            connection_id,
            accepted,
        }) {
            Ok(()) => {}
            Err(SubmitError::Full(mut job) | SubmitError::ShuttingDown(mut job)) => {
                // Shed load inline; never block the accept loop. Sheds
                // count as status-only responses — they carry no
                // handling latency for the histogram. Injection point
                // 2 lands here too: a chaos-gated job surfaces as
                // `Full` (the decision is stateless, so re-deriving it
                // for the counter agrees with the pool's gate).
                if let Some(plan) = &job.plan {
                    if plan.shed() {
                        shared.metrics.record_fault(FaultKind::Shed);
                        record_fault_trace(shared, connection_id, FaultKind::Shed);
                    }
                }
                shared.metrics.record_overload();
                shared.metrics.record_error_status(503);
                let resp = Response::json(
                    503,
                    &ErrorBody {
                        error: "server overloaded: accept queue full".to_string(),
                    },
                )
                .closing();
                let _ = resp.write_to(&mut job.stream);
            }
        }
    }
}

/// A connection that never reached a worker still leaves evidence in
/// the flight recorder: a zero-span trace keyed off the connection id
/// carrying the fault as an event.
fn record_fault_trace(shared: &ServerShared, connection_id: u64, kind: FaultKind) {
    let Some(recorder) = shared.recorder.as_deref() else {
        return;
    };
    let spans = TraceSpans::new(mix64(connection_id));
    let root = spans.begin("request");
    spans.event(root, &format!("fault_{}", kind.label()));
    spans.end(root);
    if let Some(record) = spans.finish() {
        recorder.record(record);
    }
}

/// Finishes a request's span tree and hands it to the flight recorder.
fn flush_trace(recorder: Option<&Recorder>, spans: TraceSpans) {
    if let (Some(recorder), Some(record)) = (recorder, spans.finish()) {
        recorder.record(record);
    }
}

/// Serves one connection until close, idle timeout or shutdown.
fn handle_connection(shared: &ServerShared, job: ConnJob) {
    let ConnJob {
        stream,
        mut plan,
        connection_id,
        accepted,
    } = job;
    // Queue wait is measured accept → worker pickup (here), not at the
    // first request read — the latter would bill client think time to
    // the queue.
    let queue_wait = accepted.map(|at| at.elapsed());
    let recorder = shared.recorder.as_deref();
    let Ok(mut conn) = Conn::new(stream, READ_POLL) else {
        return;
    };
    // A connection drained from the queue during shutdown still gets a
    // proper answer, like the acceptor's shed path — not a bare close.
    if shared.shutdown.load(Ordering::Acquire) {
        shared.metrics.record_error_status(503);
        let resp = Response::json(
            503,
            &ErrorBody {
                error: "server shutting down".to_string(),
            },
        )
        .closing();
        let _ = conn.write_response(&resp);
        return;
    }
    let mut idle_since = Instant::now();
    let mut request_idx: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn.read_request(shared.config.max_body_bytes, shared.config.request_timeout) {
            RequestOutcome::Closed => return,
            RequestOutcome::Idle => {
                if idle_since.elapsed() >= shared.config.keep_alive {
                    return;
                }
            }
            RequestOutcome::Bad { status, reason } => {
                // Protocol failures carry no meaningful handling
                // latency (the time went to waiting on the peer);
                // status-only, keep the histogram honest.
                shared.metrics.record_error_status(status);
                let resp = Response::json(status, &ErrorBody { error: reason }).closing();
                let _ = conn.write_response(&resp);
                return;
            }
            RequestOutcome::Complete(request) => {
                let started = Instant::now();
                // The provisional trace id keys off (connection,
                // request index); protect handlers re-key it to the
                // deterministic request seed once the body is parsed.
                let spans = match recorder {
                    Some(_) => TraceSpans::new(mix64(mix64(connection_id) ^ request_idx)),
                    None => TraceSpans::disabled(),
                };
                let root = spans.begin("request");
                spans.attr(root, "endpoint", request.path());
                if request_idx == 0 {
                    if let Some(wait) = queue_wait {
                        spans.child_complete(root, "queue_wait", wait, 1);
                    }
                }
                request_idx += 1;
                if let Some(plan) = &plan {
                    // Injection point 3: artificial handler delay. The
                    // response bytes are untouched — pure latency.
                    if let Some(pause) = plan.delay() {
                        shared.metrics.record_fault(FaultKind::Delay);
                        spans.event(root, "fault_delay");
                        std::thread::sleep(pause);
                    }
                    // Injection point 4: handler panic. The pool's
                    // catch_unwind keeps the worker alive; the client
                    // sees the connection die mid-request. The local
                    // span tree unwinds with the stack, so panicked
                    // requests intentionally leave no trace record.
                    if plan.panic() {
                        shared.metrics.record_fault(FaultKind::Panic);
                        panic!("chaos: injected handler panic");
                    }
                }
                let mut resp = route(shared, &request, &spans);
                if request.close || shared.shutdown.load(Ordering::Acquire) {
                    resp.close = true;
                }
                shared
                    .metrics
                    .record_response(resp.status, started.elapsed());
                spans.attr(root, "status", resp.status);
                // Injection point 5: mid-response truncation. The head
                // promises the full body, so the client detects an
                // unambiguous (and retryable) cut — never a plausible
                // short response.
                if let Some(plan) = &mut plan {
                    let truncate = plan.truncate();
                    plan.next_request();
                    if truncate {
                        shared.metrics.record_fault(FaultKind::Truncate);
                        spans.event(root, "fault_truncate");
                        spans.end(root);
                        flush_trace(recorder, spans);
                        let _ = conn.write_response_truncated(&resp);
                        return;
                    }
                }
                let close = resp.close;
                let write = spans.begin("write");
                let wrote = conn.write_response(&resp);
                spans.end(write);
                spans.end(root);
                flush_trace(recorder, spans);
                if wrote.is_err() || close {
                    return;
                }
                // The keep-alive clock starts when the response goes
                // out — handling time must not count against the
                // client's idle budget.
                idle_since = Instant::now();
            }
        }
    }
}

/// Dispatches one request to its handler.
fn route(shared: &ServerShared, request: &Request, spans: &TraceSpans) -> Response {
    const KNOWN: [&str; 6] = [
        "/healthz",
        "/v1/config",
        "/metrics",
        "/v1/protect",
        "/v1/protect/batch",
        "/v1/debug/trace",
    ];
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => {
            shared.metrics.record_request(Endpoint::Healthz);
            Response::text(200, "ok\n")
        }
        ("GET", "/v1/config") => {
            shared.metrics.record_request(Endpoint::Config);
            handle_config(shared)
        }
        ("GET", "/metrics") => {
            shared.metrics.record_request(Endpoint::Metrics);
            let queue = shared
                .pool
                .get()
                .and_then(Weak::upgrade)
                .map(|pool| pool.queue_stats());
            Response::text(
                200,
                &shared.metrics.render_with(&RenderScope {
                    backend: shared.executor.name(),
                    executor_threads: shared.executor.max_threads(),
                    connection_workers: shared.config.connection_workers,
                    profile_store: shared.template.profile_store_counters(),
                    legacy_metric_names: shared.config.legacy_metric_names,
                    queue,
                    store: shared.store.get().map(|store| store.stats()),
                    recorder: shared.recorder.as_deref(),
                }),
            )
        }
        ("GET", "/v1/debug/trace") => {
            shared.metrics.record_request(Endpoint::DebugTrace);
            handle_debug_trace(shared, &request.target)
        }
        ("POST", "/v1/protect") => {
            shared.metrics.record_request(Endpoint::Protect);
            handle_protect(shared, &request.body, spans)
        }
        ("POST", "/v1/protect/batch") => {
            shared.metrics.record_request(Endpoint::ProtectBatch);
            handle_batch(shared, &request.body, spans)
        }
        (_, path) if KNOWN.contains(&path) => {
            shared.metrics.record_request(Endpoint::Other);
            Response::json(
                405,
                &ErrorBody {
                    error: format!("method {} not allowed for {path}", request.method),
                },
            )
        }
        (_, path) => {
            shared.metrics.record_request(Endpoint::Other);
            Response::json(
                404,
                &ErrorBody {
                    error: format!("no such endpoint: {path}"),
                },
            )
        }
    }
}

/// `GET /v1/debug/trace?limit=N` — the flight recorder's JSON export:
/// the N most recent traces plus the retained slow traces. Spans carry
/// wall-clock `*_us` fields, so this endpoint is intentionally outside
/// the determinism contract (span ids and structure are still
/// deterministic).
fn handle_debug_trace(shared: &ServerShared, target: &str) -> Response {
    let Some(recorder) = shared.recorder.as_deref() else {
        return Response::json(
            404,
            &ErrorBody {
                error: "tracing disabled: start the server with `tracing: Some(..)`".to_string(),
            },
        );
    };
    let limit = query_param(target, "limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32);
    Response::json(
        200,
        &TraceExport {
            recorded_total: recorder.recorded_total(),
            slow_total: recorder.slow_total(),
            traces: recorder.export(limit),
            slow: recorder.export_slow(limit),
        },
    )
}

/// Pulls one `key=value` out of a request target's query string.
fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, query) = target.split_once('?')?;
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn handle_config(shared: &ServerShared) -> Response {
    Response::json(
        200,
        &ConfigResponse {
            addr: shared.addr.to_string(),
            executor: shared.executor.name().to_string(),
            executor_threads: shared.executor.max_threads(),
            connection_workers: shared.config.connection_workers,
            max_pending: shared.config.max_pending,
            max_body_bytes: shared.config.max_body_bytes,
            server_seed: shared.config.server_seed,
            lppms: shared.template.lppm_names(),
            compositions: shared.template.engine_for(0).compositions().len(),
            attacks: shared.template.attack_count(),
        },
    )
}

/// Parses a JSON body (through the shim's `from_reader`), mapping
/// failures to a 400.
fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    serde_json::from_reader(body).map_err(|e| {
        Response::json(
            400,
            &ErrorBody {
                error: format!("invalid request body: {e}"),
            },
        )
    })
}

/// Folds one request engine's scratch observables into the server
/// metrics: protection-buffer reuses, attack-scratch reuses and the
/// rasterization (heatmap-scratch) cache hit/miss counts.
fn record_engine_scratch(shared: &ServerShared, engine: &mood_core::MoodEngine) {
    shared.metrics.add_scratch_reuses(engine.scratch_reuses());
    shared
        .metrics
        .add_attack_scratch_reuses(engine.attack_scratch_reuses());
    shared
        .metrics
        .add_heatmap_cache(engine.raster_cache_hits(), engine.raster_cache_misses());
}

/// Folds the engine's per-stage aggregates into synthetic child spans
/// under the `engine` span — one span per stage, durations summed and
/// counts preserved; per-candidate work is aggregated, never traced
/// individually.
fn drain_stages(spans: &TraceSpans, engine_span: SpanToken, agg: Option<&StageAgg>) {
    let Some(agg) = agg else { return };
    for total in agg.drain() {
        spans.child_complete(
            engine_span,
            total.stage,
            Duration::from_nanos(total.ns),
            total.count,
        );
    }
}

fn handle_protect(shared: &ServerShared, body: &[u8], spans: &TraceSpans) -> Response {
    let parse = spans.begin("parse");
    let request: ProtectRequest = match parse_body(body) {
        Ok(request) => request,
        Err(resp) => {
            spans.end(parse);
            return resp;
        }
    };
    spans.end(parse);
    let seed = request_seed(shared.config.server_seed, request.request_id);
    // Re-key the trace to the request's deterministic identity: from
    // here on, span ids are a pure function of (server_seed,
    // request_id), independent of which connection carried the request.
    spans.set_trace_id(seed);
    let budget = request.budget.or(shared.config.candidate_budget);
    let agg = spans
        .is_enabled()
        .then(|| Arc::new(StageAgg::new(&ENGINE_STAGES)));
    let engine_span = spans.begin("engine");
    spans.attr(engine_span, "user", request.trace.user());
    spans.attr(engine_span, "request_id", request.request_id);
    let engine = shared.template.engine_for_request_observed(
        seed,
        Arc::clone(&shared.executor),
        budget,
        agg.clone(),
    );
    let outcome = engine.protect_user(&request.trace);
    drain_stages(spans, engine_span, agg.as_deref());
    if outcome.degraded {
        spans.event(engine_span, "degraded");
    }
    spans.end(engine_span);
    shared.metrics.add_users(1);
    if outcome.degraded {
        shared.metrics.add_degraded_results(1);
    }
    record_engine_scratch(shared, &engine);
    let respond = spans.begin("respond");
    let resp = Response::json(
        200,
        &ProtectResponse {
            request_id: request.request_id,
            seed,
            result: ProtectResult::from_outcome(&outcome),
        },
    );
    spans.end(respond);
    resp
}

fn handle_batch(shared: &ServerShared, body: &[u8], spans: &TraceSpans) -> Response {
    let parse = spans.begin("parse");
    let request: BatchRequest = match parse_body(body) {
        Ok(request) => request,
        Err(resp) => {
            spans.end(parse);
            return resp;
        }
    };
    spans.end(parse);
    if request.traces.is_empty() {
        return Response::json(
            400,
            &ErrorBody {
                error: "empty batch: at least one trace required".to_string(),
            },
        );
    }
    let dataset = match Dataset::from_traces(request.traces) {
        Ok(dataset) => dataset,
        Err(e) => {
            return Response::json(
                400,
                &ErrorBody {
                    error: format!("invalid batch: {e}"),
                },
            )
        }
    };
    let seed = request_seed(shared.config.server_seed, request.request_id);
    spans.set_trace_id(seed);
    let budget = request.budget.or(shared.config.candidate_budget);
    let agg = spans
        .is_enabled()
        .then(|| Arc::new(StageAgg::new(&ENGINE_STAGES)));
    let engine_span = spans.begin("engine");
    spans.attr(engine_span, "users", dataset.user_count());
    spans.attr(engine_span, "request_id", request.request_id);
    let engine = shared.template.engine_for_request_observed(
        seed,
        Arc::clone(&shared.executor),
        budget,
        agg.clone(),
    );
    let report = protect_stream(&engine, &dataset, shared.executor.as_ref(), |outcome| {
        shared.metrics.add_users(1);
        if outcome.degraded {
            shared.metrics.add_degraded_results(1);
        }
    });
    drain_stages(spans, engine_span, agg.as_deref());
    spans.end(engine_span);
    record_engine_scratch(shared, &engine);
    let respond = spans.begin("respond");
    let resp = match report {
        Ok(report) => Response::json(
            200,
            &BatchResponse::from_report(request.request_id, seed, &report),
        ),
        // Unreachable with the counting sink above, but the panic-safe
        // contract of protect_stream maps to a 500, not a dead worker.
        Err(e) => Response::json(
            500,
            &ErrorBody {
                error: e.to_string(),
            },
        ),
    };
    spans.end(respond);
    resp
}
