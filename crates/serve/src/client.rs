//! A minimal blocking HTTP/1.1 client for loopback use: integration
//! tests, the latency benchmark and the CI smoke step. Keep-alive by
//! default — one [`Client`] holds one connection and reuses it across
//! requests, which is exactly the path the server's keep-alive loop
//! needs exercised.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns an error when the body is not UTF-8.
    pub fn text(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))
    }

    /// Deserializes the JSON body.
    ///
    /// # Errors
    ///
    /// Returns an error when the body is not valid JSON of shape `T`.
    pub fn json<T: Deserialize>(&self) -> io::Result<T> {
        serde_json::from_reader(self.body.as_slice())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects, arming a generous read timeout so a wedged server
    /// fails a test instead of hanging it.
    ///
    /// # Errors
    ///
    /// Returns the connect/configuration error, if any.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads the response off the same
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns the transport error or a parse failure.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let written = write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: mood-serve\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n",
            body.len()
        )
        .and_then(|()| self.stream.write_all(body))
        .and_then(|()| self.stream.flush());
        match written {
            Ok(()) => self.read_response(),
            // The server may have answered-and-closed before we wrote
            // (load shedding does exactly that); a response can still be
            // sitting in the receive buffer — prefer it over the EPIPE.
            Err(write_err) => self.read_response().map_err(|_| write_err),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Returns the transport error or a parse failure.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Returns the transport error, a serialization failure or a parse
    /// failure.
    pub fn post_json<T: Serialize>(&mut self, path: &str, value: &T) -> io::Result<ClientResponse> {
        let mut body = Vec::with_capacity(256);
        serde_json::to_writer(&mut body, value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.request("POST", path, Some(&body))
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_len = loop {
            if let Some(pos) = crate::http::find_subsequence(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
        };
        // Same head-splitting rules as the server (crate::http).
        let (status_line, headers) = crate::http::split_head(&self.buf[..head_len - 4])
            .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line `{status_line}`"),
                )
            })?;
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < head_len + content_length {
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body = self.buf[head_len..head_len + content_length].to_vec();
        self.buf.drain(..head_len + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot request on a fresh connection (the non-keep-alive path).
///
/// # Errors
///
/// Returns the transport error or a parse failure.
pub fn fetch<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<ClientResponse> {
    let mut client = Client::connect(addr)?;
    client.request(method, path, body)
}
