//! A minimal blocking HTTP/1.1 client for loopback use: integration
//! tests, the latency benchmark and the CI smoke step. Keep-alive by
//! default — one [`Client`] holds one connection and reuses it across
//! requests, which is exactly the path the server's keep-alive loop
//! needs exercised.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns an error when the body is not UTF-8.
    pub fn text(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))
    }

    /// Deserializes the JSON body.
    ///
    /// # Errors
    ///
    /// Returns an error when the body is not valid JSON of shape `T`.
    pub fn json<T: Deserialize>(&self) -> io::Result<T> {
        serde_json::from_reader(self.body.as_slice())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Transport timeouts of a [`Client`] connection.
///
/// The default keeps the historical behavior: no connect timeout (the
/// OS default applies) and a generous 30 s read timeout so a wedged
/// server fails a test instead of hanging it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection; `None` leaves the OS
    /// default in place.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read; `None` blocks forever.
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects with the default [`ClientConfig`] (30 s read timeout).
    ///
    /// # Errors
    ///
    /// Returns the connect/configuration error, if any.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit transport timeouts.
    ///
    /// # Errors
    ///
    /// Returns the connect/configuration error, if any — including
    /// `TimedOut` when `connect_timeout` expires first.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Client> {
        let stream = match config.connect_timeout {
            // `TcpStream::connect_timeout` needs a resolved address;
            // try each in turn like `connect` itself would.
            Some(timeout) => {
                let mut last = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(config.read_timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads the response off the same
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns the transport error or a parse failure.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let written = write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: mood-serve\r\ncontent-length: {}\r\ncontent-type: application/json\r\n\r\n",
            body.len()
        )
        .and_then(|()| self.stream.write_all(body))
        .and_then(|()| self.stream.flush());
        match written {
            Ok(()) => self.read_response(),
            // The server may have answered-and-closed before we wrote
            // (load shedding does exactly that); a response can still be
            // sitting in the receive buffer — prefer it over the EPIPE.
            Err(write_err) => self.read_response().map_err(|_| write_err),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Returns the transport error or a parse failure.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Returns the transport error, a serialization failure or a parse
    /// failure.
    pub fn post_json<T: Serialize>(&mut self, path: &str, value: &T) -> io::Result<ClientResponse> {
        let mut body = Vec::with_capacity(256);
        serde_json::to_writer(&mut body, value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.request("POST", path, Some(&body))
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_len = loop {
            if let Some(pos) = crate::http::find_subsequence(&self.buf, b"\r\n\r\n") {
                break pos + 4;
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
        };
        // Same head-splitting rules as the server (crate::http).
        let (status_line, headers) = crate::http::split_head(&self.buf[..head_len - 4])
            .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line `{status_line}`"),
                )
            })?;
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < head_len + content_length {
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body = self.buf[head_len..head_len + content_length].to_vec();
        self.buf.drain(..head_len + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot request on a fresh connection (the non-keep-alive path).
///
/// # Errors
///
/// Returns the transport error or a parse failure.
pub fn fetch<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<ClientResponse> {
    let mut client = Client::connect(addr)?;
    client.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn wedged_server_times_out_instead_of_hanging() {
        // A listener that accepts and then never writes a byte.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let wedge = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the connection open until the test signals it's over
            // (dropping earlier would turn the timeout into an EOF).
            let _ = done_rx.recv_timeout(Duration::from_secs(5));
            drop(stream);
        });

        let config = ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_millis(100)),
        };
        let mut client = Client::connect_with(addr, config).unwrap();
        let started = Instant::now();
        let err = client.get("/healthz").expect_err("no response can exist");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a read-timeout error, got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "timeout must fire promptly, took {:?}",
            started.elapsed()
        );
        done_tx.send(()).unwrap();
        wedge.join().unwrap();
    }

    #[test]
    fn default_config_keeps_the_historical_read_timeout() {
        assert_eq!(
            ClientConfig::default().read_timeout,
            Some(Duration::from_secs(30))
        );
        assert_eq!(ClientConfig::default().connect_timeout, None);
    }
}
