//! Deterministic fault injection for the serve stack.
//!
//! Chaos is **off by default** and zero-cost when disabled: the server
//! holds an `Option<ChaosConfig>` and every injection point is a single
//! `if let Some` branch. When enabled, every fault decision is a pure
//! function of `(chaos_seed, connection_id, event_idx)` — the same
//! SplitMix64 derivation trick the engine uses for variant RNG streams —
//! so a chaos run is exactly replayable: same seed, same accept order,
//! same faults.
//!
//! Faults never rewrite bytes. A fault either kills a response before
//! the client sees all of it (drop, truncate, panic, shed) or delays it
//! (delay); a response that arrives complete is byte-identical to the
//! fault-free run. That is what makes the [`crate::RetryClient`]'s
//! idempotency verifier a meaningful gate rather than a tautology.
//!
//! ## Event layout
//!
//! Each connection consumes a fixed, documented event schedule so that
//! any component (acceptor, pool gate, connection handler) can re-derive
//! a decision statelessly:
//!
//! | event_idx        | fault kind   | decided by          |
//! |------------------|--------------|---------------------|
//! | 0                | accept drop  | acceptor thread     |
//! | 1                | queue shed   | `ServicePool` gate  |
//! | 2 + 3·r          | delay        | connection handler  |
//! | 3 + 3·r          | panic        | connection handler  |
//! | 4 + 3·r          | truncate     | connection handler  |
//!
//! where `r` is the zero-based index of the request on its (keep-alive)
//! connection.

use std::time::Duration;

/// The kinds of fault the chaos layer can inject, in metric-label order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The acceptor drops the connection right after `accept`.
    AcceptDrop,
    /// The pool's submit gate reports queue-full, shedding with 503.
    Shed,
    /// The handler sleeps before serving the request.
    Delay,
    /// The handler panics mid-request (caught by the pool; the client
    /// sees the connection die).
    Panic,
    /// The response is cut off mid-body (headers promise more bytes
    /// than arrive).
    Truncate,
}

impl FaultKind {
    /// Every kind, in [`FaultKind::index`] order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::AcceptDrop,
        FaultKind::Shed,
        FaultKind::Delay,
        FaultKind::Panic,
        FaultKind::Truncate,
    ];

    /// Dense counter index of this kind.
    pub fn index(self) -> usize {
        match self {
            FaultKind::AcceptDrop => 0,
            FaultKind::Shed => 1,
            FaultKind::Delay => 2,
            FaultKind::Panic => 3,
            FaultKind::Truncate => 4,
        }
    }

    /// The `kind="..."` label used on `mood_serve_faults_injected_total`.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::AcceptDrop => "accept_drop",
            FaultKind::Shed => "shed",
            FaultKind::Delay => "delay",
            FaultKind::Panic => "panic",
            FaultKind::Truncate => "truncate",
        }
    }
}

/// Seeded fault-injection configuration ([`crate::ServeConfig::chaos`]).
///
/// Each field is the per-event probability (in `[0, 1]`) that the fault
/// fires at its injection point. All probabilities default to zero, so
/// `ChaosConfig { seed, ..Default::default() }` is an enabled-but-inert
/// plan — useful for measuring that the injection points themselves
/// cost nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of every fault decision (`--chaos-seed`).
    pub seed: u64,
    /// P(drop the connection at accept time).
    pub accept_drop: f64,
    /// P(force queue-full shedding at submit time).
    pub shed: f64,
    /// P(delay the handler before serving a request).
    pub delay: f64,
    /// Length of an injected delay.
    pub delay_ms: u64,
    /// P(panic in the handler for a request).
    pub panic: f64,
    /// P(truncate the response mid-body).
    pub truncate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            accept_drop: 0.0,
            shed: 0.0,
            delay: 0.0,
            delay_ms: 10,
            panic: 0.0,
            truncate: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Parses a `--chaos-profile` string: `+`-separated fault names out
    /// of `drop`, `shed`, `delay`, `panic`, `truncate`, or `all`. Each
    /// named fault gets a moderate default probability (0.5; delay
    /// fires always, for 10 ms — latency, not loss).
    ///
    /// # Errors
    ///
    /// Returns the offending token when one is not a known fault name.
    pub fn from_profile(profile: &str, seed: u64) -> Result<Self, String> {
        let mut config = Self {
            seed,
            ..Self::default()
        };
        for token in profile.split('+') {
            match token.trim() {
                "drop" => config.accept_drop = 0.5,
                "shed" => config.shed = 0.5,
                "delay" => {
                    config.delay = 1.0;
                    config.delay_ms = 10;
                }
                "panic" => config.panic = 0.5,
                "truncate" => config.truncate = 0.5,
                "all" => {
                    config.accept_drop = 0.25;
                    config.shed = 0.25;
                    config.delay = 0.5;
                    config.delay_ms = 5;
                    config.panic = 0.25;
                    config.truncate = 0.25;
                }
                other => return Err(format!("unknown chaos profile token `{other}`")),
            }
        }
        Ok(config)
    }

    /// The probability configured for `kind`.
    pub fn probability(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::AcceptDrop => self.accept_drop,
            FaultKind::Shed => self.shed,
            FaultKind::Delay => self.delay,
            FaultKind::Panic => self.panic,
            FaultKind::Truncate => self.truncate,
        }
    }
}

/// The seeded fault schedule of one connection.
///
/// Decisions are stateless re-derivations — `FaultPlan` only tracks the
/// per-connection request counter for the keep-alive event layout — so
/// holding a plan costs three words and cloning or re-deriving a
/// decision elsewhere (e.g. the acceptor re-checking the pool gate's
/// shed verdict to count it) always agrees.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    chaos: ChaosConfig,
    connection_id: u64,
    request_idx: u64,
}

/// Events 0 and 1 are connection-scoped; per-request events start at 2.
const REQUEST_EVENT_BASE: u64 = 2;
/// Delay, panic, truncate: three rolls per request.
const EVENTS_PER_REQUEST: u64 = 3;

impl FaultPlan {
    /// The plan for connection `connection_id` under `chaos`.
    pub fn new(chaos: ChaosConfig, connection_id: u64) -> Self {
        Self {
            chaos,
            connection_id,
            request_idx: 0,
        }
    }

    /// The chaos configuration this plan rolls against.
    pub fn chaos(&self) -> &ChaosConfig {
        &self.chaos
    }

    /// Event 0: drop the connection at accept time?
    pub fn accept_drop(&self) -> bool {
        self.fires(FaultKind::AcceptDrop, 0)
    }

    /// Event 1: force queue-full shedding at submit time? Stateless, so
    /// the pool's gate and the acceptor's fault counter agree for free.
    pub fn shed(&self) -> bool {
        self.fires(FaultKind::Shed, 1)
    }

    /// Delay event of the current request, as a duration when it fires.
    pub fn delay(&self) -> Option<Duration> {
        self.fires(FaultKind::Delay, self.request_event(0))
            .then(|| Duration::from_millis(self.chaos.delay_ms))
    }

    /// Panic event of the current request.
    pub fn panic(&self) -> bool {
        self.fires(FaultKind::Panic, self.request_event(1))
    }

    /// Truncate event of the current request.
    pub fn truncate(&self) -> bool {
        self.fires(FaultKind::Truncate, self.request_event(2))
    }

    /// Advances to the next request on this keep-alive connection.
    pub fn next_request(&mut self) {
        self.request_idx += 1;
    }

    fn request_event(&self, offset: u64) -> u64 {
        REQUEST_EVENT_BASE + EVENTS_PER_REQUEST * self.request_idx + offset
    }

    /// Does `kind` fire at `event_idx`? A uniform roll in `[0, 1)`
    /// derived SplitMix64-style from `(seed, connection_id, event_idx)`
    /// compared against the configured probability.
    fn fires(&self, kind: FaultKind, event_idx: u64) -> bool {
        let p = self.chaos.probability(kind);
        if p <= 0.0 {
            return false;
        }
        let mut h = self.chaos.seed;
        h ^= mix64(self.connection_id);
        h ^= mix64(event_idx);
        let roll = (mix64(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        roll < p
    }
}

/// SplitMix64 finalizer (same constants as the engine's stream
/// derivation).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let chaos = ChaosConfig::from_profile("all", 42).unwrap();
        for conn in 0..50u64 {
            let mut a = FaultPlan::new(chaos, conn);
            let mut b = FaultPlan::new(chaos, conn);
            for _ in 0..10 {
                assert_eq!(a.accept_drop(), b.accept_drop());
                assert_eq!(a.shed(), b.shed());
                assert_eq!(a.delay(), b.delay());
                assert_eq!(a.panic(), b.panic());
                assert_eq!(a.truncate(), b.truncate());
                a.next_request();
                b.next_request();
            }
        }
    }

    #[test]
    fn plans_vary_across_connections_and_seeds() {
        let chaos = ChaosConfig::from_profile("drop", 7).unwrap();
        let fired: Vec<bool> = (0..256u64)
            .map(|conn| FaultPlan::new(chaos, conn).accept_drop())
            .collect();
        let count = fired.iter().filter(|f| **f).count();
        // p = 0.5 over 256 connections: both outcomes must appear, and
        // the rate should be in a loose central band.
        assert!(
            count > 64 && count < 192,
            "suspicious drop rate {count}/256"
        );

        let other = ChaosConfig::from_profile("drop", 8).unwrap();
        let fired_other: Vec<bool> = (0..256u64)
            .map(|conn| FaultPlan::new(other, conn).accept_drop())
            .collect();
        assert_ne!(fired, fired_other, "seed must change the schedule");
    }

    #[test]
    fn zero_probability_never_fires() {
        let chaos = ChaosConfig {
            seed: 99,
            ..Default::default()
        };
        for conn in 0..100u64 {
            let mut plan = FaultPlan::new(chaos, conn);
            for _ in 0..5 {
                assert!(!plan.accept_drop());
                assert!(!plan.shed());
                assert!(plan.delay().is_none());
                assert!(!plan.panic());
                assert!(!plan.truncate());
                plan.next_request();
            }
        }
    }

    #[test]
    fn profiles_parse() {
        let c = ChaosConfig::from_profile("drop+delay", 1).unwrap();
        assert_eq!(c.accept_drop, 0.5);
        assert_eq!(c.delay, 1.0);
        assert_eq!(c.shed, 0.0);

        let c = ChaosConfig::from_profile("all", 1).unwrap();
        assert!(c.accept_drop > 0.0 && c.truncate > 0.0 && c.panic > 0.0);

        assert!(ChaosConfig::from_profile("drop+latency", 1).is_err());
    }

    #[test]
    fn requests_get_independent_rolls() {
        let chaos = ChaosConfig::from_profile("panic", 3).unwrap();
        let mut any_panic = false;
        let mut any_clean = false;
        for conn in 0..32u64 {
            let mut plan = FaultPlan::new(chaos, conn);
            for _ in 0..8 {
                if plan.panic() {
                    any_panic = true;
                } else {
                    any_clean = true;
                }
                plan.next_request();
            }
        }
        assert!(any_panic && any_clean);
    }
}
