//! A retrying, idempotency-verifying wrapper over [`Client`].
//!
//! The service's determinism contract makes every request idempotent:
//! a replayed `(server_seed, user, request_id)` returns byte-identical
//! bytes. [`RetryClient`] cashes that in — any *retryable* failure
//! (connect refused, connection reset/EOF mid-response, read timeout,
//! 503 shed) is simply retried on a fresh connection with deterministic
//! exponential backoff and seeded jitter, up to a retry budget.
//! Non-retryable outcomes (4xx protocol errors, unexpected statuses)
//! are returned to the caller untouched: retrying a malformed request
//! cannot unmalform it.
//!
//! In *verify* mode the client additionally remembers the first
//! successful body per `(method, path, body)` and errors out if a later
//! success for the same request ever differs — turning every retry and
//! every deliberate replay into an idempotency assertion. The chaos
//! integration suite drives the loopback server through fault profiles
//! with exactly this mode on.

use std::collections::HashMap;
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

use mood_obs::{Recorder, SpanToken, TraceSpans};
use serde::Serialize;

use crate::client::{Client, ClientConfig, ClientResponse};

/// Retry/backoff policy of a [`RetryClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, first try included (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base · 2^(k−1)`, capped
    /// at [`RetryPolicy::max_backoff`], then jittered.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream: the jitter of attempt
    /// `k` of request `n` is a pure function of `(seed, n, k)`.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based) of request
    /// `request_no`: exponential growth capped at `max_backoff`, scaled
    /// by a deterministic jitter factor in `[0.5, 1.0)` derived from
    /// `(jitter_seed, request_no, attempt)`.
    pub fn backoff(&self, request_no: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff);
        let mut h = self.jitter_seed;
        h ^= mix64(request_no);
        h ^= mix64(u64::from(attempt));
        let unit = (mix64(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        raw.mul_f64(0.5 + unit / 2.0)
    }
}

/// Counters of a [`RetryClient`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests issued through the client.
    pub requests: u64,
    /// Attempts made (≥ `requests`).
    pub attempts: u64,
    /// Retries after a retryable failure (`attempts − ` successes on
    /// first try).
    pub retries: u64,
    /// Successful responses that matched a remembered first-success
    /// body in verify mode.
    pub replays_verified: u64,
}

/// `true` when `status` is worth retrying: the server shed load (503)
/// and an identical retry can land once the queue drains. 4xx statuses
/// are the client's own fault and are final.
pub fn retryable_status(status: u16) -> bool {
    status == 503
}

/// `true` when a transport error is worth retrying on a fresh
/// connection: the connection died (refused/reset/aborted/broken pipe),
/// the response was cut off (`UnexpectedEof` — e.g. a truncated body),
/// or a read timed out (`WouldBlock`/`TimedOut`).
pub fn retryable_io(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// Stable `reason` label of a retryable failure, as emitted on
/// `mood_serve_client_retries_total{reason=...}`.
pub fn retry_reason(err: &io::Error) -> &'static str {
    match err.kind() {
        io::ErrorKind::ConnectionRefused => "io_refused",
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => "io_reset",
        io::ErrorKind::UnexpectedEof => "io_eof",
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => "io_timeout",
        _ => "io_other",
    }
}

/// A retrying wrapper over [`Client`] (see the module docs).
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    config: ClientConfig,
    conn: Option<Client>,
    stats: RetryStats,
    verify: bool,
    seen: HashMap<(String, String, Vec<u8>), Vec<u8>>,
    recorder: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for RetryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryClient")
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .field("verify", &self.verify)
            .field("stats", &self.stats)
            .finish()
    }
}

impl RetryClient {
    /// A retry client for `addr` with `policy` and the default
    /// transport timeouts. No connection is opened until the first
    /// request.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self::with_config(addr, policy, ClientConfig::default())
    }

    /// [`RetryClient::new`] with explicit transport timeouts.
    pub fn with_config(addr: impl Into<String>, policy: RetryPolicy, config: ClientConfig) -> Self {
        Self {
            addr: addr.into(),
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            config,
            conn: None,
            stats: RetryStats::default(),
            verify: false,
            seen: HashMap::new(),
            recorder: None,
        }
    }

    /// Attaches a flight recorder: every retry bumps
    /// `mood_serve_client_retries_total{reason=...}` and a request that
    /// needed retries leaves a `client_request` trace carrying one
    /// `retry_<reason>` event per retry.
    pub fn observed(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Turns on the idempotency verifier: the first successful (2xx)
    /// body per `(method, path, body)` is remembered, and any later
    /// success that differs fails the request with `InvalidData`
    /// instead of returning silently wrong bytes.
    pub fn verifying(mut self) -> Self {
        self.verify = true;
        self
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Sends one request, retrying retryable failures (see the module
    /// docs) on a fresh connection with deterministic backoff.
    ///
    /// # Errors
    ///
    /// Returns the last failure once the retry budget is exhausted, a
    /// non-retryable transport error as-is, or `InvalidData` on an
    /// idempotency violation in verify mode.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let request_no = self.stats.requests;
        self.stats.requests += 1;
        // Client-side trace, keyed deterministically off the jitter
        // stream's identity; only requests that actually retried are
        // handed to the flight recorder.
        let spans = match &self.recorder {
            Some(_) => TraceSpans::new(mix64(self.policy.jitter_seed ^ mix64(request_no))),
            None => TraceSpans::disabled(),
        };
        let root = spans.begin("client_request");
        spans.attr(root, "target", format_args!("{method} {path}"));
        let mut retried = false;
        let result = self.run_attempts(method, path, body, request_no, &spans, root, &mut retried);
        if retried {
            spans.attr(root, "outcome", if result.is_ok() { "ok" } else { "error" });
            spans.end(root);
            if let (Some(recorder), Some(record)) = (&self.recorder, spans.finish()) {
                recorder.record(record);
            }
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_attempts(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        request_no: u64,
        spans: &TraceSpans,
        root: SpanToken,
        retried: &mut bool,
    ) -> io::Result<ClientResponse> {
        let mut last: Option<io::Error> = None;
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                self.stats.retries += 1;
                std::thread::sleep(self.policy.backoff(request_no, attempt - 1));
            }
            self.stats.attempts += 1;
            let will_retry = attempt < self.policy.max_attempts;
            match self.attempt(method, path, body) {
                Ok(response) if retryable_status(response.status) => {
                    // A shed (503 + connection: close): reconnect.
                    self.conn = None;
                    if will_retry {
                        *retried = true;
                        self.note_retry(spans, root, "status_503");
                    }
                    last = Some(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("server shed the request with {}", response.status),
                    ));
                }
                Ok(response) => {
                    if response.status / 100 == 2 && self.verify {
                        self.check_idempotent(method, path, body, &response)?;
                    }
                    return Ok(response);
                }
                Err(e) if retryable_io(&e) => {
                    self.conn = None;
                    if will_retry {
                        *retried = true;
                        self.note_retry(spans, root, retry_reason(&e));
                    }
                    last = Some(e);
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        let attempts = self.policy.max_attempts;
        Err(last.map_or_else(
            || io::Error::other("retry budget exhausted"),
            |e| {
                io::Error::new(
                    e.kind(),
                    format!("retry budget exhausted after {attempts} attempts: {e}"),
                )
            },
        ))
    }

    /// One retry is about to happen: bump the labeled counter and leave
    /// an event on the client span.
    fn note_retry(&self, spans: &TraceSpans, root: SpanToken, reason: &str) {
        if let Some(recorder) = &self.recorder {
            recorder.bump("mood_serve_client_retries_total", "reason", reason);
        }
        spans.event(root, &format!("retry_{reason}"));
    }

    /// `GET path` with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryClient::request`].
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body, with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryClient::request`]; additionally `InvalidData` when
    /// `value` fails to serialize.
    pub fn post_json<T: Serialize>(&mut self, path: &str, value: &T) -> io::Result<ClientResponse> {
        let mut body = Vec::with_capacity(256);
        serde_json::to_writer(&mut body, value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.request("POST", path, Some(&body))
    }

    /// One attempt on the kept (or a fresh) connection.
    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect_with(&self.addr, self.config)?);
        }
        let conn = self.conn.as_mut().expect("connection was just ensured");
        let response = conn.request(method, path, body)?;
        // The server closes after error statuses and sheds; keeping the
        // connection would make the next attempt read from a corpse.
        if response.status != 200 || response.header("connection") == Some("close") {
            self.conn = None;
        }
        Ok(response)
    }

    fn check_idempotent(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        response: &ClientResponse,
    ) -> io::Result<()> {
        let key = (
            method.to_string(),
            path.to_string(),
            body.unwrap_or(&[]).to_vec(),
        );
        match self.seen.get(&key) {
            Some(first) if first == &response.body => {
                self.stats.replays_verified += 1;
                Ok(())
            }
            Some(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "idempotency violation: replay of {method} {path} returned different bytes"
                ),
            )),
            None => {
                self.seen.insert(key, response.body.clone());
                Ok(())
            }
        }
    }
}

/// One-shot helper: a [`RetryClient`] for `addr` is built, used for a
/// single request and dropped.
///
/// # Errors
///
/// See [`RetryClient::request`].
pub fn fetch_with_retries<A: ToSocketAddrs + std::fmt::Display>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    policy: RetryPolicy,
) -> io::Result<ClientResponse> {
    RetryClient::new(addr.to_string(), policy).request(method, path, body)
}

/// SplitMix64 finalizer (jitter stream derivation).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 7,
        };
        for attempt in 1..=6 {
            assert_eq!(
                policy.backoff(3, attempt),
                policy.backoff(3, attempt),
                "same (request, attempt) must give the same backoff"
            );
        }
        // Jitter keeps every backoff within [raw/2, raw).
        let b1 = policy.backoff(0, 1);
        assert!(b1 >= Duration::from_millis(5) && b1 < Duration::from_millis(10));
        let b4 = policy.backoff(0, 4);
        assert!(b4 >= Duration::from_millis(40) && b4 < Duration::from_millis(80));
        // Past the cap, growth stops (jitter aside).
        let b7 = policy.backoff(0, 7);
        assert!(b7 <= Duration::from_millis(100));
        // Different requests jitter differently (with this seed).
        assert_ne!(policy.backoff(1, 1), policy.backoff(2, 1));
    }

    #[test]
    fn classification_is_what_the_contract_promises() {
        assert!(retryable_status(503));
        assert!(!retryable_status(200));
        assert!(!retryable_status(400));
        assert!(!retryable_status(404));

        for kind in [
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(retryable_io(&io::Error::new(kind, "x")), "{kind:?}");
        }
        assert!(!retryable_io(&io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed"
        )));
    }

    #[test]
    fn refused_connection_exhausts_the_budget_with_the_last_error() {
        // A bound-then-dropped listener leaves a port nothing listens
        // on; connect is refused immediately on loopback.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 1,
        };
        let mut client = RetryClient::new(format!("127.0.0.1:{port}"), policy);
        let err = client.get("/healthz").expect_err("nothing listens there");
        assert!(
            err.to_string().contains("retry budget exhausted after 3"),
            "{err}"
        );
        assert_eq!(client.stats().attempts, 3);
        assert_eq!(client.stats().retries, 2);
    }

    #[test]
    fn reason_labels_are_stable() {
        assert_eq!(
            retry_reason(&io::Error::new(io::ErrorKind::ConnectionRefused, "x")),
            "io_refused"
        );
        assert_eq!(
            retry_reason(&io::Error::new(io::ErrorKind::BrokenPipe, "x")),
            "io_reset"
        );
        assert_eq!(
            retry_reason(&io::Error::new(io::ErrorKind::UnexpectedEof, "x")),
            "io_eof"
        );
        assert_eq!(
            retry_reason(&io::Error::new(io::ErrorKind::TimedOut, "x")),
            "io_timeout"
        );
    }

    #[test]
    fn observed_retries_reach_the_flight_recorder() {
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 42,
        };
        let recorder = Arc::new(Recorder::new(mood_obs::RecorderConfig::default()));
        let mut client =
            RetryClient::new(format!("127.0.0.1:{port}"), policy).observed(Arc::clone(&recorder));
        client.get("/healthz").expect_err("nothing listens there");
        // 3 attempts, 2 of which were preceded by a counted retry.
        let counters = recorder.counters();
        assert_eq!(counters.len(), 1, "{counters:?}");
        assert_eq!(counters[0].metric, "mood_serve_client_retries_total");
        assert_eq!(counters[0].label_value, "io_refused");
        assert_eq!(counters[0].value, 2);
        // The retried request left one client trace with both events.
        let traces = recorder.export(8);
        assert_eq!(traces.len(), 1);
        let root = &traces[0].spans[0];
        assert_eq!(root.stage, "client_request");
        assert_eq!(
            root.events
                .iter()
                .filter(|e| e.name == "retry_io_refused")
                .count(),
            2,
            "{root:?}"
        );
    }
}
