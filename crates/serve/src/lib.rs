//! `mood-serve` — MooD as a long-running protection *service*.
//!
//! The paper is a deployment paper: its end state is an online
//! middleware protecting mobility traces at the service boundary where
//! they are collected, not a batch CLI. This crate is that subsystem —
//! a std-only HTTP/1.1 server (hand-rolled over `std::net`; the build
//! environment is offline, so no hyper/tokio) wrapping a shared engine
//! template and the [`mood_core::protect_stream`] pipeline:
//!
//! | endpoint | method | purpose |
//! |---|---|---|
//! | `/healthz` | GET | liveness probe (`ok`) |
//! | `/v1/config` | GET | the running server's shape (JSON) |
//! | `/metrics` | GET | Prometheus text: requests, latency + per-stage histograms, queue gauges, executor backend/threads |
//! | `/v1/protect` | POST | one user trace in → protected trace + chosen LPPM + metrics out |
//! | `/v1/protect/batch` | POST | many users, fanned out through the persistent executor via `protect_stream` |
//! | `/v1/debug/trace` | GET | flight-recorder JSON: the last N request traces plus retained slow traces (`?limit=N`) |
//!
//! Connections are keep-alive and served by a dedicated worker pool
//! ([`mood_exec::ServicePool`]) behind a bounded accept queue — when
//! the queue is full the acceptor sheds load with `503` instead of
//! queueing unboundedly. Shutdown joins every thread.
//!
//! **Determinism contract:** the engine seed of a request derives from
//! `(server_seed, request_id)`; combined with the engine's per-user
//! stream derivation, a served protected trace is a pure function of
//! `(server_seed, user, request_id)` — replaying a request is
//! byte-identical, batch equals the union of single requests, and both
//! equal the offline [`mood_core::protect_stream`] result with the
//! same derived seed (see [`api`]).
//!
//! **Resilience:** that purity makes every request idempotent, which
//! the robustness layer cashes in. [`ChaosConfig`]/[`FaultPlan`]
//! ([`chaos`]) inject seeded, exactly-replayable faults (accept drops,
//! forced shedding, delays, handler panics, response truncation) when
//! enabled via [`ServeConfig::chaos`]; [`RetryClient`] ([`retry`])
//! retries retryable failures with deterministic backoff and can verify
//! that a replayed `request_id` returns byte-identical bytes; and a
//! per-request candidate budget ([`ProtectRequest::budget`]) degrades
//! over-deadline requests gracefully and deterministically.
//!
//! **Observability:** when [`ServeConfig::tracing`] is `Some` (the
//! default), every request carries a deterministic span tree
//! ([`mood_obs::TraceSpans`] via [`mood_core::obs`]) — queue wait,
//! parse, engine (with per-stage aggregate children from the core
//! pipeline), respond, write — recorded into a bounded flight recorder
//! ([`mood_obs::Recorder`]) served by `GET /v1/debug/trace`. Span ids
//! and structure derive from `(server_seed, request_id)`, never from
//! wall-clock; durations are observability-only, so served bytes are
//! bit-identical with tracing on or off. Chaos faults and client
//! retries surface as span events.
//!
//! # Examples
//!
//! ```
//! use mood_serve::{Client, MoodServer, ServeConfig};
//! use mood_synth::presets;
//! use mood_trace::TimeDelta;
//!
//! let ds = presets::privamov_like().scaled(0.12).generate();
//! let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
//! let server = MoodServer::start_paper_default(ServeConfig::default(), &background)?;
//!
//! let mut client = Client::connect(server.local_addr())?;
//! assert_eq!(client.get("/healthz")?.status, 200);
//!
//! let request = mood_serve::ProtectRequest {
//!     request_id: 1,
//!     trace: test.iter().next().unwrap().clone(),
//!     budget: None,
//! };
//! let response = client.post_json("/v1/protect", &request)?;
//! assert_eq!(response.status, 200);
//!
//! server.shutdown(); // joins every thread
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod chaos;
mod client;
mod http;
mod metrics;
pub mod retry;
mod server;

pub use api::{
    request_seed, BatchRequest, BatchResponse, ConfigResponse, EngineTemplate, ErrorBody,
    ProtectRequest, ProtectResponse, ProtectResult, PublishedTrace, TraceExport,
};
pub use chaos::{ChaosConfig, FaultKind, FaultPlan};
pub use client::{fetch, Client, ClientConfig, ClientResponse};
pub use http::{reason_phrase, Conn, Request, RequestOutcome, Response, MAX_HEAD_BYTES};
pub use metrics::{escape_label_value, Endpoint, RenderScope, ServerMetrics};
pub use mood_obs;
pub use retry::{
    retry_reason, retryable_io, retryable_status, RetryClient, RetryPolicy, RetryStats,
};
pub use server::{MoodServer, ServeConfig};
