//! The service's wire types and its determinism contract.
//!
//! # Per-request deterministic seeding
//!
//! Every protection request carries a client-chosen `request_id`. The
//! engine seed for that request is derived as
//! `request_seed(server_seed, request_id)`; inside the engine, every
//! random draw then derives from `(engine seed, user, sub-trace start,
//! variant index)`. A served protected trace is therefore a pure
//! function of `(server_seed, user, request_id)`:
//!
//! * replaying a request against the same server yields byte-identical
//!   JSON;
//! * `POST /v1/protect/batch` returns, per user, exactly what
//!   `POST /v1/protect` returns for that user with the same
//!   `request_id`;
//! * both equal the *offline* result of running
//!   [`mood_core::protect_stream`] with an engine seeded with the same
//!   derived seed — the gate the serve integration tests enforce.
//!
//! A request carrying a candidate [`ProtectRequest::budget`] extends the
//! pure function by one argument: served bytes are then a pure function
//! of `(server_seed, user, request_id, budget)`, and the `degraded`
//! flag in the result reports whether the budget actually cut the
//! search short. Chaos faults (see [`crate::ChaosConfig`]) never alter
//! this contract — an injected fault kills a response, it never rewrites
//! one.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

use mood_attacks::{AttackSuite, ProfileStore, StoreCounters};
use mood_core::{
    EngineBuilder, Executor, MoodConfig, MoodEngine, ProtectionReport, UserClass, UserProtection,
};
use mood_lppm::Lppm;
use mood_trace::{Dataset, Trace, UserId};

/// Body of `POST /v1/protect`: one user's trace plus the replay id.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProtectRequest {
    /// Client-chosen replay id; the engine seed derives from it.
    pub request_id: u64,
    /// The trace to protect.
    pub trace: Trace,
    /// Optional per-request candidate budget (deadline-aware graceful
    /// degradation): at most this many candidate variants are fully
    /// scored; past the cut the result is flagged `degraded` but stays
    /// deterministic. `None` (or an absent key — old clients keep
    /// working) uses the server's default, normally unlimited.
    pub budget: Option<u64>,
}

// Hand-written so the new optional `budget` key is genuinely optional
// on the wire: the derive treats a missing key as an error, which would
// reject every pre-budget client body.
impl Deserialize for ProtectRequest {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        Ok(Self {
            request_id: Deserialize::from_value(required(value, "request_id")?)?,
            trace: Deserialize::from_value(required(value, "trace")?)?,
            budget: optional(value, "budget")?,
        })
    }
}

/// Body of `POST /v1/protect/batch`: many users, one replay id.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchRequest {
    /// Client-chosen replay id; the engine seed derives from it.
    pub request_id: u64,
    /// The traces to protect (one per user; duplicate users are a 400).
    pub traces: Vec<Trace>,
    /// Optional per-request candidate budget; applied to each user's
    /// protection independently (see [`ProtectRequest::budget`]).
    pub budget: Option<u64>,
}

impl Deserialize for BatchRequest {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        Ok(Self {
            request_id: Deserialize::from_value(required(value, "request_id")?)?,
            traces: Deserialize::from_value(required(value, "traces")?)?,
            budget: optional(value, "budget")?,
        })
    }
}

/// A mandatory JSON key: absent is a `missing_field` error.
fn required<'v>(value: &'v Value, field: &str) -> Result<&'v Value, SerdeError> {
    value
        .get(field)
        .ok_or_else(|| SerdeError::missing_field(field))
}

/// An optional JSON key: absent and `null` both mean `None`.
fn optional<T: Deserialize>(value: &Value, field: &str) -> Result<Option<T>, SerdeError> {
    match value.get(field) {
        Some(v) => Deserialize::from_value(v),
        None => Ok(None),
    }
}

/// One published protected (sub-)trace with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedTrace {
    /// Name of the protecting LPPM or composition chain.
    pub lppm: String,
    /// Spatio-temporal distortion versus the original, in meters.
    pub distortion_m: f64,
    /// The protected trace (still under the original user id;
    /// pseudonymization is the publication step, not the service's).
    pub trace: Trace,
}

/// The protection outcome for one user, as served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectResult {
    /// The protected user.
    pub user: UserId,
    /// Orphan-disease taxonomy class.
    pub class: UserClass,
    /// The published protected (sub-)traces, in time order.
    pub published: Vec<PublishedTrace>,
    /// Records in the original trace.
    pub original_records: usize,
    /// Original records erased (fine-grained protection only).
    pub records_dropped: usize,
    /// `true` when the candidate budget ran out before every variant
    /// was tried: the outcome is still deterministic (the cut point is
    /// a pure function of the budget), but may be coarser than the
    /// unbudgeted result.
    pub degraded: bool,
}

impl ProtectResult {
    /// Builds the wire result from an engine outcome.
    pub fn from_outcome(outcome: &UserProtection) -> Self {
        Self {
            user: outcome.user,
            class: outcome.class,
            published: outcome
                .outcome
                .published()
                .into_iter()
                .map(|p| PublishedTrace {
                    lppm: p.lppm.clone(),
                    distortion_m: p.distortion_m,
                    trace: p.trace.clone(),
                })
                .collect(),
            original_records: outcome.original_records,
            records_dropped: outcome.outcome.records_dropped(),
            degraded: outcome.degraded,
        }
    }
}

/// Body of a `POST /v1/protect` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectResponse {
    /// Echo of the request's replay id.
    pub request_id: u64,
    /// The derived engine seed actually used (replay transparency).
    pub seed: u64,
    /// The protection outcome.
    pub result: ProtectResult,
}

/// Body of a `POST /v1/protect/batch` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResponse {
    /// Echo of the request's replay id.
    pub request_id: u64,
    /// The derived engine seed actually used (replay transparency).
    pub seed: u64,
    /// Users in the batch.
    pub users_total: usize,
    /// Record-level data loss of the batch, in percent.
    pub data_loss_percent: f64,
    /// Users per protection class (display name → count).
    pub class_counts: BTreeMap<String, usize>,
    /// Per-user outcomes, sorted by user.
    pub results: Vec<ProtectResult>,
}

impl BatchResponse {
    /// Builds the wire response from a pipeline report.
    pub fn from_report(request_id: u64, seed: u64, report: &ProtectionReport) -> Self {
        Self {
            request_id,
            seed,
            users_total: report.users_total,
            data_loss_percent: report.data_loss.percent(),
            class_counts: report
                .class_counts
                .iter()
                .map(|(class, count)| (class.to_string(), *count))
                .collect(),
            results: report
                .outcomes()
                .iter()
                .map(ProtectResult::from_outcome)
                .collect(),
        }
    }
}

/// Body of every non-2xx JSON response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// What went wrong.
    pub error: String,
}

/// Body of `GET /v1/config`: the running server's shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigResponse {
    /// Bound listen address.
    pub addr: String,
    /// Execution backend of the batch fan-out.
    pub executor: String,
    /// Thread budget of that backend.
    pub executor_threads: usize,
    /// Connection workers (concurrent keep-alive connections served).
    pub connection_workers: usize,
    /// Accept-queue bound beyond which connections are shed with 503.
    pub max_pending: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// The server seed of the determinism contract.
    pub server_seed: u64,
    /// Names of the base LPPM set.
    pub lppms: Vec<String>,
    /// Size of the enumerated composition space.
    pub compositions: usize,
    /// Attacks in the trained suite.
    pub attacks: usize,
}

/// Body of `GET /v1/debug/trace?limit=N`: the flight recorder's newest
/// traces (oldest first) plus the slow-request log. Span structure and
/// ids inside each record are deterministic; only the `*_us` timing
/// fields vary across replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceExport {
    /// Traces ingested by the recorder since startup.
    pub recorded_total: u64,
    /// Traces that exceeded the slow-request threshold since startup.
    pub slow_total: u64,
    /// The newest `limit` traces from the recent ring.
    pub traces: Vec<mood_obs::TraceRecord>,
    /// The newest `limit` over-threshold traces (kept separately, so a
    /// burst of fast requests cannot evict them).
    pub slow: Vec<mood_obs::TraceRecord>,
}

/// Everything needed to build per-request engines cheaply: the trained
/// attack suite and the LPPM set are shared by handle (`Arc` bumps, no
/// retraining), only the seed differs per request.
#[derive(Clone)]
pub struct EngineTemplate {
    suite: Arc<AttackSuite>,
    lppms: Arc<[Arc<dyn Lppm>]>,
    config: MoodConfig,
    store: Option<Arc<ProfileStore>>,
}

impl std::fmt::Debug for EngineTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineTemplate")
            .field("attacks", &self.suite.len())
            .field("lppms", &self.lppm_names())
            .finish()
    }
}

impl EngineTemplate {
    /// The paper's full setup: POI/PIT/AP attacks trained on
    /// `background`, LPPM set {Geo-I, TRL, HMC}, paper configuration.
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty.
    pub fn paper_default(background: &Dataset) -> Self {
        let engine = EngineBuilder::paper_default(background)
            .build()
            .expect("paper defaults are valid");
        Self::from_engine(&engine)
    }

    /// Shares an existing engine's suite, LPPM set, configuration and —
    /// when the engine was trained through one — its profile store, so
    /// the service's per-request engines and its `/metrics` page share
    /// the one set of trained profiles and its hit/miss counters.
    pub fn from_engine(engine: &MoodEngine) -> Self {
        Self {
            suite: engine.shared_suite(),
            lppms: engine.shared_lppms(),
            config: *engine.config(),
            store: engine.profile_store(),
        }
    }

    /// Builds the engine for one request: same suite, LPPMs and
    /// configuration, the derived `seed`, candidates on `executor`.
    pub fn engine_for_on(&self, seed: u64, executor: Arc<dyn Executor>) -> MoodEngine {
        self.engine_for_request(seed, executor, None)
    }

    /// [`EngineTemplate::engine_for_on`] with an optional candidate
    /// budget ([`EngineBuilder::candidate_budget`]): the request-path
    /// factory behind deadline-aware graceful degradation.
    pub fn engine_for_request(
        &self,
        seed: u64,
        executor: Arc<dyn Executor>,
        budget: Option<u64>,
    ) -> MoodEngine {
        self.engine_for_request_observed(seed, executor, budget, None)
    }

    /// [`EngineTemplate::engine_for_request`] with an optional per-stage
    /// duration observer ([`EngineBuilder::stage_observer`]) — the
    /// tracing-enabled request path. Observation is duration-only:
    /// the engine built here returns bit-identical results with or
    /// without `obs`.
    pub fn engine_for_request_observed(
        &self,
        seed: u64,
        executor: Arc<dyn Executor>,
        budget: Option<u64>,
        obs: Option<Arc<mood_obs::StageAgg>>,
    ) -> MoodEngine {
        let mut config = self.config;
        config.seed = seed;
        let mut builder = EngineBuilder::new(Arc::clone(&self.suite))
            .lppms_shared(Arc::clone(&self.lppms))
            .config(config)
            .executor(executor);
        if let Some(store) = &self.store {
            builder = builder.profile_store(Arc::clone(store));
        }
        if let Some(budget) = budget {
            builder = builder.candidate_budget(usize::try_from(budget).unwrap_or(usize::MAX));
        }
        if let Some(obs) = obs {
            builder = builder.stage_observer(obs);
        }
        builder
            .build()
            .expect("template carries a validated configuration")
    }

    /// [`EngineTemplate::engine_for_on`] with the sequential candidate
    /// executor — the offline-comparison shape used by tests.
    pub fn engine_for(&self, seed: u64) -> MoodEngine {
        self.engine_for_on(seed, Arc::new(mood_core::SequentialExecutor))
    }

    /// Names of the base LPPM set.
    pub fn lppm_names(&self) -> Vec<String> {
        self.lppms.iter().map(|l| l.name().to_string()).collect()
    }

    /// Number of attacks in the trained suite.
    pub fn attack_count(&self) -> usize {
        self.suite.len()
    }

    /// Hit/miss/build counters of the template's profile store — the
    /// training-reuse gauge behind `mood_serve_profile_store_total`.
    /// All zeros when the template was built without a store.
    pub fn profile_store_counters(&self) -> StoreCounters {
        self.store
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default()
    }
}

/// Derives the engine seed of one request from the server seed and the
/// client's `request_id` (SplitMix64 chaining, matching the engine's
/// own stream derivation style).
pub fn request_seed(server_seed: u64, request_id: u64) -> u64 {
    let mut h = server_seed;
    h ^= mix64(request_id);
    mix64(h)
}

/// SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seed_is_deterministic_and_sensitive() {
        assert_eq!(request_seed(1, 2), request_seed(1, 2));
        assert_ne!(request_seed(1, 2), request_seed(1, 3));
        assert_ne!(request_seed(1, 2), request_seed(2, 2));
    }

    #[test]
    fn wire_types_roundtrip_through_json() {
        use mood_geo::GeoPoint;
        use mood_trace::{Record, Timestamp};

        let records: Vec<Record> = (0..4)
            .map(|i| {
                Record::new(
                    GeoPoint::new(46.2, 6.1).unwrap(),
                    Timestamp::from_unix(i * 600),
                )
            })
            .collect();
        let trace = Trace::new(UserId::new(9), records).unwrap();
        let req = ProtectRequest {
            request_id: 42,
            trace: trace.clone(),
            budget: None,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ProtectRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);

        let resp = ProtectResponse {
            request_id: 42,
            seed: request_seed(7, 42),
            result: ProtectResult {
                user: UserId::new(9),
                class: UserClass::SingleLppm,
                published: vec![PublishedTrace {
                    lppm: "Geo-I".to_string(),
                    distortion_m: 120.5,
                    trace,
                }],
                original_records: 4,
                records_dropped: 0,
                degraded: false,
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ProtectResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn budget_key_is_optional_on_the_wire() {
        use mood_geo::GeoPoint;
        use mood_trace::{Record, Timestamp};

        let trace = Trace::new(
            UserId::new(3),
            vec![Record::new(
                GeoPoint::new(46.2, 6.1).unwrap(),
                Timestamp::from_unix(0),
            )],
        )
        .unwrap();
        let trace_json = serde_json::to_string(&trace).unwrap();

        // A pre-budget client body (no `budget` key) must still parse.
        let json = format!(r#"{{"request_id":7,"trace":{trace_json}}}"#);
        let req: ProtectRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req.request_id, 7);
        assert_eq!(req.budget, None);

        // An explicit null is the same as absent; a number is a budget.
        let json = format!(r#"{{"request_id":7,"trace":{trace_json},"budget":null}}"#);
        let req: ProtectRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req.budget, None);

        let req: BatchRequest =
            serde_json::from_str(r#"{"request_id":7,"traces":[],"budget":12}"#).unwrap();
        assert_eq!(req.budget, Some(12));

        // Mandatory keys still error when absent.
        assert!(serde_json::from_str::<ProtectRequest>(r#"{"request_id":7}"#).is_err());
    }
}
