//! Service observability: request/response counters, a latency
//! histogram and engine-level gauges, rendered as Prometheus text
//! (`GET /metrics`).
//!
//! Counters are lock-free atomics on the request path; only the
//! status-code map takes a (short, uncontended) lock. Rendering
//! happens on scrape, not on update.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mood_attacks::StoreCounters;
use mood_exec::QueueStats;
use mood_obs::{Recorder, STAGE_BUCKET_BOUNDS_US};
use mood_trace::StoreStats;

use crate::chaos::FaultKind;

/// The endpoints the service distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /v1/config`
    Config,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/protect`
    Protect,
    /// `POST /v1/protect/batch`
    ProtectBatch,
    /// `GET /v1/debug/trace` (flight-recorder export)
    DebugTrace,
    /// Anything else (404/405 traffic).
    Other,
}

impl Endpoint {
    /// Every endpoint, in rendering order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Healthz,
        Endpoint::Config,
        Endpoint::Metrics,
        Endpoint::Protect,
        Endpoint::ProtectBatch,
        Endpoint::DebugTrace,
        Endpoint::Other,
    ];

    /// The metrics label for this endpoint.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Config => "config",
            Endpoint::Metrics => "metrics",
            Endpoint::Protect => "protect",
            Endpoint::ProtectBatch => "protect_batch",
            Endpoint::DebugTrace => "debug_trace",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Config => 1,
            Endpoint::Metrics => 2,
            Endpoint::Protect => 3,
            Endpoint::ProtectBatch => 4,
            Endpoint::DebugTrace => 5,
            Endpoint::Other => 6,
        }
    }
}

/// Escapes a dynamic Prometheus label value per the text exposition
/// rules: backslash, double quote and newline must be escaped; every
/// other byte passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Everything the `/metrics` renderer needs beyond the counters
/// themselves: the server's static shape, live queue gauges, the flight
/// recorder's histograms/counters, and the metric-naming compatibility
/// switch.
pub struct RenderScope<'a> {
    /// Executor backend name (`backend` label).
    pub backend: &'a str,
    /// Executor thread budget.
    pub executor_threads: usize,
    /// Connection workers configured.
    pub connection_workers: usize,
    /// The engine template's live training-reuse snapshot.
    pub profile_store: StoreCounters,
    /// Additionally emit the PR-4-era unprefixed alias names
    /// (`attack_scratch_reuses_total`, `heatmap_cache_total{...}`) —
    /// kept for one release for dashboards that still scrape them.
    pub legacy_metric_names: bool,
    /// Connection-pool queue snapshot (`None` when the pool is gone,
    /// e.g. during shutdown).
    pub queue: Option<QueueStats>,
    /// Compressed trace-store snapshot (`None` when the server has no
    /// attached [`mood_trace::TraceStore`]).
    pub store: Option<StoreStats>,
    /// The flight recorder (`None` when tracing is disabled).
    pub recorder: Option<&'a Recorder>,
}

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is implicit `+Inf`.
const BUCKET_BOUNDS_US: [u64; 8] = [
    500, 1_000, 5_000, 25_000, 100_000, 250_000, 1_000_000, 5_000_000,
];

/// Counters and gauges of one running server.
#[derive(Debug)]
pub struct ServerMetrics {
    requests: [AtomicU64; 7],
    statuses: Mutex<BTreeMap<u16, u64>>,
    buckets: [AtomicU64; 9],
    latency_sum_us: AtomicU64,
    responses: AtomicU64,
    users_protected: AtomicU64,
    scratch_reuses: AtomicU64,
    attack_scratch_reuses: AtomicU64,
    heatmap_cache_hits: AtomicU64,
    heatmap_cache_misses: AtomicU64,
    connections: AtomicU64,
    overload_rejected: AtomicU64,
    faults: [AtomicU64; FaultKind::ALL.len()],
    degraded_results: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            statuses: Mutex::new(BTreeMap::new()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            users_protected: AtomicU64::new(0),
            scratch_reuses: AtomicU64::new(0),
            attack_scratch_reuses: AtomicU64::new(0),
            heatmap_cache_hits: AtomicU64::new(0),
            heatmap_cache_misses: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            overload_rejected: AtomicU64::new(0),
            faults: std::array::from_fn(|_| AtomicU64::new(0)),
            degraded_results: AtomicU64::new(0),
        }
    }

    /// Counts one routed request.
    pub fn record_request(&self, endpoint: Endpoint) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one routed response with its handling latency (feeds the
    /// histogram — use [`ServerMetrics::record_error_status`] for
    /// responses with no meaningful handling time).
    pub fn record_response(&self, status: u16, latency: Duration) {
        self.record_status(status);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Counts a status-only response — load sheds (503) and protocol
    /// failures (4xx), whose "latency" is peer wait time, not handling
    /// time; they would poison the histogram's percentiles.
    pub fn record_error_status(&self, status: u16) {
        self.record_status(status);
    }

    fn record_status(&self, status: u16) {
        *self
            .statuses
            .lock()
            .expect("status map lock")
            .entry(status)
            .or_insert(0) += 1;
        self.responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds protected users to the running total.
    pub fn add_users(&self, n: u64) {
        self.users_protected.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a request engine's scratch reuses to the running total.
    pub fn add_scratch_reuses(&self, n: u64) {
        self.scratch_reuses.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a request engine's attack-scratch reuses to the running
    /// total (warm-arena attack scoring; see
    /// `MoodEngine::attack_scratch_reuses`).
    pub fn add_attack_scratch_reuses(&self, n: u64) {
        self.attack_scratch_reuses.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a request engine's rasterization-cache (heatmap-scratch)
    /// hit/miss counts to the running totals.
    pub fn add_heatmap_cache(&self, hits: u64, misses: u64) {
        self.heatmap_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.heatmap_cache_misses
            .fetch_add(misses, Ordering::Relaxed);
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection shed with 503 because the accept queue was
    /// full.
    pub fn record_overload(&self) {
        self.overload_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one injected chaos fault of `kind`.
    pub fn record_fault(&self, kind: FaultKind) {
        self.faults[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts degraded protection results (candidate budget exhausted)
    /// served so far.
    pub fn add_degraded_results(&self, n: u64) {
        self.degraded_results.fetch_add(n, Ordering::Relaxed);
    }

    /// Responses sent so far (any status).
    pub fn responses_total(&self) -> u64 {
        self.responses.load(Ordering::Relaxed)
    }

    /// Requests routed so far (any endpoint).
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Connections accepted so far.
    pub fn connections_total(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections shed with 503 so far.
    pub fn overload_rejected_total(&self) -> u64 {
        self.overload_rejected.load(Ordering::Relaxed)
    }

    /// Chaos faults of `kind` injected so far.
    pub fn faults_injected_total(&self, kind: FaultKind) -> u64 {
        self.faults[kind.index()].load(Ordering::Relaxed)
    }

    /// Chaos faults injected so far, all kinds together.
    pub fn faults_injected_all(&self) -> u64 {
        self.faults.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Degraded protection results served so far.
    pub fn degraded_results_total(&self) -> u64 {
        self.degraded_results.load(Ordering::Relaxed)
    }

    /// Users protected so far (single + batch).
    pub fn users_protected_total(&self) -> u64 {
        self.users_protected.load(Ordering::Relaxed)
    }

    /// Scratch-arena reuses accumulated from request engines so far.
    pub fn scratch_reuses_total(&self) -> u64 {
        self.scratch_reuses.load(Ordering::Relaxed)
    }

    /// Attack-scratch reuses accumulated from request engines so far.
    pub fn attack_scratch_reuses_total(&self) -> u64 {
        self.attack_scratch_reuses.load(Ordering::Relaxed)
    }

    /// Heatmap-scratch (rasterization-cache) hits accumulated so far.
    pub fn heatmap_cache_hits_total(&self) -> u64 {
        self.heatmap_cache_hits.load(Ordering::Relaxed)
    }

    /// Heatmap-scratch (rasterization-cache) misses accumulated so far.
    pub fn heatmap_cache_misses_total(&self) -> u64 {
        self.heatmap_cache_misses.load(Ordering::Relaxed)
    }

    /// Responses sent with `status` so far.
    pub fn responses_with_status(&self, status: u16) -> u64 {
        self.statuses
            .lock()
            .expect("status map lock")
            .get(&status)
            .copied()
            .unwrap_or(0)
    }

    /// Renders the Prometheus text exposition for `GET /metrics` with
    /// only the static server shape — no queue gauges, no flight
    /// recorder, current metric names only. Convenience wrapper over
    /// [`ServerMetrics::render_with`].
    pub fn render(
        &self,
        backend: &str,
        executor_threads: usize,
        connection_workers: usize,
        profile_store: StoreCounters,
    ) -> String {
        self.render_with(&RenderScope {
            backend,
            executor_threads,
            connection_workers,
            profile_store,
            legacy_metric_names: false,
            queue: None,
            store: None,
            recorder: None,
        })
    }

    /// Renders the Prometheus text exposition for `GET /metrics`.
    /// `scope.profile_store` is the engine template's live
    /// training-reuse snapshot (cumulative by construction, so it is
    /// rendered directly instead of being accumulated here); the queue
    /// and recorder sections are omitted entirely when absent from the
    /// scope.
    pub fn render_with(&self, scope: &RenderScope<'_>) -> String {
        let RenderScope {
            backend,
            executor_threads,
            connection_workers,
            profile_store,
            ..
        } = *scope;
        let mut out = String::with_capacity(2048);
        out.push_str("# TYPE mood_serve_requests_total counter\n");
        for endpoint in Endpoint::ALL {
            out.push_str(&format!(
                "mood_serve_requests_total{{endpoint=\"{}\"}} {}\n",
                endpoint.label(),
                self.requests[endpoint.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE mood_serve_responses_total counter\n");
        for (status, count) in self.statuses.lock().expect("status map lock").iter() {
            out.push_str(&format!(
                "mood_serve_responses_total{{status=\"{status}\"}} {count}\n"
            ));
        }
        out.push_str("# TYPE mood_serve_request_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "mood_serve_request_seconds_bucket{{le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e6
            ));
        }
        cumulative += self.buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "mood_serve_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "mood_serve_request_seconds_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!("mood_serve_request_seconds_count {cumulative}\n"));
        out.push_str("# TYPE mood_serve_users_protected_total counter\n");
        out.push_str(&format!(
            "mood_serve_users_protected_total {}\n",
            self.users_protected.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_scratch_reuses_total counter\n");
        out.push_str(&format!(
            "mood_serve_scratch_reuses_total {}\n",
            self.scratch_reuses.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_attack_scratch_reuses_total counter\n");
        out.push_str(&format!(
            "mood_serve_attack_scratch_reuses_total {}\n",
            self.attack_scratch_reuses.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_heatmap_cache_total counter\n");
        out.push_str(&format!(
            "mood_serve_heatmap_cache_total{{result=\"hit\"}} {}\n",
            self.heatmap_cache_hits.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "mood_serve_heatmap_cache_total{{result=\"miss\"}} {}\n",
            self.heatmap_cache_misses.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_profile_store_total counter\n");
        out.push_str(&format!(
            "mood_serve_profile_store_total{{result=\"hit\"}} {}\n",
            profile_store.hits
        ));
        out.push_str(&format!(
            "mood_serve_profile_store_total{{result=\"miss\"}} {}\n",
            profile_store.misses
        ));
        out.push_str("# TYPE mood_serve_profile_builds_total counter\n");
        out.push_str(&format!(
            "mood_serve_profile_builds_total {}\n",
            profile_store.profile_builds
        ));
        out.push_str("# TYPE mood_serve_connections_total counter\n");
        out.push_str(&format!(
            "mood_serve_connections_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_overload_rejected_total counter\n");
        out.push_str(&format!(
            "mood_serve_overload_rejected_total {}\n",
            self.overload_rejected.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_faults_injected_total counter\n");
        for kind in FaultKind::ALL {
            out.push_str(&format!(
                "mood_serve_faults_injected_total{{kind=\"{}\"}} {}\n",
                kind.label(),
                self.faults[kind.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE mood_serve_degraded_results_total counter\n");
        out.push_str(&format!(
            "mood_serve_degraded_results_total {}\n",
            self.degraded_results.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE mood_serve_executor_threads gauge\n");
        out.push_str(&format!(
            "mood_serve_executor_threads{{backend=\"{}\"}} {executor_threads}\n",
            escape_label_value(backend)
        ));
        out.push_str("# TYPE mood_serve_connection_workers gauge\n");
        out.push_str(&format!(
            "mood_serve_connection_workers {connection_workers}\n"
        ));
        if let Some(queue) = &scope.queue {
            out.push_str("# TYPE mood_serve_queue_depth gauge\n");
            out.push_str(&format!("mood_serve_queue_depth {}\n", queue.pending));
            out.push_str("# TYPE mood_serve_in_flight_connections gauge\n");
            out.push_str(&format!(
                "mood_serve_in_flight_connections {}\n",
                queue.in_flight
            ));
            out.push_str("# TYPE mood_serve_queue_wait_seconds summary\n");
            out.push_str(&format!(
                "mood_serve_queue_wait_seconds_sum {}\n",
                queue.waited.as_secs_f64()
            ));
            out.push_str(&format!(
                "mood_serve_queue_wait_seconds_count {}\n",
                queue.dequeued
            ));
        }
        if let Some(store) = &scope.store {
            out.push_str("# TYPE mood_serve_store_resident_bytes gauge\n");
            out.push_str(&format!(
                "mood_serve_store_resident_bytes {}\n",
                store.resident_bytes
            ));
            out.push_str("# TYPE mood_serve_store_budget_bytes gauge\n");
            out.push_str(&format!(
                "mood_serve_store_budget_bytes {}\n",
                store.budget_bytes
            ));
            out.push_str("# TYPE mood_serve_store_chunks gauge\n");
            out.push_str(&format!("mood_serve_store_chunks {}\n", store.chunks));
            out.push_str("# TYPE mood_serve_store_encoded_bytes gauge\n");
            out.push_str(&format!(
                "mood_serve_store_encoded_bytes {}\n",
                store.encoded_bytes
            ));
            out.push_str("# TYPE mood_serve_store_decodes_total counter\n");
            out.push_str(&format!(
                "mood_serve_store_decodes_total {}\n",
                store.decodes
            ));
            out.push_str("# TYPE mood_serve_store_cache_hits_total counter\n");
            out.push_str(&format!(
                "mood_serve_store_cache_hits_total {}\n",
                store.cache_hits
            ));
            out.push_str("# TYPE mood_serve_store_evictions_total counter\n");
            out.push_str(&format!(
                "mood_serve_store_evictions_total {}\n",
                store.evictions
            ));
            out.push_str("# TYPE mood_serve_store_compactions_total counter\n");
            out.push_str(&format!(
                "mood_serve_store_compactions_total {}\n",
                store.compactions
            ));
        }
        if let Some(recorder) = scope.recorder {
            let histograms = recorder.stage_histograms();
            if !histograms.is_empty() {
                out.push_str("# TYPE mood_serve_stage_seconds histogram\n");
                for histo in &histograms {
                    let stage = escape_label_value(&histo.stage);
                    let mut cumulative = 0u64;
                    for (i, &bound) in STAGE_BUCKET_BOUNDS_US.iter().enumerate() {
                        cumulative += histo.buckets[i];
                        out.push_str(&format!(
                            "mood_serve_stage_seconds_bucket{{stage=\"{stage}\",le=\"{}\"}} {cumulative}\n",
                            bound as f64 / 1e6
                        ));
                    }
                    cumulative += histo.buckets[STAGE_BUCKET_BOUNDS_US.len()];
                    out.push_str(&format!(
                        "mood_serve_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {cumulative}\n"
                    ));
                    out.push_str(&format!(
                        "mood_serve_stage_seconds_sum{{stage=\"{stage}\"}} {}\n",
                        histo.sum_us as f64 / 1e6
                    ));
                    out.push_str(&format!(
                        "mood_serve_stage_seconds_count{{stage=\"{stage}\"}} {}\n",
                        histo.count
                    ));
                }
            }
            out.push_str("# TYPE mood_serve_traces_recorded_total counter\n");
            out.push_str(&format!(
                "mood_serve_traces_recorded_total {}\n",
                recorder.recorded_total()
            ));
            out.push_str("# TYPE mood_serve_slow_requests_total counter\n");
            out.push_str(&format!(
                "mood_serve_slow_requests_total {}\n",
                recorder.slow_total()
            ));
            // Labeled counters bumped through the recorder (e.g. retry
            // reasons) arrive sorted by metric name, so one `# TYPE`
            // line per distinct metric suffices.
            let mut last_metric = String::new();
            for counter in recorder.counters() {
                if counter.metric != last_metric {
                    out.push_str(&format!("# TYPE {} counter\n", counter.metric));
                    last_metric = counter.metric.clone();
                }
                out.push_str(&format!(
                    "{}{{{}=\"{}\"}} {}\n",
                    counter.metric,
                    counter.label_key,
                    escape_label_value(&counter.label_value),
                    counter.value
                ));
            }
        }
        if scope.legacy_metric_names {
            // Pre-rename aliases (see README "Observability"): same
            // values as the `mood_serve_`-prefixed series above, kept
            // one release for dashboards that still scrape them.
            out.push_str("# TYPE attack_scratch_reuses_total counter\n");
            out.push_str(&format!(
                "attack_scratch_reuses_total {}\n",
                self.attack_scratch_reuses.load(Ordering::Relaxed)
            ));
            out.push_str("# TYPE heatmap_cache_total counter\n");
            out.push_str(&format!(
                "heatmap_cache_total{{result=\"hit\"}} {}\n",
                self.heatmap_cache_hits.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "heatmap_cache_total{{result=\"miss\"}} {}\n",
                self.heatmap_cache_misses.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = ServerMetrics::new();
        m.record_request(Endpoint::Healthz);
        m.record_request(Endpoint::Protect);
        m.record_request(Endpoint::Protect);
        m.record_response(200, Duration::from_micros(300));
        m.record_response(200, Duration::from_millis(2));
        m.record_response(404, Duration::from_millis(30));
        m.add_users(5);
        m.add_scratch_reuses(7);
        m.add_attack_scratch_reuses(11);
        m.add_heatmap_cache(3, 4);
        m.record_connection();
        m.record_overload();

        assert_eq!(m.requests_total(), 3);
        assert_eq!(m.responses_total(), 3);
        assert_eq!(m.responses_with_status(200), 2);
        assert_eq!(m.responses_with_status(404), 1);
        assert_eq!(m.responses_with_status(500), 0);

        let text = m.render(
            "persistent",
            4,
            2,
            StoreCounters {
                hits: 6,
                misses: 3,
                profile_builds: 40,
            },
        );
        assert!(
            text.contains("mood_serve_requests_total{endpoint=\"protect\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_responses_total{status=\"200\"} 2"),
            "{text}"
        );
        // 300 µs lands in the first bucket; everything is <= +Inf.
        assert!(
            text.contains("mood_serve_request_seconds_bucket{le=\"0.0005\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_request_seconds_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_request_seconds_count 3"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_users_protected_total 5"),
            "{text}"
        );
        assert!(text.contains("mood_serve_scratch_reuses_total 7"), "{text}");
        assert!(
            text.contains("mood_serve_attack_scratch_reuses_total 11"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_heatmap_cache_total{result=\"hit\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_heatmap_cache_total{result=\"miss\"} 4"),
            "{text}"
        );
        assert_eq!(m.attack_scratch_reuses_total(), 11);
        assert_eq!(m.heatmap_cache_hits_total(), 3);
        assert_eq!(m.heatmap_cache_misses_total(), 4);
        assert!(
            text.contains("mood_serve_profile_store_total{result=\"hit\"} 6"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_profile_store_total{result=\"miss\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_profile_builds_total 40"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_executor_threads{backend=\"persistent\"} 4"),
            "{text}"
        );
        assert!(text.contains("mood_serve_connection_workers 2"), "{text}");
        assert!(
            text.contains("mood_serve_overload_rejected_total 1"),
            "{text}"
        );
    }

    #[test]
    fn fault_counters_render_per_kind() {
        let m = ServerMetrics::new();
        m.record_fault(FaultKind::Delay);
        m.record_fault(FaultKind::Delay);
        m.record_fault(FaultKind::Truncate);
        m.add_degraded_results(3);
        assert_eq!(m.faults_injected_total(FaultKind::Delay), 2);
        assert_eq!(m.faults_injected_total(FaultKind::AcceptDrop), 0);
        assert_eq!(m.faults_injected_all(), 3);
        assert_eq!(m.degraded_results_total(), 3);
        let text = m.render("sequential", 1, 1, StoreCounters::default());
        assert!(
            text.contains("mood_serve_faults_injected_total{kind=\"delay\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_faults_injected_total{kind=\"truncate\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_faults_injected_total{kind=\"accept_drop\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_degraded_results_total 3"),
            "{text}"
        );
    }

    #[test]
    fn error_statuses_count_without_touching_the_histogram() {
        let m = ServerMetrics::new();
        m.record_response(200, Duration::from_millis(2));
        m.record_error_status(503);
        m.record_error_status(408);
        assert_eq!(m.responses_total(), 3);
        assert_eq!(m.responses_with_status(503), 1);
        let text = m.render("persistent", 1, 1, StoreCounters::default());
        assert!(
            text.contains("mood_serve_request_seconds_count 1"),
            "histogram must only see routed responses: {text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = ServerMetrics::new();
        // One in every bucket, including the overflow bucket.
        for us in [
            400, 900, 4_000, 20_000, 90_000, 200_000, 900_000, 4_000_000, 60_000_000,
        ] {
            m.record_response(200, Duration::from_micros(us));
        }
        let text = m.render("sequential", 1, 1, StoreCounters::default());
        assert!(text.contains("{le=\"0.0005\"} 1"), "{text}");
        assert!(text.contains("{le=\"0.001\"} 2"), "{text}");
        assert!(text.contains("{le=\"5\"} 8"), "{text}");
        assert!(text.contains("{le=\"+Inf\"} 9"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn render_with_emits_queue_recorder_and_legacy_sections() {
        let m = ServerMetrics::new();
        m.add_attack_scratch_reuses(11);
        m.add_heatmap_cache(3, 4);
        let recorder = Recorder::new(mood_obs::RecorderConfig::default());
        recorder.bump("mood_serve_client_retries_total", "reason", "status_503");
        recorder.bump("mood_serve_client_retries_total", "reason", "status_503");
        let scope = RenderScope {
            backend: "persistent",
            executor_threads: 4,
            connection_workers: 2,
            profile_store: StoreCounters::default(),
            legacy_metric_names: true,
            queue: Some(QueueStats {
                pending: 3,
                in_flight: 2,
                dequeued: 9,
                waited: Duration::from_millis(1500),
            }),
            store: Some(StoreStats {
                users: 4,
                records: 1_000,
                chunks: 12,
                encoded_bytes: 5_000,
                resident_bytes: 2_048,
                budget_bytes: 4_096,
                cache_hits: 5,
                decodes: 7,
                evictions: 2,
                compactions: 1,
                ..StoreStats::default()
            }),
            recorder: Some(&recorder),
        };
        let text = m.render_with(&scope);
        assert!(text.contains("mood_serve_queue_depth 3"), "{text}");
        assert!(
            text.contains("mood_serve_store_resident_bytes 2048"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_store_budget_bytes 4096"),
            "{text}"
        );
        assert!(text.contains("mood_serve_store_chunks 12"), "{text}");
        assert!(
            text.contains("mood_serve_store_encoded_bytes 5000"),
            "{text}"
        );
        assert!(text.contains("mood_serve_store_decodes_total 7"), "{text}");
        assert!(
            text.contains("mood_serve_store_cache_hits_total 5"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_store_evictions_total 2"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_store_compactions_total 1"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_in_flight_connections 2"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_queue_wait_seconds_sum 1.5"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_queue_wait_seconds_count 9"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_client_retries_total{reason=\"status_503\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE mood_serve_client_retries_total counter"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_traces_recorded_total 0"),
            "{text}"
        );
        // Legacy aliases ride along with the prefixed series.
        assert!(text.contains("\nattack_scratch_reuses_total 11"), "{text}");
        assert!(
            text.contains("\nheatmap_cache_total{result=\"hit\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("\nheatmap_cache_total{result=\"miss\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("mood_serve_attack_scratch_reuses_total 11"),
            "{text}"
        );
        // Without the flag the unprefixed aliases disappear.
        let text = m.render("persistent", 4, 2, StoreCounters::default());
        assert!(!text.contains("\nattack_scratch_reuses_total"), "{text}");
        assert!(!text.contains("\nheatmap_cache_total{"), "{text}");
    }
}
