//! Figure 1 demo: the three mobility-profile models attackers build from
//! a raw trace — POIs, a Mobility Markov Chain, and a heatmap.
//!
//! Run with: `cargo run --release -p mood-models --example profiles`

use mood_geo::Grid;
use mood_models::{Heatmap, MarkovChain, PoiExtractor};
use mood_synth::presets;
use mood_trace::TimeDelta;

fn main() {
    let ds = presets::privamov_like().scaled(0.2).generate();
    let (train, _) = ds.split_chronological(TimeDelta::from_days(15));
    let trace = train.iter().next().expect("non-empty dataset");
    println!(
        "user {}: {} records over {} days\n",
        trace.user(),
        trace.len(),
        trace.duration().as_secs() / 86_400
    );

    // --- model 1: Points of Interest ---
    let profile = PoiExtractor::paper_default().extract_profile(trace);
    println!("POI profile ({} places):", profile.len());
    for (poi, w) in profile.top(5).iter().zip(profile.weights()) {
        println!(
            "  {} — {} records ({:.0}% of time), {} visits, {} dwell",
            poi.centroid,
            poi.record_count,
            w * 100.0,
            poi.visit_count,
            poi.total_dwell
        );
    }

    // --- model 2: Mobility Markov Chain ---
    let mmc = MarkovChain::from_profile(&profile);
    println!("\nMobility Markov Chain ({} states):", mmc.state_count());
    let k = mmc.state_count().min(4);
    for i in 0..k {
        let pi = mmc.stationary()[i];
        let row: Vec<String> = (0..k)
            .map(|j| format!("{:.2}", mmc.transition(i, j)))
            .collect();
        println!(
            "  state {i} (π = {pi:.2}): transitions [{}]",
            row.join(", ")
        );
    }

    // --- model 3: heatmap ---
    let grid = Grid::new(train.bounding_box().expect("non-empty"), 800.0).expect("valid cell size");
    let hm = Heatmap::from_trace(&grid, trace);
    println!(
        "\nheatmap: {} occupied cells of {} ({} m grid)",
        hm.cell_count(),
        grid.cell_count(),
        grid.cell_size_m()
    );
    for (cell, count) in hm.top_cells(5) {
        println!(
            "  cell {cell} @ {} — {count} records ({:.0}%)",
            grid.cell_center(cell),
            hm.probability(cell) * 100.0
        );
    }
}
