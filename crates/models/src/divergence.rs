//! Divergences between sparse probability distributions.
//!
//! AP-Attack compares heatmaps with the **Topsoe divergence** (Endres &
//! Schindelin 2003, the paper's \[13\]); Jensen–Shannon and KL are provided
//! for completeness and for tests that cross-check Topsoe = 2·JS.
//!
//! Distributions are sparse maps from an ordered key to a non-negative
//! mass; they do not need to be normalized — every function normalizes
//! internally (empty or zero-mass distributions are rejected).

use std::collections::BTreeMap;

/// Natural log of 2; the maximum of the Topsoe divergence is `2 ln 2`.
pub const LN_2: f64 = std::f64::consts::LN_2;

fn total<K: Ord>(d: &BTreeMap<K, f64>) -> f64 {
    d.values().sum()
}

/// Kullback–Leibler divergence `KL(P ‖ Q)` in nats.
///
/// Returns `f64::INFINITY` when `P` has mass on a key where `Q` has none
/// (the standard convention), and `None` when either distribution is
/// empty or has non-positive total mass.
pub fn kl<K: Ord + Copy>(p: &BTreeMap<K, f64>, q: &BTreeMap<K, f64>) -> Option<f64> {
    let (tp, tq) = (total(p), total(q));
    if tp <= 0.0 || tq <= 0.0 {
        return None;
    }
    let mut sum = 0.0;
    for (k, &pv) in p {
        if pv <= 0.0 {
            continue;
        }
        let pv = pv / tp;
        match q.get(k) {
            Some(&qv) if qv > 0.0 => {
                sum += pv * (pv / (qv / tq)).ln();
            }
            _ => return Some(f64::INFINITY),
        }
    }
    Some(sum)
}

/// Jensen–Shannon divergence: `JS(P, Q) = ½ KL(P ‖ M) + ½ KL(Q ‖ M)` with
/// `M = (P + Q)/2`. Always finite, symmetric, bounded by `ln 2`.
///
/// Returns `None` when either distribution is empty or has non-positive
/// total mass.
pub fn jensen_shannon<K: Ord + Copy>(p: &BTreeMap<K, f64>, q: &BTreeMap<K, f64>) -> Option<f64> {
    topsoe(p, q).map(|t| t / 2.0)
}

/// Topsoe divergence (the paper's heatmap distance, ref. \[13\]):
///
/// ```text
/// T(P, Q) = Σ_k [ p ln(2p/(p+q)) + q ln(2q/(p+q)) ]
/// ```
///
/// Symmetric, non-negative, zero iff `P = Q`, bounded by `2 ln 2`
/// (reached when the supports are disjoint). Equal to `2·JS(P, Q)`.
///
/// Returns `None` when either distribution is empty or has non-positive
/// total mass.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use mood_models::divergence::{topsoe, LN_2};
///
/// let p: BTreeMap<u32, f64> = [(0, 1.0)].into();
/// let q: BTreeMap<u32, f64> = [(1, 1.0)].into();
/// // disjoint supports -> maximum divergence 2 ln 2
/// assert!((topsoe(&p, &q).unwrap() - 2.0 * LN_2).abs() < 1e-12);
/// assert_eq!(topsoe(&p, &p).unwrap(), 0.0);
/// ```
pub fn topsoe<K: Ord + Copy>(p: &BTreeMap<K, f64>, q: &BTreeMap<K, f64>) -> Option<f64> {
    // Delegate to the one SoA kernel: split keys and masses, totals in
    // the same per-entry order the sorted adapters use.
    let pk: Vec<K> = p.keys().copied().collect();
    let pw: Vec<f64> = p.values().copied().collect();
    let qk: Vec<K> = q.keys().copied().collect();
    let qw: Vec<f64> = q.values().copied().collect();
    let tp: f64 = pw.iter().sum();
    let tq: f64 = qw.iter().sum();
    topsoe_soa_bounded(&pk, &pw, tp, &qk, &qw, tq, f64::INFINITY)
}

/// [`topsoe`] over sparse distributions stored as key-sorted slices —
/// the allocation-free form the candidate hot path uses (heatmaps keep
/// their cells this way).
///
/// The walk merges both supports in key order and accumulates one
/// combined term per key. Each per-key term is mathematically
/// non-negative (the pointwise Jensen inequality) and is clamped at 0 to
/// make that hold bit-exactly under rounding, so partial sums are
/// monotone — the property [`topsoe_sorted_bounded`]'s pruning rests on.
///
/// Returns `None` when either distribution is empty or has non-positive
/// or non-finite total mass. Slices must be sorted by key with unique
/// keys; non-negative masses are assumed (negative entries are treated
/// as zero, matching [`topsoe`]).
pub fn topsoe_sorted<K: Ord + Copy>(p: &[(K, f64)], q: &[(K, f64)]) -> Option<f64> {
    topsoe_sorted_bounded(p, q, f64::INFINITY)
}

/// [`topsoe_sorted`] with **best-bound pruning**: accumulation stops —
/// returning `None` — as soon as the partial sum exceeds `bound`.
///
/// The pruning is exact, not approximate: per-key terms are clamped
/// non-negative, so the partial sum can only grow; once it exceeds
/// `bound` the final score provably would too. A `Some(score)` result is
/// **bit-identical** to the unpruned [`topsoe_sorted`] (same walk, same
/// accumulation order), so replacing a full arg-min scan with a running
/// best bound changes no verdict — the profile-matching proptests below
/// gate exactly that.
pub fn topsoe_sorted_bounded<K: Ord + Copy>(
    p: &[(K, f64)],
    q: &[(K, f64)],
    bound: f64,
) -> Option<f64> {
    let tp: f64 = p.iter().map(|e| e.1).sum();
    let tq: f64 = q.iter().map(|e| e.1).sum();
    topsoe_sorted_bounded_with_totals(p, tp, q, tq, bound)
}

/// [`topsoe_sorted_bounded`] with the total masses supplied by the
/// caller — the hot-path form for containers that already maintain
/// their totals (e.g. `Heatmap`): a pruned comparison then pays only
/// the merge steps it actually walks, not a full re-summation of both
/// distributions. The caller's totals must equal the slice sums (up to
/// the caller's own accumulation order); all verdict paths must source
/// totals the same way to stay bit-consistent.
pub fn topsoe_sorted_bounded_with_totals<K: Ord + Copy>(
    p: &[(K, f64)],
    tp: f64,
    q: &[(K, f64)],
    tq: f64,
    bound: f64,
) -> Option<f64> {
    // Split the pair slices and delegate to the SoA kernel — the pair
    // form is the compatibility adapter, not a second implementation.
    let pk: Vec<K> = p.iter().map(|e| e.0).collect();
    let pw: Vec<f64> = p.iter().map(|e| e.1).collect();
    let qk: Vec<K> = q.iter().map(|e| e.0).collect();
    let qw: Vec<f64> = q.iter().map(|e| e.1).collect();
    topsoe_soa_bounded(&pk, &pw, tp, &qk, &qw, tq, bound)
}

/// How many one-sided keys are accumulated between best-bound checks in
/// [`topsoe_soa_bounded`]. Per-chunk checks are exactly as selective as
/// per-key checks because every term is clamped non-negative, so the
/// partial sum is monotone: it crosses `bound` inside a chunk iff it is
/// still above `bound` at the chunk boundary.
const ONE_SIDED_CHUNK: usize = 32;

/// [`topsoe_sorted_bounded_with_totals`] over **structure-of-arrays**
/// slices (keys and masses split) — the production kernel every other
/// Topsoe entry point delegates to.
///
/// Two phases per merge step. The *align* phase is the only branchy
/// part: it walks both key slices and carves the union into one-sided
/// runs (keys present in exactly one distribution) and matched keys.
/// The *accumulate* phase is branch-light: a one-sided key `k` with
/// normalized mass `v > 0` contributes `v·ln((2v)/(v+0)) = v·ln 2`, and
/// `(2v)/v` is **exactly** `2.0` in IEEE-754 whenever `2v` is finite
/// (doubling is exact), so the whole run reduces to a fused
/// multiply–accumulate by the `LN_2` constant with no `ln` call — the
/// logarithm only survives on matched keys, which are the rare case for
/// sparse mobility profiles. Term values, accumulation order and prune
/// outcomes are bit-identical to the scalar pair walk (the proptests
/// below gate this), per-chunk bound checks included (see
/// [`ONE_SIDED_CHUNK`]).
pub fn topsoe_soa_bounded<K: Ord + Copy>(
    pk: &[K],
    pw: &[f64],
    tp: f64,
    qk: &[K],
    qw: &[f64],
    tq: f64,
    bound: f64,
) -> Option<f64> {
    debug_assert_eq!(pk.len(), pw.len());
    debug_assert_eq!(qk.len(), qw.len());
    if tp <= 0.0 || tq <= 0.0 || !tp.is_finite() || !tq.is_finite() {
        return None;
    }
    let mut sum = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < pk.len() && j < qk.len() {
        match pk[i].cmp(&qk[j]) {
            std::cmp::Ordering::Less => {
                // Align: extend the p-only run as far as it goes.
                let start = i;
                i += 1;
                while i < pk.len() && pk[i] < qk[j] {
                    i += 1;
                }
                if !accumulate_one_sided(&pw[start..i], tp, bound, &mut sum) {
                    return None;
                }
            }
            std::cmp::Ordering::Greater => {
                let start = j;
                j += 1;
                while j < qk.len() && qk[j] < pk[i] {
                    j += 1;
                }
                if !accumulate_one_sided(&qw[start..j], tq, bound, &mut sum) {
                    return None;
                }
            }
            std::cmp::Ordering::Equal => {
                // Matched key: the only place the logarithm survives.
                let pv = (pw[i] / tp).max(0.0);
                let qv = (qw[j] / tq).max(0.0);
                let mut term = 0.0;
                if pv > 0.0 {
                    term += pv * ((2.0 * pv) / (pv + qv)).ln();
                }
                if qv > 0.0 {
                    term += qv * ((2.0 * qv) / (pv + qv)).ln();
                }
                sum += term.max(0.0);
                if sum > bound {
                    return None;
                }
                i += 1;
                j += 1;
            }
        }
    }
    if !accumulate_one_sided(&pw[i..], tp, bound, &mut sum) {
        return None;
    }
    if !accumulate_one_sided(&qw[j..], tq, bound, &mut sum) {
        return None;
    }
    Some(sum)
}

/// Accumulates a one-sided run into `sum`, chunked bound checks
/// included; returns `false` when the partial sum exceeds `bound`.
///
/// Per key: `v = (w/t).max(0)` contributes `v·LN_2` (see the kernel
/// docs for why this equals `v·ln((2v)/v)` bit-for-bit). The overflow
/// guard keeps even pathological masses exact: when `2v` rounds to
/// infinity the scalar walk's term is `v·ln(∞) = ∞`, and so is ours.
#[inline]
fn accumulate_one_sided(ws: &[f64], t: f64, bound: f64, sum: &mut f64) -> bool {
    for chunk in ws.chunks(ONE_SIDED_CHUNK) {
        for &w in chunk {
            let v = (w / t).max(0.0);
            let term = if v > 0.0 {
                if 2.0 * v < f64::INFINITY {
                    v * LN_2
                } else if v < f64::INFINITY {
                    // finite v whose doubling overflows: the scalar walk
                    // computes v·ln(∞) = ∞
                    f64::INFINITY
                } else {
                    // v = ∞: the scalar walk's (2v)/(v) is ∞/∞ = NaN and
                    // `term.max(0.0)` clamps the NaN term to zero
                    0.0
                }
            } else {
                0.0
            };
            *sum += term.max(0.0);
        }
        if *sum > bound {
            return false;
        }
    }
    true
}

/// The scalar pair-walk the SoA kernel replaced, kept verbatim as the
/// bit-identity reference: `topsoe_soa_bounded` must reproduce its
/// result **to the bit** for every input, pruned or not (the proptests
/// below gate this).
#[cfg(test)]
fn topsoe_pairs_reference<K: Ord + Copy>(
    p: &[(K, f64)],
    tp: f64,
    q: &[(K, f64)],
    tq: f64,
    bound: f64,
) -> Option<f64> {
    if tp <= 0.0 || tq <= 0.0 || !tp.is_finite() || !tq.is_finite() {
        return None;
    }
    let mut sum = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < p.len() || j < q.len() {
        // Merge step: pick the smaller key, or consume both on a match.
        let (pv, qv) = match (p.get(i), q.get(j)) {
            (Some(&(pk, pv)), Some(&(qk, qv))) => match pk.cmp(&qk) {
                std::cmp::Ordering::Less => {
                    i += 1;
                    (pv, 0.0)
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    (0.0, qv)
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    (pv, qv)
                }
            },
            (Some(&(_, pv)), None) => {
                i += 1;
                (pv, 0.0)
            }
            (None, Some(&(_, qv))) => {
                j += 1;
                (0.0, qv)
            }
            (None, None) => unreachable!("loop condition"),
        };
        let pv = (pv / tp).max(0.0);
        let qv = (qv / tq).max(0.0);
        let mut term = 0.0;
        if pv > 0.0 {
            term += pv * ((2.0 * pv) / (pv + qv)).ln();
        }
        if qv > 0.0 {
            term += qv * ((2.0 * qv) / (pv + qv)).ln();
        }
        sum += term.max(0.0);
        if sum > bound {
            return None;
        }
    }
    Some(sum)
}

/// Reference Topsoe implementation: the original two-pass lookup-based
/// accumulation, kept to cross-check the merge walk (term order differs,
/// so values may differ by rounding noise — never more).
#[cfg(test)]
fn topsoe_reference<K: Ord + Copy>(p: &BTreeMap<K, f64>, q: &BTreeMap<K, f64>) -> Option<f64> {
    let (tp, tq) = (total(p), total(q));
    if tp <= 0.0 || tq <= 0.0 || !tp.is_finite() || !tq.is_finite() {
        return None;
    }
    let mut sum = 0.0;
    // Walk the union of supports; BTreeMap keys are ordered so a merge
    // walk would be possible, but hash-free lookups keep this simple and
    // the maps are small (hundreds of cells).
    for (k, &pv) in p {
        let pv = (pv / tp).max(0.0);
        let qv = q.get(k).map_or(0.0, |&v| (v / tq).max(0.0));
        if pv > 0.0 {
            sum += pv * ((2.0 * pv) / (pv + qv)).ln();
        }
        if qv > 0.0 {
            sum += qv * ((2.0 * qv) / (pv + qv)).ln();
        }
    }
    // keys present only in q
    for (k, &qv) in q {
        if p.contains_key(k) {
            continue;
        }
        let qv = (qv / tq).max(0.0);
        if qv > 0.0 {
            sum += qv * 2.0f64.ln();
        }
    }
    Some(sum.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(u32, f64)]) -> BTreeMap<u32, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn topsoe_identity_is_zero() {
        let p = dist(&[(0, 0.3), (1, 0.7)]);
        assert_eq!(topsoe(&p, &p).unwrap(), 0.0);
    }

    #[test]
    fn topsoe_symmetric() {
        let p = dist(&[(0, 0.3), (1, 0.7)]);
        let q = dist(&[(0, 0.6), (2, 0.4)]);
        let d1 = topsoe(&p, &q).unwrap();
        let d2 = topsoe(&q, &p).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn topsoe_disjoint_supports_is_max() {
        let p = dist(&[(0, 1.0)]);
        let q = dist(&[(1, 1.0)]);
        assert!((topsoe(&p, &q).unwrap() - 2.0 * LN_2).abs() < 1e-12);
    }

    #[test]
    fn topsoe_unnormalized_inputs_are_normalized() {
        let p = dist(&[(0, 3.0), (1, 7.0)]);
        let pn = dist(&[(0, 0.3), (1, 0.7)]);
        let q = dist(&[(0, 5.0), (1, 5.0)]);
        let d1 = topsoe(&p, &q).unwrap();
        let d2 = topsoe(&pn, &q).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn topsoe_rejects_empty() {
        let p: BTreeMap<u32, f64> = BTreeMap::new();
        let q = dist(&[(0, 1.0)]);
        assert!(topsoe(&p, &q).is_none());
        assert!(topsoe(&q, &p).is_none());
    }

    #[test]
    fn topsoe_is_twice_js() {
        let p = dist(&[(0, 0.5), (1, 0.2), (2, 0.3)]);
        let q = dist(&[(0, 0.1), (1, 0.8), (3, 0.1)]);
        let t = topsoe(&p, &q).unwrap();
        let js = jensen_shannon(&p, &q).unwrap();
        assert!((t - 2.0 * js).abs() < 1e-12);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = dist(&[(0, 0.4), (1, 0.6)]);
        assert!(kl(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_when_q_missing_support() {
        let p = dist(&[(0, 0.5), (1, 0.5)]);
        let q = dist(&[(0, 1.0)]);
        assert_eq!(kl(&p, &q).unwrap(), f64::INFINITY);
    }

    #[test]
    fn kl_known_value() {
        // KL between Bernoulli(0.5) and Bernoulli(0.25)
        let p = dist(&[(0, 0.5), (1, 0.5)]);
        let q = dist(&[(0, 0.25), (1, 0.75)]);
        let expected = 0.5 * (0.5f64 / 0.25).ln() + 0.5 * (0.5f64 / 0.75).ln();
        assert!((kl(&p, &q).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn sorted_walk_matches_reference_implementation() {
        let p = dist(&[(0, 0.5), (1, 0.2), (2, 0.3)]);
        let q = dist(&[(0, 0.1), (1, 0.8), (3, 0.1)]);
        let walk = topsoe(&p, &q).unwrap();
        let reference = topsoe_reference(&p, &q).unwrap();
        assert!((walk - reference).abs() < 1e-12, "{walk} vs {reference}");
    }

    #[test]
    fn bounded_returns_identical_score_or_prunes() {
        let p: Vec<(u32, f64)> = vec![(0, 0.5), (1, 0.2), (2, 0.3)];
        let q: Vec<(u32, f64)> = vec![(0, 0.1), (1, 0.8), (3, 0.1)];
        let full = topsoe_sorted(&p, &q).unwrap();
        // infinite bound: bit-identical to the full walk
        assert_eq!(topsoe_sorted_bounded(&p, &q, f64::INFINITY), Some(full));
        assert_eq!(topsoe_sorted_bounded(&p, &q, full), Some(full));
        // any bound below the score prunes
        assert_eq!(topsoe_sorted_bounded(&p, &q, full * 0.99), None);
        assert_eq!(topsoe_sorted_bounded(&p, &q, 0.0), None);
    }

    #[test]
    fn ln_of_two_is_the_ln2_constant() {
        // The SoA kernel's one-sided fast path rests on `(2v)/v == 2.0`
        // (exact IEEE doubling) and `ln(2.0) == LN_2`; pin the latter.
        assert_eq!(2.0f64.ln().to_bits(), LN_2.to_bits());
    }

    #[test]
    fn soa_kernel_handles_extreme_masses() {
        // Masses large enough that 2v overflows: the scalar walk yields
        // an infinite term and so must the fast path's guard.
        let huge = f64::MAX / 2.0;
        let p: Vec<(u32, f64)> = vec![(0, huge)];
        let q: Vec<(u32, f64)> = vec![(1, 1.0)];
        // tp supplied as a tiny total drives v = huge/tiny toward ∞
        let got = topsoe_sorted_bounded_with_totals(&p, 1e-300, &q, 1.0, f64::INFINITY);
        let want = topsoe_pairs_reference(&p, 1e-300, &q, 1.0, f64::INFINITY);
        assert_eq!(got.map(f64::to_bits), want.map(f64::to_bits));
    }

    #[test]
    fn sorted_rejects_empty() {
        let p: Vec<(u32, f64)> = vec![(0, 1.0)];
        let empty: Vec<(u32, f64)> = vec![];
        assert!(topsoe_sorted(&p, &empty).is_none());
        assert!(topsoe_sorted(&empty, &p).is_none());
        let zero: Vec<(u32, f64)> = vec![(0, 0.0)];
        assert!(topsoe_sorted(&p, &zero).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dist() -> impl Strategy<Value = BTreeMap<u32, f64>> {
        proptest::collection::btree_map(0u32..20, 0.01f64..10.0, 1..15)
    }

    /// Like [`arb_dist`] but also generating the empty distribution and
    /// single-key distributions, the SoA kernel's edge cases (rejection,
    /// all-one-sided walks).
    fn arb_dist_edgy() -> impl Strategy<Value = BTreeMap<u32, f64>> {
        proptest::collection::btree_map(0u32..20, 0.01f64..10.0, 0..15)
    }

    proptest! {
        #[test]
        fn topsoe_nonnegative_and_bounded(p in arb_dist(), q in arb_dist()) {
            let t = topsoe(&p, &q).unwrap();
            prop_assert!(t >= 0.0);
            prop_assert!(t <= 2.0 * LN_2 + 1e-9, "t = {t}");
        }

        #[test]
        fn topsoe_symmetry(p in arb_dist(), q in arb_dist()) {
            let a = topsoe(&p, &q).unwrap();
            let b = topsoe(&q, &p).unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn topsoe_self_is_zero(p in arb_dist()) {
            prop_assert!(topsoe(&p, &p).unwrap() < 1e-12);
        }

        #[test]
        fn js_bounded_by_ln2(p in arb_dist(), q in arb_dist()) {
            let js = jensen_shannon(&p, &q).unwrap();
            prop_assert!((0.0..=LN_2 + 1e-9).contains(&js));
        }

        #[test]
        fn sorted_walk_agrees_with_reference(p in arb_dist(), q in arb_dist()) {
            let walk = topsoe(&p, &q).unwrap();
            let reference = topsoe_reference(&p, &q).unwrap();
            prop_assert!((walk - reference).abs() < 1e-9, "{walk} vs {reference}");
        }

        // The SoA gate: the run-based kernel must reproduce the scalar
        // pair walk bit-for-bit — same Some/None outcome under any
        // bound, same score bits — across empty, single-key, disjoint
        // and overlapping supports.
        #[test]
        fn soa_kernel_is_bit_identical_to_scalar_walk(
            p in arb_dist_edgy(),
            q in arb_dist_edgy(),
            bound_frac in -0.5f64..1.5,
        ) {
            let p: Vec<(u32, f64)> = p.into_iter().collect();
            let q: Vec<(u32, f64)> = q.into_iter().collect();
            let tp: f64 = p.iter().map(|e| e.1).sum();
            let tq: f64 = q.iter().map(|e| e.1).sum();
            // bound: infinite (negative draw), or a fraction of the max
            // divergence so pruned and unpruned outcomes are exercised
            let bound = if bound_frac < 0.0 {
                f64::INFINITY
            } else {
                bound_frac * 2.0 * LN_2
            };
            let reference = topsoe_pairs_reference(&p, tp, &q, tq, bound);
            let soa = topsoe_sorted_bounded_with_totals(&p, tp, &q, tq, bound);
            prop_assert_eq!(
                soa.map(f64::to_bits),
                reference.map(f64::to_bits),
                "SoA diverged from scalar walk (bound {})", bound
            );
        }

        // Disjoint supports are the all-one-sided extreme: every key
        // takes the ln-free fast path and the result must still be the
        // exact maximum the scalar walk produces.
        #[test]
        fn soa_kernel_disjoint_supports(p in arb_dist(), q in arb_dist()) {
            let p: Vec<(u32, f64)> = p.into_iter().map(|(k, v)| (2 * k, v)).collect();
            let q: Vec<(u32, f64)> = q.into_iter().map(|(k, v)| (2 * k + 1, v)).collect();
            let tp: f64 = p.iter().map(|e| e.1).sum();
            let tq: f64 = q.iter().map(|e| e.1).sum();
            let reference = topsoe_pairs_reference(&p, tp, &q, tq, f64::INFINITY);
            let soa = topsoe_sorted_bounded_with_totals(&p, tp, &q, tq, f64::INFINITY);
            prop_assert_eq!(soa.map(f64::to_bits), reference.map(f64::to_bits));
            let d = soa.unwrap();
            prop_assert!((d - 2.0 * LN_2).abs() < 1e-9, "disjoint should be max: {d}");
        }

        // The pruned-matching gate: running an arg-min scan over
        // arbitrary heatmap-like profiles with best-bound pruning must
        // select the same winner with the bit-identical score as the
        // unpruned reference scan — the exactness contract AP-Attack's
        // profile matching relies on.
        #[test]
        fn pruned_matching_is_exact(
            anon in arb_dist(),
            profiles in proptest::collection::vec(arb_dist(), 1..12),
        ) {
            let anon: Vec<(u32, f64)> = anon.into_iter().collect();
            let profiles: Vec<Vec<(u32, f64)>> = profiles
                .into_iter()
                .map(|d| d.into_iter().collect())
                .collect();

            // Unpruned reference: full score per profile, first strict
            // minimum wins.
            let mut ref_best: Option<(usize, f64)> = None;
            for (i, profile) in profiles.iter().enumerate() {
                let d = topsoe_sorted(&anon, profile).unwrap();
                if ref_best.is_none_or(|(_, b)| d < b) {
                    ref_best = Some((i, d));
                }
            }

            // Pruned scan: later profiles are bounded by the running best.
            let mut pruned_best: Option<(usize, f64)> = None;
            for (i, profile) in profiles.iter().enumerate() {
                let score = match pruned_best {
                    None => topsoe_sorted(&anon, profile),
                    Some((_, b)) => topsoe_sorted_bounded(&anon, profile, b),
                };
                if let Some(d) = score {
                    if pruned_best.is_none_or(|(_, b)| d < b) {
                        pruned_best = Some((i, d));
                    }
                }
            }

            let (ri, rd) = ref_best.unwrap();
            let (pi, pd) = pruned_best.unwrap();
            prop_assert_eq!(ri, pi, "winner diverged");
            prop_assert_eq!(rd.to_bits(), pd.to_bits(), "winning score diverged");
        }
    }
}
