//! SoA distance kernels for the attack hot loops.
//!
//! The POI and PIT attacks bottom out in the same scan: for each
//! anonymous centroid, find the nearest candidate centroid under the
//! equirectangular [`GeoPoint::approx_distance`], multiply by a weight,
//! and accumulate with best-bound pruning. The reference form walks a
//! `&[Poi]` slice and calls `approx_distance` per pair — every iteration
//! reloads a whole [`Poi`] struct (centroid + counts + dwell) to use two
//! of its fields, and pays a `sqrt` and a radius multiply per *pair*.
//!
//! [`CentroidSoa`] splits candidate centroids into parallel `lat`/`lng`
//! arrays so the scan streams two dense f64 slices, and the kernel is
//! two-phase:
//!
//! 1. **reduce** — the branchy part: a min-reduction over the *scaled
//!    squared* distances `dx² + dy²` (the monotone core of
//!    `approx_distance`);
//! 2. **finish** — one `sqrt` and one `EARTH_RADIUS_M` multiply applied
//!    to the minimum only.
//!
//! Hoisting `fl(R · fl(√s))` out of the reduction is **bit-exact**:
//! `√` and multiplication by a positive constant are weakly monotone
//! under round-to-nearest, so the minimum of the mapped values equals
//! the mapped minimum. The per-pair `cos(mean_lat)` cannot be hoisted
//! without changing bits (the mean couples both endpoints), so it stays
//! in the loop — the win is the struct-of-arrays traversal and the
//! `sqrt`s that no longer happen per pair. Proptests in this module pin
//! bit-identity against the reference fold.

use serde::{Deserialize, Serialize};

use mood_geo::{GeoPoint, EARTH_RADIUS_M};

use crate::Poi;

/// Candidate centroids in struct-of-arrays form: parallel `lat` / `lng`
/// slices, built once per trained profile and scanned by every verdict.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CentroidSoa {
    lats: Vec<f64>,
    lngs: Vec<f64>,
}

impl CentroidSoa {
    /// An empty centroid set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the SoA form of `pois`' centroids, in slice order.
    pub fn from_pois(pois: &[Poi]) -> Self {
        let mut soa = Self::with_capacity(pois.len());
        for poi in pois {
            soa.push(&poi.centroid);
        }
        soa
    }

    /// An empty set with room for `n` centroids.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            lats: Vec::with_capacity(n),
            lngs: Vec::with_capacity(n),
        }
    }

    /// Appends one centroid.
    pub fn push(&mut self, point: &GeoPoint) {
        self.lats.push(point.lat());
        self.lngs.push(point.lng());
    }

    /// Number of centroids.
    pub fn len(&self) -> usize {
        self.lats.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lats.is_empty()
    }

    /// Distance in meters from `(lat, lng)` to the nearest centroid of
    /// the set, bit-identical to folding
    /// [`GeoPoint::approx_distance`] over the centroids with `f64::min`.
    /// `f64::INFINITY` for an empty set.
    pub fn nearest_approx_distance(&self, lat: f64, lng: f64) -> f64 {
        // Phase 1: min-reduce the scaled squared distances.
        let mut best = f64::INFINITY;
        for (&clat, &clng) in self.lats.iter().zip(self.lngs.iter()) {
            // Verbatim `GeoPoint::approx_distance` core, minus the
            // monotone `sqrt`/radius tail.
            let mean_lat = ((lat + clat) / 2.0).to_radians();
            let dx = (clng - lng).to_radians() * mean_lat.cos();
            let dy = (clat - lat).to_radians();
            let s = dx * dx + dy * dy;
            if s < best {
                best = s;
            }
        }
        // Phase 2: one sqrt + one multiply on the winner only.
        EARTH_RADIUS_M * best.sqrt()
    }
}

/// Weighted nearest-centroid accumulation with exact best-bound pruning
/// — the shared core of the POI profile distance and the PIT stationary
/// half.
///
/// For each anonymous POI `i`, adds `weights[i] ×` the distance from
/// `anon[i]` to the nearest centroid of `cand`; after each term, prunes
/// (returns `None`) when `prune_scale × partial_sum > bound`. POI passes
/// `prune_scale = 1.0` (the sum *is* the score); PIT passes `0.5`
/// (its score is `0.5 × sum + 0.5 × proximity`, and the proximity half
/// is non-negative, so `0.5 × partial` exceeding the bound already
/// proves the full score would). Terms are non-negative, so partial
/// sums are monotone and pruning is exact.
///
/// An empty `cand` short-circuits to `Some(f64::INFINITY)` without
/// pruning, exactly like the reference scans. A returned sum is
/// bit-identical to the unbounded reference walk.
pub fn weighted_nearest_bounded(
    anon: &[Poi],
    weights: &[f64],
    cand: &CentroidSoa,
    bound: Option<f64>,
    prune_scale: f64,
) -> Option<f64> {
    if cand.is_empty() {
        return Some(f64::INFINITY);
    }
    let mut sum = 0.0;
    for (poi, &w) in anon.iter().zip(weights.iter()) {
        let nearest = cand.nearest_approx_distance(poi.centroid.lat(), poi.centroid.lng());
        sum += w * nearest;
        if let Some(b) = bound {
            if prune_scale * sum > b {
                return None;
            }
        }
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::TimeDelta;
    use proptest::prelude::*;

    fn poi_at(lat: f64, lng: f64) -> Poi {
        Poi {
            centroid: GeoPoint::new(lat, lng).unwrap(),
            record_count: 1,
            visit_count: 1,
            total_dwell: TimeDelta::from_hours(1),
        }
    }

    /// The scalar reference: fold `approx_distance` with `f64::min`,
    /// exactly as the attack inner loops do today.
    fn reference_nearest(anon: &GeoPoint, cand: &[Poi]) -> f64 {
        cand.iter()
            .map(|c| anon.approx_distance(&c.centroid))
            .fold(f64::INFINITY, f64::min)
    }

    /// The scalar reference accumulation with per-term pruning
    /// (`profile_distance_bounded` / `stats_prox_bounded`'s stationary
    /// loop, parameterized by the prune scale).
    fn reference_weighted(
        anon: &[Poi],
        weights: &[f64],
        cand: &[Poi],
        bound: Option<f64>,
        prune_scale: f64,
    ) -> Option<f64> {
        if cand.is_empty() {
            return Some(f64::INFINITY);
        }
        let mut sum = 0.0;
        for (poi, &w) in anon.iter().zip(weights.iter()) {
            let nearest = reference_nearest(&poi.centroid, cand);
            sum += w * nearest;
            if let Some(b) = bound {
                if prune_scale * sum > b {
                    return None;
                }
            }
        }
        Some(sum)
    }

    fn arb_pois() -> impl Strategy<Value = Vec<Poi>> {
        proptest::collection::vec((45.0f64..47.0, 5.0f64..7.0), 0..12)
            .prop_map(|pts| pts.into_iter().map(|(a, b)| poi_at(a, b)).collect())
    }

    #[test]
    fn empty_set_is_infinitely_far() {
        let soa = CentroidSoa::new();
        assert_eq!(soa.nearest_approx_distance(46.0, 6.0), f64::INFINITY);
        assert!(soa.is_empty());
        assert_eq!(soa.len(), 0);
    }

    #[test]
    fn empty_candidate_short_circuits_before_pruning() {
        let anon = vec![poi_at(46.0, 6.0)];
        let got = weighted_nearest_bounded(&anon, &[1.0], &CentroidSoa::new(), Some(0.0), 1.0);
        assert_eq!(got, Some(f64::INFINITY));
    }

    #[test]
    fn single_centroid_matches_approx_distance() {
        let a = GeoPoint::new(46.2, 6.1).unwrap();
        let c = poi_at(46.21, 6.13);
        let soa = CentroidSoa::from_pois(std::slice::from_ref(&c));
        assert_eq!(
            soa.nearest_approx_distance(a.lat(), a.lng()).to_bits(),
            a.approx_distance(&c.centroid).to_bits()
        );
    }

    proptest! {
        #[test]
        fn soa_nearest_is_bit_identical_to_reference_fold(
            anon in (45.0f64..47.0, 5.0f64..7.0),
            cand in arb_pois(),
        ) {
            let a = GeoPoint::new(anon.0, anon.1).unwrap();
            let soa = CentroidSoa::from_pois(&cand);
            prop_assert_eq!(
                soa.nearest_approx_distance(a.lat(), a.lng()).to_bits(),
                reference_nearest(&a, &cand).to_bits()
            );
        }

        #[test]
        fn weighted_kernel_is_bit_identical_to_reference(
            anon in arb_pois(),
            cand in arb_pois(),
            weights in proptest::collection::vec(0.0f64..1.0, 12..13),
            bound_frac in -0.5f64..1.5,
            half in 0u8..2,
        ) {
            let prune_scale = if half == 1 { 0.5 } else { 1.0 };
            let soa = CentroidSoa::from_pois(&cand);
            let unbounded = weighted_nearest_bounded(
                &anon, &weights, &soa, None, prune_scale,
            );
            prop_assert_eq!(
                unbounded.map(f64::to_bits),
                reference_weighted(&anon, &weights, &cand, None, prune_scale)
                    .map(f64::to_bits)
            );

            // A negative draw means "no bound would ever prune";
            // otherwise scale the unbounded score so the bound lands
            // below, inside, or above the pruning range.
            let bound = if bound_frac < 0.0 {
                f64::INFINITY
            } else {
                let full = unbounded.unwrap();
                if full.is_finite() { bound_frac * prune_scale * full } else { 1.0 }
            };
            prop_assert_eq!(
                weighted_nearest_bounded(&anon, &weights, &soa, Some(bound), prune_scale)
                    .map(f64::to_bits),
                reference_weighted(&anon, &weights, &cand, Some(bound), prune_scale)
                    .map(f64::to_bits)
            );
        }
    }
}
