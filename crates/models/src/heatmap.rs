use serde::{Deserialize, Serialize};

use mood_geo::{CellId, GeoPoint, Grid};
use mood_trace::Trace;

use crate::divergence;

/// A heatmap mobility profile: per-cell record counts over a
/// [`Grid`] (paper Fig. 1, right; the model behind AP-Attack and HMC).
///
/// Counts are kept raw; all comparisons normalize internally, so heatmaps
/// built from traces of different lengths compare correctly.
///
/// Internally the counts live in a **sorted vector** of `(cell, count)`
/// pairs rather than a `BTreeMap`: the candidate hot path rebuilds one
/// heatmap per scored trace, and a flat vector can be cleared and
/// refilled without a single node allocation
/// ([`Heatmap::rebuild_from_cells`]), while lookups stay `O(log n)` by
/// binary search and comparisons become allocation-free merge walks.
///
/// # Examples
///
/// ```
/// use mood_geo::{BoundingBox, GeoPoint, Grid};
/// use mood_trace::{Record, Timestamp, Trace, UserId};
/// use mood_models::Heatmap;
///
/// let grid = Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3)?, 800.0)?;
/// let records: Vec<Record> = (0..10)
///     .map(|i| Record::new(GeoPoint::new(46.2, 6.1).unwrap(), Timestamp::from_unix(i * 60)))
///     .collect();
/// let trace = Trace::new(UserId::new(1), records)?;
/// let hm = Heatmap::from_trace(&grid, &trace);
/// assert_eq!(hm.total(), 10.0);
/// assert_eq!(hm.cell_count(), 1);
/// assert_eq!(hm.topsoe(&hm), Some(0.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(from = "HeatmapRepr", into = "HeatmapRepr")]
pub struct Heatmap {
    /// `(cell, count)` pairs sorted by cell, each cell at most once.
    cells: Vec<(CellId, f64)>,
    total: f64,
}

/// Serialized form of [`Heatmap`]: cells as a list of pairs (JSON map keys
/// must be strings); the total is recomputed on deserialization.
#[derive(Serialize, Deserialize)]
struct HeatmapRepr {
    cells: Vec<(CellId, f64)>,
}

impl From<Heatmap> for HeatmapRepr {
    fn from(h: Heatmap) -> Self {
        HeatmapRepr { cells: h.cells }
    }
}

impl From<HeatmapRepr> for Heatmap {
    fn from(r: HeatmapRepr) -> Self {
        let mut hm = Heatmap::new();
        for (c, w) in r.cells {
            let w = if w.is_finite() { w.max(0.0) } else { 0.0 };
            hm.add(c, w);
        }
        hm
    }
}

impl Heatmap {
    /// An empty heatmap (no records).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the heatmap of a trace over `grid`. Records outside the
    /// grid's bounding box are clamped to border cells (never dropped), so
    /// `total()` always equals the trace length.
    pub fn from_trace(grid: &Grid, trace: &Trace) -> Self {
        Self::from_points(grid, trace.points())
    }

    /// Builds a heatmap from bare points.
    pub fn from_points<I>(grid: &Grid, points: I) -> Self
    where
        I: IntoIterator<Item = GeoPoint>,
    {
        let mut hm = Self::new();
        hm.accumulate(points.into_iter().map(|p| grid.cell_of(&p)));
        hm
    }

    /// Clears the heatmap and refills it from a pre-rasterized cell
    /// sequence, reusing the existing buffer — the zero-allocation twin
    /// of [`Heatmap::from_trace`] for scratch-arena hot loops (the cell
    /// sequence typically comes from a
    /// [`TraceRaster`](crate::TraceRaster)).
    ///
    /// The result is identical to building a fresh heatmap from the same
    /// cells: counts are whole numbers, so accumulation order cannot
    /// change the stored values.
    pub fn rebuild_from_cells(&mut self, cells: &[CellId]) {
        self.cells.clear();
        self.total = 0.0;
        self.accumulate(cells.iter().copied());
    }

    /// Accumulates a cell sequence into the empty map: collapse
    /// consecutive runs (dwells make them common), sort, then merge
    /// duplicates in place.
    fn accumulate<I: Iterator<Item = CellId>>(&mut self, cells: I) {
        debug_assert!(self.cells.is_empty());
        for c in cells {
            self.total += 1.0;
            if let Some(last) = self.cells.last_mut() {
                if last.0 == c {
                    last.1 += 1.0;
                    continue;
                }
            }
            self.cells.push((c, 1.0));
        }
        self.cells.sort_by_key(|e| e.0);
        self.cells.dedup_by(|cur, kept| {
            if cur.0 == kept.0 {
                kept.1 += cur.1;
                true
            } else {
                false
            }
        });
    }

    /// Adds `weight` mass to `cell`.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is negative or not finite.
    pub fn add(&mut self, cell: CellId, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative"
        );
        match self.cells.binary_search_by(|e| e.0.cmp(&cell)) {
            Ok(i) => self.cells[i].1 += weight,
            Err(i) => self.cells.insert(i, (cell, weight)),
        }
        self.total += weight;
    }

    /// The raw per-cell counts as `(cell, count)` pairs, sorted by cell.
    pub fn cells(&self) -> &[(CellId, f64)] {
        &self.cells
    }

    /// Total mass (= number of records for trace-built heatmaps).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of distinct non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the heatmap holds no mass.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Raw count of `cell` (0 when absent).
    pub fn count(&self, cell: CellId) -> f64 {
        self.cells
            .binary_search_by(|e| e.0.cmp(&cell))
            .map_or(0.0, |i| self.cells[i].1)
    }

    /// Probability mass of `cell` (0 when absent or the map is empty).
    pub fn probability(&self, cell: CellId) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.count(cell) / self.total
    }

    /// The `k` hottest cells with their counts, descending; ties broken by
    /// cell order so the result is deterministic.
    pub fn top_cells(&self, k: usize) -> Vec<(CellId, f64)> {
        let mut v = self.cells.clone();
        Self::rank(&mut v);
        v.truncate(k);
        v
    }

    /// All cells sorted hottest-first (the full ranking HMC's
    /// rank-matching uses).
    pub fn ranked_cells(&self) -> Vec<(CellId, f64)> {
        self.top_cells(self.cells.len())
    }

    /// Writes the full hottest-first ranking into `out` (cleared first),
    /// reusing its buffer — the scratch twin of
    /// [`Heatmap::ranked_cells`].
    pub fn ranked_cells_into(&self, out: &mut Vec<(CellId, f64)>) {
        out.clear();
        out.extend_from_slice(&self.cells);
        Self::rank(out);
    }

    fn rank(v: &mut [(CellId, f64)]) {
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    }

    /// Topsoe divergence to `other` (see [`divergence::topsoe_sorted`]);
    /// `None` when either heatmap is empty. This is AP-Attack's profile
    /// distance. Uses the maintained totals — no re-summation; every
    /// `Heatmap` comparison sources totals the same way, so the
    /// pruned/unpruned paths stay bit-consistent.
    pub fn topsoe(&self, other: &Heatmap) -> Option<f64> {
        self.topsoe_bounded(other, f64::INFINITY)
    }

    /// [`Heatmap::topsoe`] with best-bound pruning: returns `None` as
    /// soon as the partial sum provably exceeds `bound` (see
    /// [`divergence::topsoe_sorted_bounded`]). A returned score is
    /// bit-identical to the unpruned [`Heatmap::topsoe`].
    pub fn topsoe_bounded(&self, other: &Heatmap, bound: f64) -> Option<f64> {
        divergence::topsoe_sorted_bounded_with_totals(
            &self.cells,
            self.total,
            &other.cells,
            other.total,
            bound,
        )
    }

    /// Element-wise sum of two heatmaps (used to pool background
    /// knowledge).
    pub fn merged(&self, other: &Heatmap) -> Heatmap {
        let mut cells = Vec::with_capacity(self.cells.len() + other.cells.len());
        let (mut i, mut j) = (0, 0);
        while i < self.cells.len() && j < other.cells.len() {
            let (a, b) = (self.cells[i], other.cells[j]);
            match a.0.cmp(&b.0) {
                std::cmp::Ordering::Less => {
                    cells.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    cells.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    cells.push((a.0, a.1 + b.1));
                    i += 1;
                    j += 1;
                }
            }
        }
        cells.extend_from_slice(&self.cells[i..]);
        cells.extend_from_slice(&other.cells[j..]);
        Heatmap {
            cells,
            total: self.total + other.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::BoundingBox;
    use mood_trace::{Record, Timestamp, UserId};

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3).unwrap(), 800.0).unwrap()
    }

    fn trace_at(points: &[(f64, f64)]) -> Trace {
        let records: Vec<Record> = points
            .iter()
            .enumerate()
            .map(|(i, &(lat, lng))| {
                Record::new(
                    GeoPoint::new(lat, lng).unwrap(),
                    Timestamp::from_unix(i as i64 * 60),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn from_trace_counts_every_record() {
        let t = trace_at(&[(46.15, 6.05), (46.15, 6.05), (46.25, 6.25)]);
        let hm = Heatmap::from_trace(&grid(), &t);
        assert_eq!(hm.total(), 3.0);
        assert_eq!(hm.cell_count(), 2);
    }

    #[test]
    fn out_of_box_points_are_clamped_not_dropped() {
        let t = trace_at(&[(46.15, 6.05), (50.0, 10.0)]);
        let hm = Heatmap::from_trace(&grid(), &t);
        assert_eq!(hm.total(), 2.0);
    }

    #[test]
    fn probability_normalizes() {
        let g = grid();
        let t = trace_at(&[(46.15, 6.05), (46.15, 6.05), (46.25, 6.25), (46.25, 6.25)]);
        let hm = Heatmap::from_trace(&g, &t);
        let c = g.cell_of(&GeoPoint::new(46.15, 6.05).unwrap());
        assert!((hm.probability(c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_heatmap_behaviour() {
        let hm = Heatmap::new();
        assert!(hm.is_empty());
        assert_eq!(hm.cell_count(), 0);
        assert_eq!(hm.probability(CellId { row: 0, col: 0 }), 0.0);
        assert!(hm.topsoe(&hm).is_none());
    }

    #[test]
    fn add_accumulates() {
        let mut hm = Heatmap::new();
        let c = CellId { row: 1, col: 2 };
        hm.add(c, 2.0);
        hm.add(c, 3.0);
        assert_eq!(hm.total(), 5.0);
        assert_eq!(hm.count(c), 5.0);
    }

    #[test]
    #[should_panic(expected = "weight must be non-negative")]
    fn add_rejects_negative() {
        Heatmap::new().add(CellId { row: 0, col: 0 }, -1.0);
    }

    #[test]
    fn cells_are_sorted_and_unique() {
        let mut hm = Heatmap::new();
        for c in [5u32, 1, 3, 1, 5, 2] {
            hm.add(CellId { row: c, col: 0 }, 1.0);
        }
        let cells = hm.cells();
        assert_eq!(cells.len(), 4);
        assert!(cells.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(hm.count(CellId { row: 1, col: 0 }), 2.0);
    }

    #[test]
    fn rebuild_from_cells_matches_fresh_build() {
        let g = grid();
        let t = trace_at(&[
            (46.15, 6.05),
            (46.15, 6.05),
            (46.25, 6.25),
            (46.15, 6.05),
            (46.22, 6.12),
        ]);
        let fresh = Heatmap::from_trace(&g, &t);
        let cells: Vec<CellId> = t.records().iter().map(|r| g.cell_of(&r.point())).collect();
        let mut reused = Heatmap::new();
        // fill with junk first: rebuild must fully replace it
        reused.add(CellId { row: 9, col: 9 }, 42.0);
        reused.rebuild_from_cells(&cells);
        assert_eq!(reused, fresh);
        // and again, exercising the warmed buffer
        reused.rebuild_from_cells(&cells);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn top_cells_descending_deterministic() {
        let mut hm = Heatmap::new();
        hm.add(CellId { row: 0, col: 0 }, 5.0);
        hm.add(CellId { row: 1, col: 1 }, 10.0);
        hm.add(CellId { row: 2, col: 2 }, 5.0);
        let top = hm.top_cells(3);
        assert_eq!(top[0].0, CellId { row: 1, col: 1 });
        // tie between (0,0) and (2,2) broken by cell order
        assert_eq!(top[1].0, CellId { row: 0, col: 0 });
        assert_eq!(top[2].0, CellId { row: 2, col: 2 });
        let mut ranked = vec![(CellId { row: 7, col: 7 }, 1.0)];
        hm.ranked_cells_into(&mut ranked);
        assert_eq!(ranked, hm.ranked_cells());
    }

    #[test]
    fn topsoe_zero_for_identical_profiles() {
        let t = trace_at(&[(46.15, 6.05), (46.25, 6.25)]);
        let hm = Heatmap::from_trace(&grid(), &t);
        assert_eq!(hm.topsoe(&hm), Some(0.0));
    }

    #[test]
    fn topsoe_max_for_disjoint_profiles() {
        let a = Heatmap::from_trace(&grid(), &trace_at(&[(46.15, 6.05)]));
        let b = Heatmap::from_trace(&grid(), &trace_at(&[(46.25, 6.25)]));
        let d = a.topsoe(&b).unwrap();
        assert!((d - 2.0 * divergence::LN_2).abs() < 1e-12);
    }

    #[test]
    fn topsoe_smaller_for_similar_profiles() {
        let a = trace_at(&[(46.15, 6.05), (46.15, 6.05), (46.25, 6.25)]);
        let b = trace_at(&[(46.15, 6.05), (46.25, 6.25), (46.25, 6.25)]);
        let c = trace_at(&[(46.12, 6.27), (46.12, 6.27), (46.12, 6.27)]);
        let g = grid();
        let (ha, hb, hc) = (
            Heatmap::from_trace(&g, &a),
            Heatmap::from_trace(&g, &b),
            Heatmap::from_trace(&g, &c),
        );
        assert!(ha.topsoe(&hb).unwrap() < ha.topsoe(&hc).unwrap());
    }

    #[test]
    fn topsoe_bounded_agrees_with_full_or_prunes() {
        let g = grid();
        let a = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05), (46.25, 6.25)]));
        let b = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05), (46.12, 6.27)]));
        let full = a.topsoe(&b).unwrap();
        assert_eq!(a.topsoe_bounded(&b, f64::INFINITY), Some(full));
        // a bound below the true score must prune
        assert_eq!(a.topsoe_bounded(&b, full / 2.0), None);
    }

    #[test]
    fn merged_adds_mass() {
        let g = grid();
        let a = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05)]));
        let b = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05), (46.25, 6.25)]));
        let m = a.merged(&b);
        assert_eq!(m.total(), 3.0);
        assert_eq!(m.cell_count(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let hm = Heatmap::from_trace(&grid(), &trace_at(&[(46.15, 6.05), (46.25, 6.25)]));
        let json = serde_json::to_string(&hm).unwrap();
        let back: Heatmap = serde_json::from_str(&json).unwrap();
        assert_eq!(hm, back);
    }
}
