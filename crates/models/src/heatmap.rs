use serde::{Deserialize, Serialize};

use mood_geo::{CellId, GeoPoint, Grid};
use mood_trace::Trace;

use crate::divergence;

/// A heatmap mobility profile: per-cell record counts over a
/// [`Grid`] (paper Fig. 1, right; the model behind AP-Attack and HMC).
///
/// Counts are kept raw; all comparisons normalize internally, so heatmaps
/// built from traces of different lengths compare correctly.
///
/// Internally the counts live in **structure-of-arrays** form — a
/// sorted slice of cells and a parallel slice of `f64` counts — rather
/// than a `BTreeMap` or a pair vector: the candidate hot path rebuilds
/// one heatmap per scored trace, and flat vectors can be cleared and
/// refilled without a single node allocation
/// ([`Heatmap::rebuild_from_cells`]), lookups stay `O(log n)` by binary
/// search on the key slice alone, and the Topsoe comparison streams the
/// weight slices straight through the branch-light SoA kernel
/// ([`divergence::topsoe_soa_bounded`]).
///
/// # Examples
///
/// ```
/// use mood_geo::{BoundingBox, GeoPoint, Grid};
/// use mood_trace::{Record, Timestamp, Trace, UserId};
/// use mood_models::Heatmap;
///
/// let grid = Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3)?, 800.0)?;
/// let records: Vec<Record> = (0..10)
///     .map(|i| Record::new(GeoPoint::new(46.2, 6.1).unwrap(), Timestamp::from_unix(i * 60)))
///     .collect();
/// let trace = Trace::new(UserId::new(1), records)?;
/// let hm = Heatmap::from_trace(&grid, &trace);
/// assert_eq!(hm.total(), 10.0);
/// assert_eq!(hm.cell_count(), 1);
/// assert_eq!(hm.topsoe(&hm), Some(0.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "HeatmapRepr", into = "HeatmapRepr")]
pub struct Heatmap {
    /// Distinct cells, sorted ascending (row-major), each at most once.
    keys: Vec<CellId>,
    /// Count of `keys[i]` at index `i`.
    weights: Vec<f64>,
    total: f64,
    /// Reusable buffers for [`Heatmap::accumulate`]; never part of the
    /// observable state (equality and serialization go through
    /// [`HeatmapRepr`], which ignores it).
    scratch: RebuildScratch,
}

/// Scratch buffers of the accumulate path: collapsed `(packed cell,
/// count)` runs, plus a dense count table with its touched-bin list for
/// the counting fast path.
#[derive(Debug, Clone, Default)]
struct RebuildScratch {
    runs: Vec<(u64, f64)>,
    bins: Vec<f64>,
    touched: Vec<u32>,
}

/// Observable state only: two heatmaps compare equal iff their cells,
/// counts and total match — scratch buffers are invisible.
impl PartialEq for Heatmap {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys && self.weights == other.weights && self.total == other.total
    }
}

/// Serialized form of [`Heatmap`]: cells as a list of pairs (JSON map keys
/// must be strings); the total is recomputed on deserialization.
#[derive(Serialize, Deserialize)]
struct HeatmapRepr {
    cells: Vec<(CellId, f64)>,
}

impl From<Heatmap> for HeatmapRepr {
    fn from(h: Heatmap) -> Self {
        HeatmapRepr {
            cells: h.keys.into_iter().zip(h.weights).collect(),
        }
    }
}

impl From<HeatmapRepr> for Heatmap {
    fn from(r: HeatmapRepr) -> Self {
        let mut hm = Heatmap::new();
        for (c, w) in r.cells {
            let w = if w.is_finite() { w.max(0.0) } else { 0.0 };
            hm.add(c, w);
        }
        hm
    }
}

impl Heatmap {
    /// An empty heatmap (no records).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the heatmap of a trace over `grid`. Records outside the
    /// grid's bounding box are clamped to border cells (never dropped), so
    /// `total()` always equals the trace length.
    pub fn from_trace(grid: &Grid, trace: &Trace) -> Self {
        Self::from_points(grid, trace.points())
    }

    /// Builds a heatmap from bare points.
    pub fn from_points<I>(grid: &Grid, points: I) -> Self
    where
        I: IntoIterator<Item = GeoPoint>,
    {
        let mut hm = Self::new();
        hm.accumulate(points.into_iter().map(|p| grid.cell_of(&p)));
        hm
    }

    /// Clears the heatmap and refills it from a pre-rasterized cell
    /// sequence, reusing the existing buffer — the zero-allocation twin
    /// of [`Heatmap::from_trace`] for scratch-arena hot loops (the cell
    /// sequence typically comes from a
    /// [`TraceRaster`](crate::TraceRaster)).
    ///
    /// The result is identical to building a fresh heatmap from the same
    /// cells: counts are whole numbers, so accumulation order cannot
    /// change the stored values.
    pub fn rebuild_from_cells(&mut self, cells: &[CellId]) {
        self.keys.clear();
        self.weights.clear();
        self.total = 0.0;
        self.accumulate(cells.iter().copied());
    }

    /// Largest dense count table [`Heatmap::accumulate`] will allocate
    /// (bins = grid extent actually touched). 64Ki bins cover a
    /// 256×256 grid — far beyond the paper's city-scale grids — at a
    /// worst-case 512 KiB per scratch arena; larger extents fall back
    /// to the sort path.
    const DENSE_BINS_MAX: u64 = 1 << 16;

    /// Accumulates a cell sequence into the empty map: collapse
    /// consecutive runs (dwells make them common), then count runs into
    /// a dense per-cell table and emit the touched bins in row-major
    /// order (equals ascending [`CellId`] order). Grids too large for
    /// the table take a sort-and-merge fallback over the packed runs.
    ///
    /// Either path stores exactly what the original
    /// collapse → stable-sort → merge produced: counts are whole
    /// numbers, so no regrouping of the additions can change a stored
    /// value, and both emit orders are ascending cell order.
    fn accumulate<I: Iterator<Item = CellId>>(&mut self, cells: I) {
        debug_assert!(self.keys.is_empty());
        let runs = &mut self.scratch.runs;
        runs.clear();
        let (mut max_row, mut max_col) = (0u32, 0u32);
        for c in cells {
            self.total += 1.0;
            max_row = max_row.max(c.row);
            max_col = max_col.max(c.col);
            let key = pack_cell(c);
            if let Some(last) = runs.last_mut() {
                if last.0 == key {
                    last.1 += 1.0;
                    continue;
                }
            }
            runs.push((key, 1.0));
        }
        if runs.is_empty() {
            return;
        }
        let stride = u64::from(max_col) + 1;
        let size = (u64::from(max_row) + 1) * stride;
        if size <= Self::DENSE_BINS_MAX {
            // Counting path: counts ≥ 1, so a zero bin means untouched.
            let bins = &mut self.scratch.bins;
            if bins.len() < size as usize {
                bins.resize(size as usize, 0.0);
            }
            let touched = &mut self.scratch.touched;
            touched.clear();
            for &(key, count) in runs.iter() {
                let idx = ((key >> 32) * stride + (key & 0xffff_ffff)) as usize;
                if bins[idx] == 0.0 {
                    touched.push(idx as u32);
                }
                bins[idx] += count;
            }
            touched.sort_unstable();
            self.keys.reserve(touched.len());
            self.weights.reserve(touched.len());
            for &idx in touched.iter() {
                self.keys.push(CellId {
                    row: (u64::from(idx) / stride) as u32,
                    col: (u64::from(idx) % stride) as u32,
                });
                self.weights.push(std::mem::take(&mut bins[idx as usize]));
            }
        } else {
            runs.sort_unstable_by_key(|r| r.0);
            self.keys.reserve(runs.len());
            self.weights.reserve(runs.len());
            let mut last_key: Option<u64> = None;
            for &(key, count) in runs.iter() {
                if last_key == Some(key) {
                    *self.weights.last_mut().expect("keys and weights align") += count;
                } else {
                    self.keys.push(unpack_cell(key));
                    self.weights.push(count);
                    last_key = Some(key);
                }
            }
        }
    }

    /// Adds `weight` mass to `cell`.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is negative or not finite.
    pub fn add(&mut self, cell: CellId, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative"
        );
        match self.keys.binary_search(&cell) {
            Ok(i) => self.weights[i] += weight,
            Err(i) => {
                self.keys.insert(i, cell);
                self.weights.insert(i, weight);
            }
        }
        self.total += weight;
    }

    /// The distinct cells, sorted ascending (row-major).
    pub fn keys(&self) -> &[CellId] {
        &self.keys
    }

    /// The per-cell counts, parallel to [`Heatmap::keys`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The raw per-cell counts as `(cell, count)` pairs, sorted by cell.
    pub fn cell_entries(&self) -> impl Iterator<Item = (CellId, f64)> + '_ {
        self.keys.iter().copied().zip(self.weights.iter().copied())
    }

    /// Total mass (= number of records for trace-built heatmaps).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of distinct non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the heatmap holds no mass.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Raw count of `cell` (0 when absent).
    pub fn count(&self, cell: CellId) -> f64 {
        self.keys
            .binary_search(&cell)
            .map_or(0.0, |i| self.weights[i])
    }

    /// Probability mass of `cell` (0 when absent or the map is empty).
    pub fn probability(&self, cell: CellId) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        self.count(cell) / self.total
    }

    /// The `k` hottest cells with their counts, descending; ties broken by
    /// cell order so the result is deterministic.
    pub fn top_cells(&self, k: usize) -> Vec<(CellId, f64)> {
        let mut v: Vec<(CellId, f64)> = self.cell_entries().collect();
        Self::rank(&mut v);
        v.truncate(k);
        v
    }

    /// All cells sorted hottest-first (the full ranking HMC's
    /// rank-matching uses).
    pub fn ranked_cells(&self) -> Vec<(CellId, f64)> {
        self.top_cells(self.keys.len())
    }

    /// Writes the full hottest-first ranking into `out` (cleared first),
    /// reusing its buffer — the scratch twin of
    /// [`Heatmap::ranked_cells`].
    pub fn ranked_cells_into(&self, out: &mut Vec<(CellId, f64)>) {
        out.clear();
        out.extend(self.cell_entries());
        Self::rank(out);
    }

    fn rank(v: &mut [(CellId, f64)]) {
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    }

    /// Topsoe divergence to `other` (see [`divergence::topsoe_sorted`]);
    /// `None` when either heatmap is empty. This is AP-Attack's profile
    /// distance. Uses the maintained totals — no re-summation; every
    /// `Heatmap` comparison sources totals the same way, so the
    /// pruned/unpruned paths stay bit-consistent.
    pub fn topsoe(&self, other: &Heatmap) -> Option<f64> {
        self.topsoe_bounded(other, f64::INFINITY)
    }

    /// [`Heatmap::topsoe`] with best-bound pruning: returns `None` as
    /// soon as the partial sum provably exceeds `bound` (see
    /// [`divergence::topsoe_sorted_bounded`]). A returned score is
    /// bit-identical to the unpruned [`Heatmap::topsoe`].
    pub fn topsoe_bounded(&self, other: &Heatmap, bound: f64) -> Option<f64> {
        divergence::topsoe_soa_bounded(
            &self.keys,
            &self.weights,
            self.total,
            &other.keys,
            &other.weights,
            other.total,
            bound,
        )
    }

    /// Element-wise sum of two heatmaps (used to pool background
    /// knowledge).
    pub fn merged(&self, other: &Heatmap) -> Heatmap {
        let cap = self.keys.len() + other.keys.len();
        let mut keys = Vec::with_capacity(cap);
        let mut weights = Vec::with_capacity(cap);
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => {
                    keys.push(self.keys[i]);
                    weights.push(self.weights[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    keys.push(other.keys[j]);
                    weights.push(other.weights[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    keys.push(self.keys[i]);
                    weights.push(self.weights[i] + other.weights[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        keys.extend_from_slice(&self.keys[i..]);
        weights.extend_from_slice(&self.weights[i..]);
        keys.extend_from_slice(&other.keys[j..]);
        weights.extend_from_slice(&other.weights[j..]);
        Heatmap {
            keys,
            weights,
            total: self.total + other.total,
            scratch: RebuildScratch::default(),
        }
    }
}

/// Packs a cell into a row-major `u64` key: `row` in the high half,
/// `col` in the low half, so `u64` order equals [`CellId`] order.
fn pack_cell(c: CellId) -> u64 {
    (u64::from(c.row) << 32) | u64::from(c.col)
}

fn unpack_cell(key: u64) -> CellId {
    CellId {
        row: (key >> 32) as u32,
        col: key as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::BoundingBox;
    use mood_trace::{Record, Timestamp, UserId};

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3).unwrap(), 800.0).unwrap()
    }

    fn trace_at(points: &[(f64, f64)]) -> Trace {
        let records: Vec<Record> = points
            .iter()
            .enumerate()
            .map(|(i, &(lat, lng))| {
                Record::new(
                    GeoPoint::new(lat, lng).unwrap(),
                    Timestamp::from_unix(i as i64 * 60),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn from_trace_counts_every_record() {
        let t = trace_at(&[(46.15, 6.05), (46.15, 6.05), (46.25, 6.25)]);
        let hm = Heatmap::from_trace(&grid(), &t);
        assert_eq!(hm.total(), 3.0);
        assert_eq!(hm.cell_count(), 2);
    }

    #[test]
    fn out_of_box_points_are_clamped_not_dropped() {
        let t = trace_at(&[(46.15, 6.05), (50.0, 10.0)]);
        let hm = Heatmap::from_trace(&grid(), &t);
        assert_eq!(hm.total(), 2.0);
    }

    #[test]
    fn probability_normalizes() {
        let g = grid();
        let t = trace_at(&[(46.15, 6.05), (46.15, 6.05), (46.25, 6.25), (46.25, 6.25)]);
        let hm = Heatmap::from_trace(&g, &t);
        let c = g.cell_of(&GeoPoint::new(46.15, 6.05).unwrap());
        assert!((hm.probability(c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_heatmap_behaviour() {
        let hm = Heatmap::new();
        assert!(hm.is_empty());
        assert_eq!(hm.cell_count(), 0);
        assert_eq!(hm.probability(CellId { row: 0, col: 0 }), 0.0);
        assert!(hm.topsoe(&hm).is_none());
    }

    #[test]
    fn add_accumulates() {
        let mut hm = Heatmap::new();
        let c = CellId { row: 1, col: 2 };
        hm.add(c, 2.0);
        hm.add(c, 3.0);
        assert_eq!(hm.total(), 5.0);
        assert_eq!(hm.count(c), 5.0);
    }

    #[test]
    #[should_panic(expected = "weight must be non-negative")]
    fn add_rejects_negative() {
        Heatmap::new().add(CellId { row: 0, col: 0 }, -1.0);
    }

    #[test]
    fn cells_are_sorted_and_unique() {
        let mut hm = Heatmap::new();
        for c in [5u32, 1, 3, 1, 5, 2] {
            hm.add(CellId { row: c, col: 0 }, 1.0);
        }
        assert_eq!(hm.keys().len(), 4);
        assert_eq!(hm.keys().len(), hm.weights().len());
        assert!(hm.keys().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(hm.count(CellId { row: 1, col: 0 }), 2.0);
        assert_eq!(hm.cell_entries().count(), 4);
    }

    #[test]
    fn rebuild_from_cells_matches_fresh_build() {
        let g = grid();
        let t = trace_at(&[
            (46.15, 6.05),
            (46.15, 6.05),
            (46.25, 6.25),
            (46.15, 6.05),
            (46.22, 6.12),
        ]);
        let fresh = Heatmap::from_trace(&g, &t);
        let cells: Vec<CellId> = t.records().iter().map(|r| g.cell_of(&r.point())).collect();
        let mut reused = Heatmap::new();
        // fill with junk first: rebuild must fully replace it
        reused.add(CellId { row: 9, col: 9 }, 42.0);
        reused.rebuild_from_cells(&cells);
        assert_eq!(reused, fresh);
        // and again, exercising the warmed buffer
        reused.rebuild_from_cells(&cells);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn dense_and_sorted_accumulate_paths_agree() {
        // Cells beyond the dense-table extent force the sort fallback;
        // the same sequence shifted into a small extent takes the
        // counting path. Both must produce identical counts.
        let seq: Vec<u32> = vec![5, 5, 1, 3, 1, 5, 2, 2, 2, 0, 3];
        let small: Vec<CellId> = seq.iter().map(|&r| CellId { row: r, col: r }).collect();
        let large: Vec<CellId> = seq
            .iter()
            .map(|&r| CellId {
                row: r + 500_000,
                col: r + 500_000,
            })
            .collect();
        let mut hm_small = Heatmap::new();
        hm_small.rebuild_from_cells(&small);
        let mut hm_large = Heatmap::new();
        hm_large.rebuild_from_cells(&large);
        assert_eq!(hm_small.total(), hm_large.total());
        assert_eq!(hm_small.cell_count(), hm_large.cell_count());
        for ((ks, ws), (kl, wl)) in hm_small.cell_entries().zip(hm_large.cell_entries()) {
            assert_eq!(ks.row + 500_000, kl.row);
            assert_eq!(ws.to_bits(), wl.to_bits());
        }
        // and each agrees with the incremental reference
        let mut by_add = Heatmap::new();
        for &c in &small {
            by_add.add(c, 1.0);
        }
        assert_eq!(hm_small, by_add);
    }

    #[test]
    fn scratch_buffers_are_invisible_to_equality() {
        let cells = [CellId { row: 1, col: 2 }, CellId { row: 1, col: 2 }];
        let mut rebuilt = Heatmap::new();
        rebuilt.rebuild_from_cells(&cells);
        let mut fresh = Heatmap::new();
        fresh.add(CellId { row: 1, col: 2 }, 2.0);
        // rebuilt carries warm scratch buffers, fresh does not
        assert_eq!(rebuilt, fresh);
    }

    #[test]
    fn top_cells_descending_deterministic() {
        let mut hm = Heatmap::new();
        hm.add(CellId { row: 0, col: 0 }, 5.0);
        hm.add(CellId { row: 1, col: 1 }, 10.0);
        hm.add(CellId { row: 2, col: 2 }, 5.0);
        let top = hm.top_cells(3);
        assert_eq!(top[0].0, CellId { row: 1, col: 1 });
        // tie between (0,0) and (2,2) broken by cell order
        assert_eq!(top[1].0, CellId { row: 0, col: 0 });
        assert_eq!(top[2].0, CellId { row: 2, col: 2 });
        let mut ranked = vec![(CellId { row: 7, col: 7 }, 1.0)];
        hm.ranked_cells_into(&mut ranked);
        assert_eq!(ranked, hm.ranked_cells());
    }

    #[test]
    fn topsoe_zero_for_identical_profiles() {
        let t = trace_at(&[(46.15, 6.05), (46.25, 6.25)]);
        let hm = Heatmap::from_trace(&grid(), &t);
        assert_eq!(hm.topsoe(&hm), Some(0.0));
    }

    #[test]
    fn topsoe_max_for_disjoint_profiles() {
        let a = Heatmap::from_trace(&grid(), &trace_at(&[(46.15, 6.05)]));
        let b = Heatmap::from_trace(&grid(), &trace_at(&[(46.25, 6.25)]));
        let d = a.topsoe(&b).unwrap();
        assert!((d - 2.0 * divergence::LN_2).abs() < 1e-12);
    }

    #[test]
    fn topsoe_smaller_for_similar_profiles() {
        let a = trace_at(&[(46.15, 6.05), (46.15, 6.05), (46.25, 6.25)]);
        let b = trace_at(&[(46.15, 6.05), (46.25, 6.25), (46.25, 6.25)]);
        let c = trace_at(&[(46.12, 6.27), (46.12, 6.27), (46.12, 6.27)]);
        let g = grid();
        let (ha, hb, hc) = (
            Heatmap::from_trace(&g, &a),
            Heatmap::from_trace(&g, &b),
            Heatmap::from_trace(&g, &c),
        );
        assert!(ha.topsoe(&hb).unwrap() < ha.topsoe(&hc).unwrap());
    }

    #[test]
    fn topsoe_bounded_agrees_with_full_or_prunes() {
        let g = grid();
        let a = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05), (46.25, 6.25)]));
        let b = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05), (46.12, 6.27)]));
        let full = a.topsoe(&b).unwrap();
        assert_eq!(a.topsoe_bounded(&b, f64::INFINITY), Some(full));
        // a bound below the true score must prune
        assert_eq!(a.topsoe_bounded(&b, full / 2.0), None);
    }

    #[test]
    fn merged_adds_mass() {
        let g = grid();
        let a = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05)]));
        let b = Heatmap::from_trace(&g, &trace_at(&[(46.15, 6.05), (46.25, 6.25)]));
        let m = a.merged(&b);
        assert_eq!(m.total(), 3.0);
        assert_eq!(m.cell_count(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let hm = Heatmap::from_trace(&grid(), &trace_at(&[(46.15, 6.05), (46.25, 6.25)]));
        let json = serde_json::to_string(&hm).unwrap();
        let back: Heatmap = serde_json::from_str(&json).unwrap();
        assert_eq!(hm, back);
    }
}
