//! A small exact cache of trace rasterizations: the grid cell-sequence
//! of a trace, computed once and reused by every consumer on the same
//! grid (AP-Attack's heatmap, HMC's run detection, future grid-based
//! attacks).
//!
//! Candidate scoring rasterizes the same trace repeatedly: the raw trace
//! is rasterized by the attack suite *and* by every HMC-first candidate
//! variant, all on the paper's shared 800 m grid. [`TraceRaster`] keeps
//! the last few `(grid, trace) → cells` results in per-worker scratch so
//! those repeats become slice reuse.
//!
//! **Exactness.** A cache hit is only taken after comparing the stored
//! trace records byte-for-byte (plus the grid parameters), never on a
//! fingerprint — a hit provably returns the very cells a fresh
//! rasterization would, so cached and uncached runs are bit-identical.
//! The comparison is cheaper than rasterizing (three `f64` equality
//! checks per record vs. projection arithmetic), so misses stay close to
//! the cost of the plain path.

use mood_geo::{CellId, Grid};
use mood_trace::{Record, Trace, UserId};

/// One cached rasterization. Buffers are recycled on eviction.
struct RasterEntry {
    grid: Grid,
    user: UserId,
    records: Vec<Record>,
    cells: Vec<CellId>,
}

/// An exact, fixed-capacity `(grid, trace) → cell-sequence` cache for
/// per-worker scratch arenas (see the module docs).
///
/// Not synchronized: each worker owns its own `TraceRaster`, per the
/// scratch-arena exclusivity contract (`AttackScratch` embeds one).
///
/// # Examples
///
/// ```
/// use mood_geo::{BoundingBox, GeoPoint, Grid};
/// use mood_models::TraceRaster;
/// use mood_trace::{Record, Timestamp, Trace, UserId};
///
/// let grid = Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3)?, 800.0)?;
/// let records: Vec<Record> = (0..4)
///     .map(|i| Record::new(GeoPoint::new(46.2, 6.1).unwrap(), Timestamp::from_unix(i * 60)))
///     .collect();
/// let trace = Trace::new(UserId::new(1), records)?;
///
/// let mut raster = TraceRaster::new();
/// let first = raster.cells(&grid, &trace).to_vec();
/// let again = raster.cells(&grid, &trace).to_vec();
/// assert_eq!(first, again);
/// assert_eq!(raster.hits(), 1);
/// assert_eq!(raster.misses(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Default)]
pub struct TraceRaster {
    entries: Vec<RasterEntry>,
    next_evict: usize,
    hits: u64,
    misses: u64,
}

impl TraceRaster {
    /// How many rasterizations are kept. Sized for the engine's regime:
    /// the raw trace plus the last few intermediate candidates stay
    /// resident while a worker walks one user's variants.
    pub const CAPACITY: usize = 4;

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cell-sequence of `trace` over `grid` — one cell per record,
    /// in record order. Served from cache when this exact `(grid,
    /// trace)` pair was rasterized recently (verified by full record
    /// comparison), computed and cached otherwise.
    pub fn cells(&mut self, grid: &Grid, trace: &Trace) -> &[CellId] {
        let found = self.entries.iter().position(|e| {
            e.user == trace.user()
                && e.records.len() == trace.len()
                && e.grid == *grid
                && e.records.as_slice() == trace.records()
        });
        if let Some(i) = found {
            self.hits += 1;
            return &self.entries[i].cells;
        }
        self.misses += 1;
        let slot = if self.entries.len() < Self::CAPACITY {
            self.entries.push(RasterEntry {
                grid: grid.clone(),
                user: trace.user(),
                records: Vec::new(),
                cells: Vec::new(),
            });
            self.entries.len() - 1
        } else {
            let slot = self.next_evict;
            self.next_evict = (self.next_evict + 1) % Self::CAPACITY;
            let entry = &mut self.entries[slot];
            entry.grid = grid.clone();
            entry.user = trace.user();
            slot
        };
        let entry = &mut self.entries[slot];
        entry.records.clear();
        entry.records.extend_from_slice(trace.records());
        entry.cells.clear();
        entry
            .cells
            .extend(trace.records().iter().map(|r| grid.cell_of(&r.point())));
        &entry.cells
    }

    /// Cache hits so far (rasterizations served from a stored entry).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (fresh rasterizations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drains the hit/miss counters (for aggregation into shared
    /// metrics) and returns `(hits, misses)`.
    pub fn take_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }

    /// `true` once the cache holds at least one warmed-up entry.
    pub fn is_warm(&self) -> bool {
        !self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::{BoundingBox, GeoPoint};
    use mood_trace::Timestamp;

    fn grid(cell_m: f64) -> Grid {
        Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3).unwrap(), cell_m).unwrap()
    }

    fn trace(user: u64, lat0: f64, n: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    GeoPoint::new(lat0 + i as f64 * 0.001, 6.1).unwrap(),
                    Timestamp::from_unix(i * 600),
                )
            })
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    #[test]
    fn cached_cells_match_fresh_rasterization() {
        let g = grid(800.0);
        let t = trace(1, 46.15, 30);
        let expected: Vec<CellId> = t.records().iter().map(|r| g.cell_of(&r.point())).collect();
        let mut raster = TraceRaster::new();
        assert!(!raster.is_warm());
        assert_eq!(raster.cells(&g, &t), expected.as_slice());
        assert_eq!(raster.cells(&g, &t), expected.as_slice());
        assert!(raster.is_warm());
        assert_eq!((raster.hits(), raster.misses()), (1, 1));
    }

    #[test]
    fn different_grid_same_trace_is_a_miss() {
        let (g800, g400) = (grid(800.0), grid(400.0));
        let t = trace(1, 46.15, 10);
        let mut raster = TraceRaster::new();
        let coarse = raster.cells(&g800, &t).to_vec();
        let fine = raster.cells(&g400, &t).to_vec();
        assert_eq!(raster.misses(), 2);
        assert_ne!(coarse, fine);
        // both entries stay resident
        raster.cells(&g800, &t);
        raster.cells(&g400, &t);
        assert_eq!(raster.hits(), 2);
    }

    #[test]
    fn same_shape_different_records_is_a_miss() {
        let g = grid(800.0);
        let a = trace(1, 46.15, 10);
        let b = trace(1, 46.25, 10); // same user, same length, other cells
        let mut raster = TraceRaster::new();
        let ca = raster.cells(&g, &a).to_vec();
        let cb = raster.cells(&g, &b).to_vec();
        assert_ne!(ca, cb);
        assert_eq!(raster.misses(), 2);
        assert_eq!(raster.hits(), 0);
    }

    #[test]
    fn eviction_recycles_and_stays_exact() {
        let g = grid(800.0);
        let traces: Vec<Trace> = (0..TraceRaster::CAPACITY as u64 + 2)
            .map(|u| trace(u + 1, 46.15 + u as f64 * 0.01, 8))
            .collect();
        let mut raster = TraceRaster::new();
        for _round in 0..3 {
            for t in &traces {
                let expected: Vec<CellId> =
                    t.records().iter().map(|r| g.cell_of(&r.point())).collect();
                assert_eq!(raster.cells(&g, t), expected.as_slice());
            }
        }
        assert!(raster.misses() > 0);
        let (h, m) = raster.take_counters();
        assert_eq!(h + m, 3 * traces.len() as u64);
        assert_eq!((raster.hits(), raster.misses()), (0, 0));
    }
}
