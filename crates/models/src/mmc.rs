use serde::{Deserialize, Serialize};

use crate::{Poi, PoiProfile};

/// A Mobility Markov Chain (Gambs et al., the paper's \[16\] and Fig. 1):
/// states are a user's POIs ordered by weight, edges carry the empirical
/// probability of moving from one POI to the next.
///
/// PIT-Attack compares chains through their **stationary distributions**
/// and the geography of their top-ranked states; both are exposed here.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::{Record, Timestamp, Trace, UserId};
/// use mood_models::{MarkovChain, PoiExtractor};
///
/// // build a trace that alternates 2 h blocks between two places
/// let mut records = Vec::new();
/// for block in 0..6 {
///     let (lat, lng) = if block % 2 == 0 { (46.20, 6.10) } else { (46.25, 6.18) };
///     for i in 0..12i64 {
///         records.push(Record::new(
///             GeoPoint::new(lat, lng).unwrap(),
///             Timestamp::from_unix(block * 7200 + i * 600),
///         ));
///     }
/// }
/// let trace = Trace::new(UserId::new(1), records)?;
/// let profile = PoiExtractor::paper_default().extract_profile(&trace);
/// let mmc = MarkovChain::from_profile(&profile);
/// assert_eq!(mmc.state_count(), 2);
/// // alternation means each state transitions to the other
/// assert!(mmc.transition(0, 1) > 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MarkovChain {
    states: Vec<Poi>,
    /// Row-stochastic transition matrix, row-major; rows without observed
    /// transitions fall back to the uniform distribution.
    transitions: Vec<f64>,
    stationary: Vec<f64>,
}

/// Damping used in the stationary-distribution power iteration; the small
/// uniform restart guarantees convergence on reducible chains (users whose
/// POI graph is not strongly connected).
const DAMPING: f64 = 0.95;
const POWER_ITERATIONS: usize = 200;
const CONVERGENCE_L1: f64 = 1e-12;

impl MarkovChain {
    /// Builds the chain of a POI profile: one state per POI, transition
    /// counts from consecutive stays.
    ///
    /// Profiles with no POIs yield an empty chain
    /// ([`MarkovChain::state_count`] = 0) — attacks treat those users as
    /// unmatchable.
    pub fn from_profile(profile: &PoiProfile) -> Self {
        let mut chain = Self::default();
        chain.rebuild_from_profile(profile);
        chain
    }

    /// Clears the chain and refills it from `profile`, reusing the
    /// state/transition/stationary buffers — the scratch twin of
    /// [`MarkovChain::from_profile`] with identical results.
    pub fn rebuild_from_profile(&mut self, profile: &PoiProfile) {
        self.states.clear();
        self.transitions.clear();
        self.stationary.clear();
        let n = profile.len();
        if n == 0 {
            return;
        }
        self.states.extend_from_slice(profile.pois());
        // Accumulate raw counts in the transition buffer, then normalize
        // each row in place (identical numerics to a separate count
        // matrix: every entry is count/total).
        self.transitions.resize(n * n, 0.0);
        for pair in profile.stay_assignment().windows(2) {
            self.transitions[pair[0] * n + pair[1]] += 1.0;
        }
        for i in 0..n {
            let row = &mut self.transitions[i * n..(i + 1) * n];
            let total: f64 = row.iter().sum();
            if total > 0.0 {
                for v in row.iter_mut() {
                    *v /= total;
                }
            } else {
                // dangling state: uniform over all states
                row.fill(1.0 / n as f64);
            }
        }
        Self::power_iteration(&self.transitions, n, &mut self.stationary);
    }

    fn power_iteration(transitions: &[f64], n: usize, x: &mut Vec<f64>) {
        let uniform = 1.0 / n as f64;
        x.clear();
        x.resize(n, uniform);
        let mut next = vec![0.0f64; n];
        for _ in 0..POWER_ITERATIONS {
            for v in next.iter_mut() {
                *v = (1.0 - DAMPING) * uniform;
            }
            for i in 0..n {
                let xi = x[i] * DAMPING;
                if xi == 0.0 {
                    continue;
                }
                for j in 0..n {
                    next[j] += xi * transitions[i * n + j];
                }
            }
            let l1: f64 = x.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(x, &mut next);
            if l1 < CONVERGENCE_L1 {
                break;
            }
        }
    }

    /// Number of states (POIs).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// `true` when the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The POIs backing the states, ordered by descending weight.
    pub fn states(&self) -> &[Poi] {
        &self.states
    }

    /// Probability of moving from state `i` to state `j`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn transition(&self, i: usize, j: usize) -> f64 {
        let n = self.states.len();
        assert!(i < n && j < n, "state index out of range");
        self.transitions[i * n + j]
    }

    /// The stationary distribution π (π = πP), computed by damped power
    /// iteration; empty for an empty chain.
    pub fn stationary(&self) -> &[f64] {
        &self.stationary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PoiProfile, Stay};
    use mood_geo::GeoPoint;
    use mood_trace::Timestamp;

    fn stay(lat: f64, lng: f64, idx: i64, records: usize) -> Stay {
        Stay {
            centroid: GeoPoint::new(lat, lng).unwrap(),
            start: Timestamp::from_unix(idx * 10_000),
            end: Timestamp::from_unix(idx * 10_000 + 3600),
            record_count: records,
        }
    }

    /// home -> work -> home -> work -> home (home is heaviest)
    fn commuter_profile() -> PoiProfile {
        let stays = vec![
            stay(46.20, 6.10, 0, 50),
            stay(46.25, 6.18, 1, 30),
            stay(46.20, 6.10, 2, 50),
            stay(46.25, 6.18, 3, 30),
            stay(46.20, 6.10, 4, 50),
        ];
        PoiProfile::from_stays(&stays, 200.0)
    }

    #[test]
    fn builds_two_state_chain() {
        let mmc = MarkovChain::from_profile(&commuter_profile());
        assert_eq!(mmc.state_count(), 2);
        // state 0 = home (150 records), state 1 = work (60)
        assert_eq!(mmc.states()[0].record_count, 150);
        assert_eq!(mmc.states()[1].record_count, 60);
    }

    #[test]
    fn transitions_are_row_stochastic() {
        let mmc = MarkovChain::from_profile(&commuter_profile());
        for i in 0..mmc.state_count() {
            let row_sum: f64 = (0..mmc.state_count()).map(|j| mmc.transition(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-9, "row {i} sums to {row_sum}");
        }
    }

    #[test]
    fn alternating_stays_give_cross_transitions() {
        let mmc = MarkovChain::from_profile(&commuter_profile());
        assert!(mmc.transition(0, 1) > 0.99);
        assert!(mmc.transition(1, 0) > 0.99);
    }

    #[test]
    fn stationary_sums_to_one_and_is_fixed_point() {
        let mmc = MarkovChain::from_profile(&commuter_profile());
        let pi = mmc.stationary();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // alternating two-state chain -> both states equally likely
        assert!((pi[0] - 0.5).abs() < 0.03, "pi = {pi:?}");
    }

    #[test]
    fn dangling_state_gets_uniform_row() {
        // single visit to each of two places: transition 0->1 observed,
        // nothing out of 1
        let stays = vec![stay(46.20, 6.10, 0, 50), stay(46.25, 6.18, 1, 30)];
        let profile = PoiProfile::from_stays(&stays, 200.0);
        let mmc = MarkovChain::from_profile(&profile);
        assert!((mmc.transition(1, 0) - 0.5).abs() < 1e-9);
        assert!((mmc.transition(1, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_gives_empty_chain() {
        let profile = PoiProfile::from_stays(&[], 200.0);
        let mmc = MarkovChain::from_profile(&profile);
        assert!(mmc.is_empty());
        assert_eq!(mmc.state_count(), 0);
        assert!(mmc.stationary().is_empty());
    }

    #[test]
    fn single_state_chain() {
        let stays = vec![stay(46.20, 6.10, 0, 10), stay(46.20, 6.10, 1, 10)];
        let profile = PoiProfile::from_stays(&stays, 200.0);
        let mmc = MarkovChain::from_profile(&profile);
        assert_eq!(mmc.state_count(), 1);
        assert!((mmc.transition(0, 0) - 1.0).abs() < 1e-9);
        assert!((mmc.stationary()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "state index out of range")]
    fn transition_index_checked() {
        let mmc = MarkovChain::from_profile(&commuter_profile());
        mmc.transition(0, 99);
    }

    #[test]
    fn heavier_state_dominates_stationary() {
        // home visited twice as often as each of two other places:
        // home -> a -> home -> b -> home ...
        let stays = vec![
            stay(46.20, 6.10, 0, 10),
            stay(46.25, 6.18, 1, 10),
            stay(46.20, 6.10, 2, 10),
            stay(46.15, 6.05, 3, 10),
            stay(46.20, 6.10, 4, 10),
            stay(46.25, 6.18, 5, 10),
            stay(46.20, 6.10, 6, 10),
            stay(46.15, 6.05, 7, 10),
        ];
        let profile = PoiProfile::from_stays(&stays, 200.0);
        let mmc = MarkovChain::from_profile(&profile);
        assert_eq!(mmc.state_count(), 3);
        let pi = mmc.stationary();
        assert!(pi[0] > pi[1] && pi[0] > pi[2], "pi = {pi:?}");
    }

    #[test]
    fn serde_roundtrip() {
        let mmc = MarkovChain::from_profile(&commuter_profile());
        let json = serde_json::to_string(&mmc).unwrap();
        let back: MarkovChain = serde_json::from_str(&json).unwrap();
        assert_eq!(mmc, back);
    }

    #[test]
    fn rebuild_reuses_buffers_with_identical_results() {
        let big = commuter_profile();
        let small = PoiProfile::from_stays(&[stay(46.20, 6.10, 0, 10)], 200.0);
        let empty = PoiProfile::from_stays(&[], 200.0);
        let mut chain = MarkovChain::default();
        // cycle through shrinking and growing profiles on one buffer set
        for profile in [&big, &small, &empty, &big] {
            chain.rebuild_from_profile(profile);
            assert_eq!(chain, MarkovChain::from_profile(profile));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{PoiProfile, Stay};
    use mood_geo::GeoPoint;
    use mood_trace::Timestamp;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stationary_always_a_distribution(seq in proptest::collection::vec(0usize..5, 2..40)) {
            // place k at latitude 46 + k*0.01
            let stays: Vec<Stay> = seq
                .iter()
                .enumerate()
                .map(|(i, &k)| Stay {
                    centroid: GeoPoint::new(46.0 + k as f64 * 0.01, 6.0).unwrap(),
                    start: Timestamp::from_unix(i as i64 * 10_000),
                    end: Timestamp::from_unix(i as i64 * 10_000 + 3600),
                    record_count: 5,
                })
                .collect();
            let profile = PoiProfile::from_stays(&stays, 200.0);
            let mmc = MarkovChain::from_profile(&profile);
            let pi = mmc.stationary();
            let sum: f64 = pi.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            for &p in pi {
                prop_assert!(p >= 0.0);
            }
            // rows stochastic
            for i in 0..mmc.state_count() {
                let row: f64 = (0..mmc.state_count()).map(|j| mmc.transition(i, j)).sum();
                prop_assert!((row - 1.0).abs() < 1e-9);
            }
        }
    }
}
