use serde::{Deserialize, Serialize};

use mood_geo::{GeoPoint, EARTH_RADIUS_M};
use mood_trace::{TimeDelta, Timestamp, Trace};

/// Branch-exact fast form of `a.approx_distance(b) <= radius` for the
/// per-record clustering loop, which otherwise pays one cosine (and one
/// square root) per record.
///
/// `approx_distance` is `R·√(dx² + dy²)` with `dx = Δlng_rad·cos(φ̄)`
/// and `dy = Δlat_rad`, where `φ̄` is the pair's mean latitude. Every
/// `φ̄` the loop can form lies inside the trace's latitude range (a
/// centroid of records is, and so is a mean with another record), so
/// `cos(φ̄)` is bracketed by `[cos_lo, cos_hi]` computed once per trace
/// from that range. Substituting the brackets gives squared-distance
/// bounds that are valid through every IEEE rounding step (multiplying
/// by a larger/smaller non-negative factor and rounding preserves
/// order), and the squared thresholds carry a 1e-9 relative safety
/// margin — orders of magnitude above both the accumulated rounding
/// error and the 1e-12 slack added to the brackets themselves. A fast
/// accept or reject therefore provably agrees with the exact
/// comparison; only the sliver between the margins (a fraction of a
/// percent of the radius for city-scale traces) evaluates
/// `approx_distance` itself. The decision is bit-for-bit the one the
/// plain comparison makes.
struct RadiusTest {
    radius: f64,
    accept2: f64,
    reject2: f64,
    cos_hi: f64,
    cos_lo: f64,
}

impl RadiusTest {
    fn for_trace(radius: f64, trace: &Trace) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in trace.records() {
            let lat = r.point().lat();
            lo = lo.min(lat);
            hi = hi.max(lat);
        }
        let (cos_hi, cos_lo) = if lo.is_finite() {
            let max_abs = lo.abs().max(hi.abs());
            let min_abs = if lo <= 0.0 && hi >= 0.0 {
                0.0
            } else {
                lo.abs().min(hi.abs())
            };
            (
                (min_abs.to_radians().cos() * (1.0 + 1e-12)).min(1.0),
                (max_abs.to_radians().cos() * (1.0 - 1e-12)).max(0.0),
            )
        } else {
            (1.0, 0.0)
        };
        let scaled = radius / EARTH_RADIUS_M;
        Self {
            radius,
            accept2: (scaled * (1.0 - 1e-9)).powi(2),
            reject2: (scaled * (1.0 + 1e-9)).powi(2),
            cos_hi,
            cos_lo,
        }
    }

    /// Whether `b` lies within the radius of the point `(a_lat, a_lng)`
    /// — exactly the decision `GeoPoint::new(a_lat, a_lng)?
    /// .approx_distance(b) <= radius` makes, but cosine-free outside
    /// the ambiguous sliver.
    #[inline]
    fn contains(&self, a_lat: f64, a_lng: f64, b: &GeoPoint) -> bool {
        let dy = (b.lat() - a_lat).to_radians();
        let dlng = (b.lng() - a_lng).to_radians();
        let dy2 = dy * dy;
        let dx_hi = dlng * self.cos_hi;
        if dx_hi * dx_hi + dy2 <= self.accept2 {
            return true;
        }
        let dx_lo = dlng * self.cos_lo;
        if dx_lo * dx_lo + dy2 > self.reject2 {
            return false;
        }
        let a = GeoPoint::new(a_lat, a_lng).expect("mean of valid coordinates is valid");
        a.approx_distance(b) <= self.radius
    }
}

/// A *stay*: one contiguous dwell of a user inside a small area.
///
/// Stays are the raw output of POI extraction; aggregating stays that fall
/// in the same place yields [`Poi`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stay {
    /// Centroid of the records forming the stay.
    pub centroid: GeoPoint,
    /// Time of the first record of the stay.
    pub start: Timestamp,
    /// Time of the last record of the stay.
    pub end: Timestamp,
    /// Number of records in the stay.
    pub record_count: usize,
}

impl Stay {
    /// Duration of the stay.
    pub fn dwell(&self) -> TimeDelta {
        self.end.since(self.start)
    }
}

/// A Point of Interest: a meaningful place aggregated from one or more
/// [`Stay`]s (home, workplace, gym, ...; paper §2.2 and Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Record-weighted centroid of the merged stays.
    pub centroid: GeoPoint,
    /// Total records across merged stays — the POI's *weight* in
    /// PIT-Attack's terms.
    pub record_count: usize,
    /// Number of distinct stays merged into this POI.
    pub visit_count: usize,
    /// Total dwell time across merged stays.
    pub total_dwell: TimeDelta,
}

/// Sequential spatio-temporal clustering of a trace into [`Stay`]s,
/// following the classic personal-gazetteer algorithm (Zhou et al. 2004,
/// the paper's \[36\]): records are scanned in time order; a record within
/// `diameter_m / 2` of the running cluster centroid extends the cluster,
/// anything else closes it. Clusters dwelling at least `min_dwell` become
/// stays.
///
/// The paper's attack configuration uses a 200 m diameter and a 1 h
/// minimum dwell ([`PoiExtractor::paper_default`], §4.1.1).
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::{Record, Timestamp, Trace, UserId};
/// use mood_models::PoiExtractor;
///
/// // two hours parked at one spot
/// let records: Vec<Record> = (0..12)
///     .map(|i| Record::new(
///         GeoPoint::new(46.2, 6.1).unwrap(),
///         Timestamp::from_unix(i * 600),
///     ))
///     .collect();
/// let trace = Trace::new(UserId::new(1), records)?;
/// let stays = PoiExtractor::paper_default().extract_stays(&trace);
/// assert_eq!(stays.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoiExtractor {
    diameter_m: f64,
    min_dwell: TimeDelta,
}

impl PoiExtractor {
    /// Creates an extractor with the given cluster diameter (meters) and
    /// minimum dwell time.
    ///
    /// # Panics
    ///
    /// Panics if `diameter_m` is not strictly positive and finite, or if
    /// `min_dwell` is not strictly positive — both are programming errors
    /// in experiment configuration.
    pub fn new(diameter_m: f64, min_dwell: TimeDelta) -> Self {
        assert!(
            diameter_m.is_finite() && diameter_m > 0.0,
            "diameter must be positive"
        );
        assert!(min_dwell.as_secs() > 0, "min dwell must be positive");
        Self {
            diameter_m,
            min_dwell,
        }
    }

    /// The paper's configuration: 200 m diameter, 1 h minimum dwell
    /// (§4.1.1).
    pub fn paper_default() -> Self {
        Self::new(200.0, TimeDelta::from_hours(1))
    }

    /// Cluster diameter in meters.
    pub fn diameter_m(&self) -> f64 {
        self.diameter_m
    }

    /// Minimum dwell for a cluster to qualify as a stay.
    pub fn min_dwell(&self) -> TimeDelta {
        self.min_dwell
    }

    /// Extracts the time-ordered stays of `trace`.
    pub fn extract_stays(&self, trace: &Trace) -> Vec<Stay> {
        let mut stays = Vec::new();
        self.extract_stays_into(trace, &mut stays);
        stays
    }

    /// Writes the time-ordered stays of `trace` into `stays`, replacing
    /// its previous contents — the buffer-reusing twin of
    /// [`PoiExtractor::extract_stays`] for scratch-arena hot loops. The
    /// result is identical to the allocating form.
    pub fn extract_stays_into(&self, trace: &Trace, stays: &mut Vec<Stay>) {
        stays.clear();
        let radius = RadiusTest::for_trace(self.diameter_m / 2.0, trace);

        // Running cluster state.
        let mut sum_lat = 0.0f64;
        let mut sum_lng = 0.0f64;
        let mut count = 0usize;
        let mut start = trace.start_time();
        let mut end = start;

        let centroid = |sum_lat: f64, sum_lng: f64, count: usize| {
            GeoPoint::new(sum_lat / count as f64, sum_lng / count as f64)
                .expect("mean of valid coordinates is valid")
        };

        let mut flush =
            |sum_lat: f64, sum_lng: f64, count: usize, start: Timestamp, end: Timestamp| {
                if count > 0 && end.since(start) >= self.min_dwell {
                    stays.push(Stay {
                        centroid: centroid(sum_lat, sum_lng, count),
                        start,
                        end,
                        record_count: count,
                    });
                }
            };

        for r in trace.records() {
            if count > 0 {
                if radius.contains(sum_lat / count as f64, sum_lng / count as f64, &r.point()) {
                    sum_lat += r.point().lat();
                    sum_lng += r.point().lng();
                    count += 1;
                    end = r.time();
                    continue;
                }
                flush(sum_lat, sum_lng, count, start, end);
            }
            sum_lat = r.point().lat();
            sum_lng = r.point().lng();
            count = 1;
            start = r.time();
            end = r.time();
        }
        flush(sum_lat, sum_lng, count, start, end);
    }

    /// Extracts stays and aggregates them into a [`PoiProfile`], merging
    /// stays whose centroids are within the cluster diameter.
    pub fn extract_profile(&self, trace: &Trace) -> PoiProfile {
        let stays = self.extract_stays(trace);
        PoiProfile::from_stays(&stays, self.diameter_m)
    }
}

/// A user's POI profile: aggregated POIs sorted by descending weight,
/// plus the stay → POI assignment needed to build Markov-chain
/// transitions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PoiProfile {
    pois: Vec<Poi>,
    /// For each input stay (in time order), the index of its POI in
    /// `pois`.
    stay_assignment: Vec<usize>,
}

impl PoiProfile {
    /// Aggregates time-ordered stays into POIs: a stay joins the first
    /// existing POI whose centroid lies within `merge_distance_m`,
    /// otherwise it founds a new POI. POIs are finally sorted by
    /// descending record count (PIT-Attack orders states this way),
    /// ties broken by earlier discovery.
    pub fn from_stays(stays: &[Stay], merge_distance_m: f64) -> Self {
        let mut profile = Self::default();
        profile.rebuild_from_stays(stays, merge_distance_m);
        profile
    }

    /// Clears the profile and refills it from `stays`, reusing the
    /// existing buffers — the scratch twin of [`PoiProfile::from_stays`]
    /// with identical results.
    pub fn rebuild_from_stays(&mut self, stays: &[Stay], merge_distance_m: f64) {
        struct Agg {
            sum_lat: f64,
            sum_lng: f64,
            records: usize,
            visits: usize,
            dwell: TimeDelta,
        }
        self.pois.clear();
        self.stay_assignment.clear();
        // The aggregation state is tiny (one entry per distinct place);
        // the per-record buffers above are the ones worth recycling.
        let mut aggs: Vec<Agg> = Vec::new();
        for stay in stays {
            let found = aggs.iter().position(|a| {
                let c = GeoPoint::new(a.sum_lat / a.records as f64, a.sum_lng / a.records as f64)
                    .expect("aggregate centroid valid");
                c.approx_distance(&stay.centroid) <= merge_distance_m
            });
            match found {
                Some(i) => {
                    let a = &mut aggs[i];
                    a.sum_lat += stay.centroid.lat() * stay.record_count as f64;
                    a.sum_lng += stay.centroid.lng() * stay.record_count as f64;
                    a.records += stay.record_count;
                    a.visits += 1;
                    a.dwell = a.dwell + stay.dwell();
                    self.stay_assignment.push(i);
                }
                None => {
                    aggs.push(Agg {
                        sum_lat: stay.centroid.lat() * stay.record_count as f64,
                        sum_lng: stay.centroid.lng() * stay.record_count as f64,
                        records: stay.record_count,
                        visits: 1,
                        dwell: stay.dwell(),
                    });
                    self.stay_assignment.push(aggs.len() - 1);
                }
            }
        }
        // Sort by descending record count, remembering the permutation so
        // stay assignments stay correct.
        let mut order: Vec<usize> = (0..aggs.len()).collect();
        order.sort_by(|&a, &b| aggs[b].records.cmp(&aggs[a].records).then(a.cmp(&b)));
        let mut rank = vec![0usize; aggs.len()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            rank[old_idx] = new_idx;
        }
        // Emitting in `order` produces the rank-sorted POI list directly.
        self.pois.extend(order.iter().map(|&old_idx| {
            let a = &aggs[old_idx];
            Poi {
                centroid: GeoPoint::new(a.sum_lat / a.records as f64, a.sum_lng / a.records as f64)
                    .expect("aggregate centroid valid"),
                record_count: a.records,
                visit_count: a.visits,
                total_dwell: a.dwell,
            }
        }));
        for a in &mut self.stay_assignment {
            *a = rank[*a];
        }
    }

    /// The POIs, sorted by descending record count.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// `true` when the profile has no POIs (short or erratic traces).
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// For each stay passed to [`PoiProfile::from_stays`] (in time
    /// order), the index of the POI it was merged into.
    pub fn stay_assignment(&self) -> &[usize] {
        &self.stay_assignment
    }

    /// Normalized POI weights (record-count share); sums to 1 when the
    /// profile is non-empty.
    pub fn weights(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.weights_into(&mut out);
        out
    }

    /// Writes the normalized POI weights into `out` (cleared first),
    /// reusing its buffer — the scratch twin of [`PoiProfile::weights`].
    pub fn weights_into(&self, out: &mut Vec<f64>) {
        out.clear();
        let total: usize = self.pois.iter().map(|p| p.record_count).sum();
        if total == 0 {
            return;
        }
        out.extend(
            self.pois
                .iter()
                .map(|p| p.record_count as f64 / total as f64),
        );
    }

    /// The `k` heaviest POIs (all of them when fewer exist).
    pub fn top(&self, k: usize) -> &[Poi] {
        &self.pois[..k.min(self.pois.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::{Record, UserId};

    fn pt(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(pt(lat, lng), Timestamp::from_unix(t))
    }

    /// Two hours home, commute, three hours at work, commute, home again.
    fn commuter_trace() -> Trace {
        let home = (46.2000, 6.1000);
        let work = (46.2300, 6.1500);
        let mut records = Vec::new();
        let mut t = 0i64;
        // 2 h at home, one record every 10 min
        for _ in 0..12 {
            records.push(rec(home.0, home.1, t));
            t += 600;
        }
        // 30 min commute, moving fast
        for i in 0..3 {
            let f = (i + 1) as f64 / 4.0;
            records.push(rec(
                home.0 + (work.0 - home.0) * f,
                home.1 + (work.1 - home.1) * f,
                t,
            ));
            t += 600;
        }
        // 3 h at work
        for _ in 0..18 {
            records.push(rec(work.0, work.1, t));
            t += 600;
        }
        // commute back
        for i in 0..3 {
            let f = 1.0 - (i + 1) as f64 / 4.0;
            records.push(rec(
                home.0 + (work.0 - home.0) * f,
                home.1 + (work.1 - home.1) * f,
                t,
            ));
            t += 600;
        }
        // 2 h home
        for _ in 0..12 {
            records.push(rec(home.0, home.1, t));
            t += 600;
        }
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn extracts_home_and_work_stays() {
        let stays = PoiExtractor::paper_default().extract_stays(&commuter_trace());
        assert_eq!(stays.len(), 3, "home, work, home");
        // stays are in time order
        assert!(stays[0].start < stays[1].start);
        assert!(stays[1].start < stays[2].start);
        // the middle stay is at work
        let work = pt(46.2300, 6.1500);
        assert!(stays[1].centroid.approx_distance(&work) < 100.0);
        assert!(stays[1].dwell() >= TimeDelta::from_hours(2));
    }

    #[test]
    fn short_dwell_is_not_a_stay() {
        // 30 min at one spot then movement
        let mut records = Vec::new();
        for i in 0..3 {
            records.push(rec(46.2, 6.1, i * 600));
        }
        for i in 0..10 {
            records.push(rec(46.2 + 0.01 * (i + 1) as f64, 6.1, 1800 + i * 600));
        }
        let t = Trace::new(UserId::new(1), records).unwrap();
        let stays = PoiExtractor::paper_default().extract_stays(&t);
        assert!(stays.is_empty(), "got {stays:?}");
    }

    #[test]
    fn constant_position_single_stay() {
        let records: Vec<Record> = (0..20).map(|i| rec(46.2, 6.1, i * 600)).collect();
        let t = Trace::new(UserId::new(1), records).unwrap();
        let stays = PoiExtractor::paper_default().extract_stays(&t);
        assert_eq!(stays.len(), 1);
        assert_eq!(stays[0].record_count, 20);
    }

    #[test]
    fn profile_merges_repeated_home_visits() {
        let profile = PoiExtractor::paper_default().extract_profile(&commuter_trace());
        assert_eq!(profile.len(), 2, "home and work");
        // home has 24 records across 2 visits, work 18 across 1
        assert_eq!(profile.pois()[0].record_count, 24);
        assert_eq!(profile.pois()[0].visit_count, 2);
        assert_eq!(profile.pois()[1].record_count, 18);
        // assignment maps stays [home, work, home] -> [0, 1, 0]
        assert_eq!(profile.stay_assignment(), &[0, 1, 0]);
    }

    #[test]
    fn profile_sorted_by_weight() {
        let profile = PoiExtractor::paper_default().extract_profile(&commuter_trace());
        let w = profile.weights();
        assert!(w[0] >= w[1]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_clamps() {
        let profile = PoiExtractor::paper_default().extract_profile(&commuter_trace());
        assert_eq!(profile.top(1).len(), 1);
        assert_eq!(profile.top(10).len(), 2);
    }

    #[test]
    fn empty_profile_from_moving_trace() {
        let records: Vec<Record> = (0..30)
            .map(|i| rec(46.0 + i as f64 * 0.01, 6.0, i * 600))
            .collect();
        let t = Trace::new(UserId::new(1), records).unwrap();
        let profile = PoiExtractor::paper_default().extract_profile(&t);
        assert!(profile.is_empty());
        assert!(profile.weights().is_empty());
    }

    #[test]
    #[should_panic(expected = "diameter must be positive")]
    fn rejects_bad_diameter() {
        PoiExtractor::new(0.0, TimeDelta::from_hours(1));
    }

    #[test]
    #[should_panic(expected = "min dwell must be positive")]
    fn rejects_bad_dwell() {
        PoiExtractor::new(200.0, TimeDelta::from_secs(0));
    }

    #[test]
    fn serde_roundtrip() {
        let profile = PoiExtractor::paper_default().extract_profile(&commuter_trace());
        let json = serde_json::to_string(&profile).unwrap();
        let back: PoiProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(profile, back);
    }

    #[test]
    fn scratch_paths_match_allocating_paths() {
        let e = PoiExtractor::paper_default();
        let trace = commuter_trace();
        let mut stays = vec![Stay {
            centroid: pt(0.0, 0.0),
            start: Timestamp::from_unix(0),
            end: Timestamp::from_unix(0),
            record_count: 99,
        }];
        // stale contents are fully replaced
        e.extract_stays_into(&trace, &mut stays);
        assert_eq!(stays, e.extract_stays(&trace));

        let mut profile = PoiProfile::default();
        profile.rebuild_from_stays(&stays, e.diameter_m());
        assert_eq!(profile, e.extract_profile(&trace));
        // rebuild on a warm buffer, including shrinking to empty
        profile.rebuild_from_stays(&[], e.diameter_m());
        assert!(profile.is_empty());
        profile.rebuild_from_stays(&stays, e.diameter_m());
        assert_eq!(profile, e.extract_profile(&trace));

        let mut weights = vec![9.0; 4];
        profile.weights_into(&mut weights);
        assert_eq!(weights, profile.weights());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mood_trace::{Record, UserId};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stays_are_time_ordered_and_counted(
            jitters in proptest::collection::vec((-5e-4f64..5e-4, -5e-4f64..5e-4), 20..120),
        ) {
            let records: Vec<Record> = jitters
                .iter()
                .enumerate()
                .map(|(i, (dlat, dlng))| {
                    Record::new(
                        GeoPoint::new(46.2 + dlat, 6.1 + dlng).unwrap(),
                        Timestamp::from_unix(i as i64 * 600),
                    )
                })
                .collect();
            let n = records.len();
            let trace = Trace::new(UserId::new(1), records).unwrap();
            let stays = PoiExtractor::paper_default().extract_stays(&trace);
            let mut last_start = None;
            let mut total = 0usize;
            for s in &stays {
                if let Some(prev) = last_start {
                    prop_assert!(s.start >= prev);
                }
                last_start = Some(s.start);
                prop_assert!(s.dwell() >= TimeDelta::from_hours(1));
                total += s.record_count;
            }
            prop_assert!(total <= n);
        }

        #[test]
        fn profile_weight_sums_to_one_when_nonempty(
            n_stays in 1usize..10,
        ) {
            let stays: Vec<Stay> = (0..n_stays)
                .map(|i| Stay {
                    centroid: GeoPoint::new(46.0 + i as f64 * 0.01, 6.0).unwrap(),
                    start: Timestamp::from_unix(i as i64 * 10_000),
                    end: Timestamp::from_unix(i as i64 * 10_000 + 3600),
                    record_count: i + 1,
                })
                .collect();
            let profile = PoiProfile::from_stays(&stays, 200.0);
            let sum: f64 = profile.weights().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            // sorted descending
            let w = profile.weights();
            for pair in w.windows(2) {
                prop_assert!(pair[0] >= pair[1] - 1e-12);
            }
        }
    }
}
