//! Mobility-profile models used by re-identification attacks and LPPMs.
//!
//! The paper's Figure 1 shows the three classic ways an attacker models a
//! user's mobility, all implemented here:
//!
//! * **Points of Interest** — [`Stay`] clusters extracted by
//!   [`PoiExtractor`] (sequential spatio-temporal clustering, 200 m
//!   diameter / 1 h dwell by default) and aggregated into a [`PoiProfile`];
//! * **Mobility Markov Chains** — [`MarkovChain`], whose states are POIs
//!   ordered by weight and whose edges carry transition probabilities,
//!   with a stationary distribution computed by damped power iteration;
//! * **Heatmaps** — [`Heatmap`], per-cell record counts over a
//!   [`mood_geo::Grid`], compared with the **Topsoe divergence** used by
//!   AP-Attack.
//!
//! The [`divergence`] module provides the underlying f64 distribution
//! distances (KL, Jensen–Shannon, Topsoe), including the sorted-slice
//! merge walk with **best-bound pruning** the candidate hot path uses.
//!
//! Every model supports a scratch-reuse path for allocation-free hot
//! loops: [`Heatmap::rebuild_from_cells`],
//! [`PoiExtractor::extract_stays_into`],
//! [`PoiProfile::rebuild_from_stays`] and
//! [`MarkovChain::rebuild_from_profile`] refill existing buffers with
//! exactly what the allocating constructors would produce, and
//! [`TraceRaster`] caches a trace's grid cell-sequence so it is computed
//! once per `(grid, trace)` and shared by every consumer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
mod heatmap;
pub mod kernels;
mod mmc;
mod poi;
mod raster;

pub use heatmap::Heatmap;
pub use kernels::CentroidSoa;
pub use mmc::MarkovChain;
pub use poi::{Poi, PoiExtractor, PoiProfile, Stay};
pub use raster::TraceRaster;
