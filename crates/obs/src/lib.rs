//! MooD observability: deterministic tracing spans, per-stage timing
//! aggregation, and a fixed-size flight recorder.
//!
//! The central contract mirrors the engine's determinism story: span
//! **structure and identifiers** are pure functions of
//! `(trace_id, stage, occurrence index)` — never of wall-clock — while
//! **durations** are measured with `Instant` but are observability-only
//! outputs. Served bytes therefore stay bit-identical with tracing on
//! or off, and two replays of the same request produce span trees that
//! differ only in their `*_us` timing fields.
//!
//! Three layers:
//!
//! * [`TraceSpans`] — a per-request span collector with
//!   [`span!`]-style guards. Zero-cost when disabled: a disabled
//!   collector never calls `Instant::now` and never formats an
//!   attribute.
//! * [`StageAgg`] — lock-free per-stage duration totals for hot loops
//!   (the engine records *aggregated* candidate-evaluation time here
//!   rather than one span per candidate, keeping overhead bounded).
//! * [`Recorder`] — the flight recorder: bounded rings of recent and
//!   slow [`TraceRecord`]s plus per-stage latency histograms and
//!   labeled counters, all snapshot-able for `/metrics` and the
//!   `GET /v1/debug/trace` export.
//!
//! [`chrome_trace`] renders records as Chrome-trace-viewer JSON
//! (`chrome://tracing` / Perfetto "trace event" format).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod record;
mod recorder;
mod span;

pub use agg::{StageAgg, StageTotal};
pub use record::{chrome_trace, SpanAttr, SpanEvent, SpanRecord, TraceRecord};
pub use recorder::{
    CounterSample, Recorder, RecorderConfig, StageHistogram, STAGE_BUCKET_BOUNDS_US,
};
pub use span::{SpanGuard, SpanToken, TraceSpans};

/// SplitMix64 finalizer — the same constants the engine uses for
/// per-variant RNG streams, so every deterministic id in the workspace
/// speaks one derivation dialect.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over `s` — folds a stage name into the id derivation.
pub fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic id of the `index`-th span named `stage` within
/// trace `trace_id`. Never zero (zero is the "no parent" sentinel in
/// [`SpanRecord::parent_id`]); never derived from wall-clock, so a
/// replayed request reproduces its span ids bit-for-bit.
pub fn span_id(trace_id: u64, stage: &str, index: u64) -> u64 {
    let id = mix64(trace_id ^ mix64(fnv64(stage)) ^ mix64(index));
    if id == 0 {
        1
    } else {
        id
    }
}

/// Opens a span guard on a [`TraceSpans`] collector, optionally tagging
/// attributes, and ends the span when the guard drops:
///
/// ```
/// use mood_obs::{span, TraceSpans};
/// let spans = TraceSpans::new(42);
/// {
///     let _g = span!(spans, "protect", user = 7);
///     // ... timed work ...
/// }
/// let record = spans.finish().unwrap();
/// assert_eq!(record.spans[0].stage, "protect");
/// ```
///
/// On a disabled collector the guard is inert: nothing is recorded and
/// attribute values are never formatted.
#[macro_export]
macro_rules! span {
    ($spans:expr, $stage:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let guard = $spans.enter($stage);
        $( $spans.attr(guard.token(), stringify!($key), &$value); )*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        let a = span_id(7, "protect", 0);
        assert_eq!(a, span_id(7, "protect", 0));
        assert_ne!(a, span_id(7, "protect", 1));
        assert_ne!(a, span_id(7, "parse", 0));
        assert_ne!(a, span_id(8, "protect", 0));
        assert_ne!(a, 0);
    }

    #[test]
    fn macro_records_attrs_and_nesting() {
        let spans = TraceSpans::new(1);
        {
            let outer = span!(spans, "request", endpoint = "protect");
            let _inner = span!(spans, "engine", user = 42u64);
            let _ = outer;
        }
        let record = spans.finish().expect("enabled collector yields a record");
        assert_eq!(record.spans.len(), 2);
        assert_eq!(record.spans[0].stage, "request");
        assert_eq!(record.spans[0].attrs[0].key, "endpoint");
        assert_eq!(record.spans[0].attrs[0].value, "protect");
        assert_eq!(record.spans[1].parent_id, record.spans[0].id);
        assert_eq!(record.spans[1].attrs[0].value, "42");
    }

    #[test]
    fn disabled_collector_is_inert() {
        let spans = TraceSpans::disabled();
        let guard = spans.enter("request");
        spans.attr(guard.token(), "k", "v");
        spans.event(guard.token(), "boom");
        drop(guard);
        assert!(spans.finish().is_none());
    }
}
