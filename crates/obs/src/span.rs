//! The per-request span collector: deterministic structure, wall-clock
//! only in observability-only duration fields.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::record::{SpanAttr, SpanEvent, SpanRecord, TraceRecord};
use crate::span_id;

/// Handle to one span inside a [`TraceSpans`] collector.
///
/// Tokens are plain indices, cheap to copy and store; the zero token
/// ([`SpanToken::NONE`], returned by every operation on a disabled
/// collector) makes every downstream call a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(u32);

impl SpanToken {
    /// The null token: attached to no span, inert everywhere.
    pub const NONE: SpanToken = SpanToken(0);

    /// Is this the null token?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    fn index(self) -> Option<usize> {
        (self.0 != 0).then(|| self.0 as usize - 1)
    }
}

/// A guard returned by [`TraceSpans::enter`] / the [`crate::span!`]
/// macro; ends its span when dropped.
pub struct SpanGuard<'a> {
    spans: &'a TraceSpans,
    token: SpanToken,
}

impl SpanGuard<'_> {
    /// The underlying token — for attaching attributes, events, or
    /// synthetic children while the guard is live.
    pub fn token(&self) -> SpanToken {
        self.token
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.spans.end(self.token);
    }
}

struct SpanData {
    stage: String,
    parent: Option<usize>,
    started: Option<Instant>,
    start_us: u64,
    dur_us: u64,
    count: u64,
    /// Accumulated synthetic-child time, so [`TraceSpans::child_complete`]
    /// stacks children sequentially from the parent's start.
    synth_us: u64,
    attrs: Vec<(String, String)>,
    events: Vec<(String, u64)>,
    closed: bool,
}

#[derive(Default)]
struct Inner {
    trace_id: u64,
    origin: Option<Instant>,
    spans: Vec<SpanData>,
    open: Vec<usize>,
}

/// A single-request span collector.
///
/// One collector belongs to one request (or one offline unit of work);
/// it is intentionally *not* `Sync` — concurrent pipeline stages report
/// into a [`crate::StageAgg`] instead, and their totals are attached
/// afterwards via [`TraceSpans::child_complete`].
///
/// Determinism: span ids are derived by [`span_id`] from
/// `(trace_id, stage, occurrence index)` at [`TraceSpans::finish`]
/// time, so the id tree of a replayed request is bit-identical while
/// the `*_us` fields differ.
pub struct TraceSpans {
    enabled: bool,
    inner: RefCell<Inner>,
}

impl TraceSpans {
    /// An enabled collector for trace `trace_id`.
    pub fn new(trace_id: u64) -> Self {
        Self {
            enabled: true,
            inner: RefCell::new(Inner {
                trace_id,
                ..Inner::default()
            }),
        }
    }

    /// A disabled collector: every operation is a no-op, no `Instant`
    /// is ever read, and [`TraceSpans::finish`] returns `None`.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            inner: RefCell::new(Inner::default()),
        }
    }

    /// Is this collector recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Re-keys the trace. Ids are derived lazily at
    /// [`TraceSpans::finish`], so the id becomes available as soon as
    /// the request body is parsed — after the root span already opened.
    pub fn set_trace_id(&self, trace_id: u64) {
        if self.enabled {
            self.inner.borrow_mut().trace_id = trace_id;
        }
    }

    /// Opens a span named `stage`, parented to the innermost open span.
    pub fn begin(&self, stage: &str) -> SpanToken {
        if !self.enabled {
            return SpanToken::NONE;
        }
        let mut inner = self.inner.borrow_mut();
        let now = Instant::now();
        let origin = *inner.origin.get_or_insert(now);
        let start_us = now.duration_since(origin).as_micros() as u64;
        let parent = inner.open.last().copied();
        let idx = inner.spans.len();
        inner.spans.push(SpanData {
            stage: stage.to_string(),
            parent,
            started: Some(now),
            start_us,
            dur_us: 0,
            count: 1,
            synth_us: 0,
            attrs: Vec::new(),
            events: Vec::new(),
            closed: false,
        });
        inner.open.push(idx);
        SpanToken(idx as u32 + 1)
    }

    /// Opens a span and returns a guard that ends it on drop.
    pub fn enter(&self, stage: &str) -> SpanGuard<'_> {
        SpanGuard {
            spans: self,
            token: self.begin(stage),
        }
    }

    /// Closes the span behind `token`, defensively closing any child
    /// spans still open above it.
    pub fn end(&self, token: SpanToken) {
        let Some(idx) = token.index() else { return };
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if !inner.open.contains(&idx) {
            return;
        }
        while let Some(top) = inner.open.pop() {
            let span = &mut inner.spans[top];
            if !span.closed {
                if let Some(started) = span.started {
                    span.dur_us = started.elapsed().as_micros() as u64;
                }
                span.closed = true;
            }
            if top == idx {
                break;
            }
        }
    }

    /// Tags `key = value` onto the span behind `token`. The value is
    /// only formatted when the collector is enabled.
    pub fn attr(&self, token: SpanToken, key: &str, value: impl std::fmt::Display) {
        let Some(idx) = token.index() else { return };
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if let Some(span) = inner.spans.get_mut(idx) {
            span.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Records an instantaneous event (e.g. an injected chaos fault or
    /// a client retry) on the span behind `token`.
    pub fn event(&self, token: SpanToken, name: &str) {
        let Some(idx) = token.index() else { return };
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let at_us = inner
            .origin
            .map(|origin| origin.elapsed().as_micros() as u64)
            .unwrap_or(0);
        if let Some(span) = inner.spans.get_mut(idx) {
            span.events.push((name.to_string(), at_us));
        }
    }

    /// Attaches an already-measured child span under `parent` — the
    /// bridge from aggregated hot-loop timing ([`crate::StageAgg`]) into
    /// the span tree. `count` is how many underlying operations the
    /// aggregate covers (e.g. candidates evaluated).
    ///
    /// Synthetic children are stacked sequentially from the parent's
    /// start for rendering; stages that overlap in reality (candidate
    /// evaluation runs *inside* the search stages) therefore appear
    /// side by side, and their stacked width can exceed the parent's
    /// own duration.
    pub fn child_complete(&self, parent: SpanToken, stage: &str, dur: Duration, count: u64) {
        let Some(pidx) = parent.index() else { return };
        if !self.enabled || count == 0 {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let dur_us = dur.as_micros() as u64;
        let start_us = {
            let Some(p) = inner.spans.get_mut(pidx) else {
                return;
            };
            let start = p.start_us + p.synth_us;
            p.synth_us += dur_us;
            start
        };
        inner.spans.push(SpanData {
            stage: stage.to_string(),
            parent: Some(pidx),
            started: None,
            start_us,
            dur_us,
            count,
            synth_us: 0,
            attrs: Vec::new(),
            events: Vec::new(),
            closed: true,
        });
    }

    /// Seals the collector into a [`TraceRecord`] (`None` when
    /// disabled or empty). Spans still open are closed here, so a
    /// handler that bails early still yields a complete tree.
    pub fn finish(self) -> Option<TraceRecord> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.inner.into_inner();
        while let Some(idx) = inner.open.pop() {
            let span = &mut inner.spans[idx];
            if !span.closed {
                if let Some(started) = span.started {
                    span.dur_us = started.elapsed().as_micros() as u64;
                }
                span.closed = true;
            }
        }
        if inner.spans.is_empty() {
            return None;
        }
        // Ids derive from creation order (parents always precede their
        // children), never from time.
        let mut ids = Vec::with_capacity(inner.spans.len());
        let mut indices = Vec::with_capacity(inner.spans.len());
        {
            let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
            for span in &inner.spans {
                let n = counts.entry(span.stage.as_str()).or_insert(0);
                ids.push(span_id(inner.trace_id, &span.stage, *n));
                indices.push(*n);
                *n += 1;
            }
        }
        let total_us = inner
            .spans
            .iter()
            .map(|s| s.start_us.saturating_add(s.dur_us))
            .max()
            .unwrap_or(0);
        let spans = inner
            .spans
            .into_iter()
            .enumerate()
            .map(|(i, s)| SpanRecord {
                id: ids[i],
                parent_id: s.parent.map(|p| ids[p]).unwrap_or(0),
                stage: s.stage,
                index: indices[i],
                start_us: s.start_us,
                dur_us: s.dur_us,
                count: s.count,
                attrs: s
                    .attrs
                    .into_iter()
                    .map(|(key, value)| SpanAttr { key, value })
                    .collect(),
                events: s
                    .events
                    .into_iter()
                    .map(|(name, at_us)| SpanEvent { name, at_us })
                    .collect(),
            })
            .collect();
        Some(TraceRecord {
            trace_id: inner.trace_id,
            total_us,
            slow: false,
            spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_deterministic_across_replays() {
        let shape = |trace_id: u64| {
            let spans = TraceSpans::new(0);
            let root = spans.begin("request");
            spans.set_trace_id(trace_id);
            let parse = spans.begin("parse");
            spans.end(parse);
            let engine = spans.begin("engine");
            spans.child_complete(engine, "candidate_eval", Duration::from_micros(120), 64);
            spans.end(engine);
            spans.end(root);
            let record = spans.finish().unwrap();
            record
                .spans
                .iter()
                .map(|s| (s.id, s.parent_id, s.stage.clone(), s.index, s.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(99), shape(99));
        assert_ne!(shape(99), shape(100), "trace id must re-key every span id");
    }

    #[test]
    fn repeated_stages_get_distinct_indices_and_ids() {
        let spans = TraceSpans::new(5);
        let a = spans.begin("request");
        spans.end(a);
        let b = spans.begin("request");
        spans.end(b);
        let record = spans.finish().unwrap();
        assert_eq!(record.spans[0].index, 0);
        assert_eq!(record.spans[1].index, 1);
        assert_ne!(record.spans[0].id, record.spans[1].id);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let spans = TraceSpans::new(3);
        let _root = spans.begin("request");
        let _child = spans.begin("engine");
        let record = spans.finish().unwrap();
        assert_eq!(record.spans.len(), 2);
    }

    #[test]
    fn end_is_idempotent_and_null_token_safe() {
        let spans = TraceSpans::new(1);
        let root = spans.begin("request");
        let child = spans.begin("engine");
        spans.end(child);
        spans.end(child);
        spans.end(SpanToken::NONE);
        spans.end(root);
        let record = spans.finish().unwrap();
        assert_eq!(record.spans.len(), 2);
    }

    #[test]
    fn synthetic_children_stack_sequentially() {
        let spans = TraceSpans::new(9);
        let root = spans.begin("engine");
        spans.child_complete(root, "search_single", Duration::from_micros(100), 4);
        spans.child_complete(root, "search_composition", Duration::from_micros(50), 2);
        spans.end(root);
        let record = spans.finish().unwrap();
        let first = &record.spans[1];
        let second = &record.spans[2];
        assert_eq!(second.start_us, first.start_us + first.dur_us);
        assert_eq!(first.count, 4);
    }

    #[test]
    fn events_attach_to_their_span() {
        let spans = TraceSpans::new(2);
        let root = spans.begin("request");
        spans.event(root, "fault_delay");
        spans.end(root);
        let record = spans.finish().unwrap();
        assert_eq!(record.spans[0].events[0].name, "fault_delay");
    }
}
