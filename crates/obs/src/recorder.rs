//! The flight recorder: bounded rings of recent/slow traces, per-stage
//! latency histograms, and labeled counters.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::record::TraceRecord;

/// Stage-duration histogram bucket upper bounds, microseconds; an
/// implicit `+Inf` bucket follows. Finer at the low end than the
/// serve request histogram — pipeline stages are often sub-millisecond.
pub const STAGE_BUCKET_BOUNDS_US: [u64; 8] =
    [50, 250, 1_000, 5_000, 25_000, 100_000, 250_000, 1_000_000];

/// Sizing and thresholds of a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity for recent traces.
    pub capacity: usize,
    /// Ring capacity for slow traces (kept separately so a burst of
    /// fast requests cannot evict the interesting ones).
    pub slow_capacity: usize,
    /// Traces at or over this total duration are flagged slow and
    /// retained in the slow ring with their full span tree.
    pub slow_threshold: Duration,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            slow_capacity: 64,
            slow_threshold: Duration::from_millis(250),
        }
    }
}

/// One per-stage duration histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageHistogram {
    /// Stage name.
    pub stage: String,
    /// Raw (non-cumulative) counts per bucket of
    /// [`STAGE_BUCKET_BOUNDS_US`] plus the trailing `+Inf` bucket;
    /// a Prometheus renderer accumulates these itself.
    pub buckets: [u64; 9],
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations, microseconds.
    pub sum_us: u64,
}

/// One labeled counter sample from [`Recorder::counters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name (e.g. `mood_serve_client_retries_total`).
    pub metric: String,
    /// Label key (e.g. `reason`).
    pub label_key: String,
    /// Label value (e.g. `status_503`).
    pub label_value: String,
    /// Current count.
    pub value: u64,
}

#[derive(Default)]
struct StageHisto {
    buckets: [u64; 9],
    count: u64,
    sum_us: u64,
}

#[derive(Default)]
struct RecorderInner {
    recent: VecDeque<TraceRecord>,
    slow: VecDeque<TraceRecord>,
    stages: BTreeMap<String, StageHisto>,
    counters: BTreeMap<(String, String, String), u64>,
}

/// The per-server flight recorder.
///
/// `record` is called once per finished trace from whichever worker
/// handled it; snapshots are taken by the `/metrics` renderer and the
/// `GET /v1/debug/trace` handler. A single mutex guards the rings and
/// histograms — recording happens once per request (never per span in
/// a hot loop), so contention is bounded by request rate.
pub struct Recorder {
    config: RecorderConfig,
    inner: Mutex<RecorderInner>,
    recorded: AtomicU64,
    slow: AtomicU64,
}

impl Recorder {
    /// An empty recorder under `config`.
    pub fn new(config: RecorderConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(RecorderInner::default()),
            recorded: AtomicU64::new(0),
            slow: AtomicU64::new(0),
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// Ingests one finished trace: updates stage histograms, flags and
    /// retains slow traces, and appends to the recent ring.
    pub fn record(&self, mut record: TraceRecord) {
        let threshold_us = self.config.slow_threshold.as_micros() as u64;
        record.slow = record.total_us >= threshold_us;
        let mut inner = self.inner.lock().expect("recorder lock");
        for span in &record.spans {
            let histo = inner.stages.entry(span.stage.clone()).or_default();
            let bucket = STAGE_BUCKET_BOUNDS_US
                .iter()
                .position(|bound| span.dur_us <= *bound)
                .unwrap_or(STAGE_BUCKET_BOUNDS_US.len());
            histo.buckets[bucket] += 1;
            histo.count += 1;
            histo.sum_us += span.dur_us;
        }
        if record.slow && self.config.slow_capacity > 0 {
            while inner.slow.len() >= self.config.slow_capacity {
                inner.slow.pop_front();
            }
            inner.slow.push_back(record.clone());
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        if self.config.capacity > 0 {
            while inner.recent.len() >= self.config.capacity {
                inner.recent.pop_front();
            }
            inner.recent.push_back(record);
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a labeled counter (e.g. client retries by reason).
    pub fn bump(&self, metric: &str, label_key: &str, label_value: &str) {
        let mut inner = self.inner.lock().expect("recorder lock");
        *inner
            .counters
            .entry((
                metric.to_string(),
                label_key.to_string(),
                label_value.to_string(),
            ))
            .or_insert(0) += 1;
    }

    /// The newest `limit` recent traces, oldest first.
    pub fn export(&self, limit: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock().expect("recorder lock");
        let skip = inner.recent.len().saturating_sub(limit);
        inner.recent.iter().skip(skip).cloned().collect()
    }

    /// The newest `limit` slow traces, oldest first.
    pub fn export_slow(&self, limit: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock().expect("recorder lock");
        let skip = inner.slow.len().saturating_sub(limit);
        inner.slow.iter().skip(skip).cloned().collect()
    }

    /// Per-stage histogram snapshots, sorted by stage name.
    pub fn stage_histograms(&self) -> Vec<StageHistogram> {
        let inner = self.inner.lock().expect("recorder lock");
        inner
            .stages
            .iter()
            .map(|(stage, h)| StageHistogram {
                stage: stage.clone(),
                buckets: h.buckets,
                count: h.count,
                sum_us: h.sum_us,
            })
            .collect()
    }

    /// Labeled counter snapshots, sorted by `(metric, key, value)`.
    pub fn counters(&self) -> Vec<CounterSample> {
        let inner = self.inner.lock().expect("recorder lock");
        inner
            .counters
            .iter()
            .map(|((metric, label_key, label_value), value)| CounterSample {
                metric: metric.clone(),
                label_key: label_key.clone(),
                label_value: label_value.clone(),
                value: *value,
            })
            .collect()
    }

    /// Traces ingested since startup (monotonic, unlike ring length).
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces flagged slow since startup.
    pub fn slow_total(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSpans;

    fn trace(trace_id: u64, stage: &str) -> TraceRecord {
        let spans = TraceSpans::new(trace_id);
        let root = spans.begin(stage);
        spans.end(root);
        spans.finish().unwrap()
    }

    #[test]
    fn ring_evicts_oldest() {
        let recorder = Recorder::new(RecorderConfig {
            capacity: 3,
            slow_capacity: 2,
            slow_threshold: Duration::from_secs(3600),
        });
        for id in 0..5 {
            recorder.record(trace(id, "request"));
        }
        let exported = recorder.export(10);
        assert_eq!(exported.len(), 3);
        assert_eq!(
            exported.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            [2, 3, 4]
        );
        assert_eq!(recorder.export(2).len(), 2);
        assert_eq!(recorder.recorded_total(), 5);
        assert_eq!(recorder.slow_total(), 0);
    }

    #[test]
    fn zero_threshold_routes_everything_to_the_slow_log() {
        let recorder = Recorder::new(RecorderConfig {
            slow_threshold: Duration::ZERO,
            ..RecorderConfig::default()
        });
        recorder.record(trace(1, "request"));
        assert_eq!(recorder.slow_total(), 1);
        let slow = recorder.export_slow(10);
        assert_eq!(slow.len(), 1);
        assert!(slow[0].slow);
        assert!(!slow[0].spans.is_empty(), "slow traces keep the span tree");
    }

    #[test]
    fn stage_histograms_accumulate() {
        let recorder = Recorder::new(RecorderConfig::default());
        recorder.record(trace(1, "parse"));
        recorder.record(trace(2, "parse"));
        recorder.record(trace(3, "engine"));
        let histos = recorder.stage_histograms();
        assert_eq!(histos.len(), 2);
        assert_eq!(histos[0].stage, "engine");
        assert_eq!(histos[0].count, 1);
        assert_eq!(histos[1].stage, "parse");
        assert_eq!(histos[1].count, 2);
        assert_eq!(histos[1].buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn labeled_counters_accumulate() {
        let recorder = Recorder::new(RecorderConfig::default());
        recorder.bump("mood_serve_client_retries_total", "reason", "status_503");
        recorder.bump("mood_serve_client_retries_total", "reason", "status_503");
        recorder.bump("mood_serve_client_retries_total", "reason", "io_refused");
        let counters = recorder.counters();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].label_value, "io_refused");
        assert_eq!(counters[0].value, 1);
        assert_eq!(counters[1].value, 2);
    }
}
