//! Lock-free per-stage duration totals for concurrent hot loops.

use std::sync::atomic::{AtomicU64, Ordering};

/// One drained/snapshot stage total from a [`StageAgg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTotal {
    /// The stage name (from the slice the aggregator was built over).
    pub stage: &'static str,
    /// Total measured nanoseconds.
    pub ns: u64,
    /// Number of underlying operations covered (not number of
    /// `record` calls — a batched `record_n` adds its batch size).
    pub count: u64,
}

/// Atomic per-stage `(nanoseconds, count)` accumulators over a fixed
/// stage-name table.
///
/// This is the aggregation sink for code that must not allocate or
/// lock per operation: engine workers record candidate-evaluation time
/// here from any thread, and the request handler drains the totals
/// into its span tree afterwards ([`crate::TraceSpans::child_complete`]).
/// Relaxed ordering everywhere — totals are observability-only and
/// never feed back into served bytes.
pub struct StageAgg {
    stages: &'static [&'static str],
    ns: Vec<AtomicU64>,
    count: Vec<AtomicU64>,
}

impl StageAgg {
    /// A zeroed aggregator over `stages` (index = position in slice).
    pub fn new(stages: &'static [&'static str]) -> Self {
        Self {
            stages,
            ns: (0..stages.len()).map(|_| AtomicU64::new(0)).collect(),
            count: (0..stages.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The stage-name table this aggregator was built over.
    pub fn stages(&self) -> &'static [&'static str] {
        self.stages
    }

    /// Adds one operation of `ns` nanoseconds to `stage`.
    pub fn record(&self, stage: usize, ns: u64) {
        self.record_n(stage, ns, 1);
    }

    /// Adds `count` operations totalling `ns` nanoseconds to `stage`.
    /// Out-of-range stages are ignored (observability must not panic).
    pub fn record_n(&self, stage: usize, ns: u64, count: u64) {
        if let (Some(total), Some(n)) = (self.ns.get(stage), self.count.get(stage)) {
            total.fetch_add(ns, Ordering::Relaxed);
            n.fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Current totals, without resetting. Stages with zero count are
    /// skipped.
    pub fn snapshot(&self) -> Vec<StageTotal> {
        self.collect(|a| a.load(Ordering::Relaxed))
    }

    /// Takes and resets the totals — the per-request handoff point.
    pub fn drain(&self) -> Vec<StageTotal> {
        self.collect(|a| a.swap(0, Ordering::Relaxed))
    }

    fn collect(&self, read: impl Fn(&AtomicU64) -> u64) -> Vec<StageTotal> {
        self.stages
            .iter()
            .enumerate()
            .filter_map(|(i, stage)| {
                let count = read(&self.count[i]);
                let ns = read(&self.ns[i]);
                (count > 0).then_some(StageTotal { stage, ns, count })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const STAGES: [&str; 3] = ["raw_check", "search_single", "candidate_eval"];

    #[test]
    fn records_drain_and_reset() {
        let agg = StageAgg::new(&STAGES);
        agg.record(0, 100);
        agg.record_n(2, 5_000, 64);
        let drained = agg.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].stage, "raw_check");
        assert_eq!(drained[0].ns, 100);
        assert_eq!(drained[1].count, 64);
        assert!(agg.drain().is_empty(), "drain resets the totals");
    }

    #[test]
    fn out_of_range_stage_is_ignored() {
        let agg = StageAgg::new(&STAGES);
        agg.record(17, 1);
        assert!(agg.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let agg = Arc::new(StageAgg::new(&STAGES));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let agg = Arc::clone(&agg);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        agg.record(1, 3);
                    }
                });
            }
        });
        let snap = agg.snapshot();
        assert_eq!(snap[0].count, 4_000);
        assert_eq!(snap[0].ns, 12_000);
    }
}
