//! Exported trace records and the Chrome-trace-viewer rendering.

use serde::{Deserialize, Serialize, Value};

/// One `key = value` attribute on a span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanAttr {
    /// Attribute name (e.g. `user`, `endpoint`).
    pub key: String,
    /// Pre-formatted attribute value.
    pub value: String,
}

/// An instantaneous event inside a span (chaos fault, client retry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Event name (e.g. `fault_delay`, `retry`).
    pub name: String,
    /// Microseconds since the trace origin.
    pub at_us: u64,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Deterministic span id ([`crate::span_id`]); never zero.
    pub id: u64,
    /// Parent span id, or `0` for a root span.
    pub parent_id: u64,
    /// Stage name.
    pub stage: String,
    /// Zero-based occurrence index of this stage within the trace.
    pub index: u64,
    /// Start offset from the trace origin, microseconds
    /// (observability-only; varies across replays).
    pub start_us: u64,
    /// Duration, microseconds (observability-only).
    pub dur_us: u64,
    /// How many underlying operations this span covers (`1` for a
    /// plain span, the batch size for an aggregated one).
    pub count: u64,
    /// Attributes, in tagging order.
    pub attrs: Vec<SpanAttr>,
    /// Events, in occurrence order.
    pub events: Vec<SpanEvent>,
}

/// One finished trace: the flight-recorder unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Deterministic trace id (request seed, or a derived connection
    /// id for traces without a request body).
    pub trace_id: u64,
    /// End offset of the latest span, microseconds.
    pub total_us: u64,
    /// Did this trace exceed the recorder's slow-request threshold?
    pub slow: bool,
    /// Spans in creation order (parents precede children).
    pub spans: Vec<SpanRecord>,
}

/// Renders `records` in the Chrome trace-event JSON format, loadable
/// in `chrome://tracing` or Perfetto. Each trace becomes one `tid`
/// lane of complete (`"ph": "X"`) events; span events become instant
/// (`"ph": "i"`) markers.
pub fn chrome_trace(records: &[TraceRecord]) -> Value {
    let mut events = Vec::new();
    for (lane, record) in records.iter().enumerate() {
        let tid = lane as u64 + 1;
        for span in &record.spans {
            let mut args = vec![
                (
                    "trace_id".to_string(),
                    Value::Str(format!("{:#018x}", record.trace_id)),
                ),
                (
                    "span_id".to_string(),
                    Value::Str(format!("{:#018x}", span.id)),
                ),
                ("count".to_string(), Value::UInt(span.count)),
            ];
            for attr in &span.attrs {
                args.push((attr.key.clone(), Value::Str(attr.value.clone())));
            }
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str(span.stage.clone())),
                ("cat".to_string(), Value::Str("mood".to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::UInt(span.start_us)),
                ("dur".to_string(), Value::UInt(span.dur_us)),
                ("pid".to_string(), Value::UInt(1)),
                ("tid".to_string(), Value::UInt(tid)),
                ("args".to_string(), Value::Object(args)),
            ]));
            for event in &span.events {
                events.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(event.name.clone())),
                    ("cat".to_string(), Value::Str("mood".to_string())),
                    ("ph".to_string(), Value::Str("i".to_string())),
                    ("ts".to_string(), Value::UInt(event.at_us)),
                    ("pid".to_string(), Value::UInt(1)),
                    ("tid".to_string(), Value::UInt(tid)),
                    ("s".to_string(), Value::Str("t".to_string())),
                ]));
            }
        }
    }
    Value::Object(vec![("traceEvents".to_string(), Value::Array(events))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSpans;
    use std::time::Duration;

    fn sample() -> TraceRecord {
        let spans = TraceSpans::new(77);
        let root = spans.begin("request");
        spans.attr(root, "endpoint", "protect");
        spans.event(root, "fault_delay");
        spans.child_complete(root, "candidate_eval", Duration::from_micros(10), 8);
        spans.end(root);
        spans.finish().unwrap()
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = sample();
        let json = serde_json::to_string(&record).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn chrome_trace_emits_complete_and_instant_events() {
        let record = sample();
        let doc = chrome_trace(std::slice::from_ref(&record));
        let events = match doc.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        // request span + synthetic child + one instant marker
        assert_eq!(events.len(), 3);
        let phases: Vec<_> = events
            .iter()
            .map(|e| match e.get("ph") {
                Some(Value::Str(s)) => s.clone(),
                other => panic!("missing ph: {other:?}"),
            })
            .collect();
        assert_eq!(phases, ["X", "i", "X"]);
        assert!(events
            .iter()
            .all(|e| e.get("pid").is_some() && e.get("tid").is_some() && e.get("ts").is_some()));
    }
}
