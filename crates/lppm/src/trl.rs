use rand::{Rng, RngCore};

use mood_geo::{GeoPoint, LocalProjection};
use mood_trace::{Record, Trace};

use crate::Lppm;

/// Trilateration-based dummy generation (Huang et al. 2018, the paper's
/// \[18\]): every true position is replaced by **three assisted locations**
/// drawn uniformly within radius `r` of it. The service provider only
/// ever sees the assisted locations; the client recovers the exact
/// answer by trilateration (demonstrated in the [`crate::lss`] module).
///
/// For offline dataset protection (the paper's use of TRL as a dataset
/// LPPM) the obfuscated trace contains the three assisted records per
/// original record, sharing the original timestamp — the published trace
/// is 3x longer and the true position never appears.
///
/// The paper fixes r = 1 km (§4.1.2).
///
/// # Examples
///
/// ```
/// use mood_lppm::{Lppm, Trl};
/// use mood_synth::presets;
/// use rand::SeedableRng;
///
/// let ds = presets::privamov_like().scaled(0.1).generate();
/// let trace = ds.iter().next().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let protected = Trl::paper_default().protect(trace, &mut rng);
/// assert_eq!(protected.len(), trace.len() * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trl {
    radius_m: f64,
}

impl Trl {
    /// Creates a TRL mechanism generating assisted locations within
    /// `radius_m` meters of the true position.
    ///
    /// # Panics
    ///
    /// Panics when `radius_m` is not strictly positive and finite.
    pub fn new(radius_m: f64) -> Self {
        assert!(
            radius_m.is_finite() && radius_m > 0.0,
            "radius must be positive"
        );
        Self { radius_m }
    }

    /// The paper's configuration: r = 1 km.
    pub fn paper_default() -> Self {
        Self::new(1_000.0)
    }

    /// The dummy-generation radius in meters.
    pub fn radius_m(&self) -> f64 {
        self.radius_m
    }

    /// The three assisted locations for one true position — the exact
    /// payload a TRL client would send to a location-searching service.
    /// Locations are uniform in the disk of radius `r` and pairwise
    /// non-collinear with overwhelming probability (required for
    /// trilateration).
    pub fn assisted_locations(&self, real: &GeoPoint, rng: &mut dyn RngCore) -> [GeoPoint; 3] {
        let proj = LocalProjection::new(*real);
        let sample = |rng: &mut dyn RngCore| {
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            // sqrt for uniform density over the disk area
            let rho = self.radius_m * rng.gen::<f64>().sqrt();
            proj.to_geo(rho * theta.sin(), rho * theta.cos())
        };
        [sample(rng), sample(rng), sample(rng)]
    }
}

impl Lppm for Trl {
    fn name(&self) -> &str {
        "TRL"
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let mut records = Vec::new();
        self.protect_into(trace, rng, &mut records);
        Trace::new(trace.user(), records).expect("3x records, still non-empty")
    }

    fn protect_into(&self, trace: &Trace, rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        out.clear();
        out.reserve(trace.len() * 3);
        for r in trace.records() {
            for loc in self.assisted_locations(&r.point(), rng) {
                out.push(Record::new(loc, r.time()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::{Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn walk(n: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    GeoPoint::new(46.2, 6.1).unwrap(),
                    Timestamp::from_unix(i * 600),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn triples_records_preserving_timestamps() {
        let t = walk(10);
        let mut rng = StdRng::seed_from_u64(1);
        let p = Trl::paper_default().protect(&t, &mut rng);
        assert_eq!(p.len(), 30);
        // each original timestamp appears exactly 3 times
        for r in t.records() {
            let count = p.records().iter().filter(|x| x.time() == r.time()).count();
            assert_eq!(count, 3);
        }
    }

    #[test]
    fn assisted_locations_within_radius() {
        let trl = Trl::paper_default();
        let real = GeoPoint::new(46.2, 6.1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            for loc in trl.assisted_locations(&real, &mut rng) {
                let d = real.haversine_distance(&loc);
                assert!(d <= 1_000.0 + 1.0, "assisted location {d} m away");
            }
        }
    }

    #[test]
    fn assisted_locations_are_spread_out() {
        // uniform disk: expected distance from center is 2r/3
        let trl = Trl::paper_default();
        let real = GeoPoint::new(46.2, 6.1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 3_000;
        for _ in 0..n {
            for loc in trl.assisted_locations(&real, &mut rng) {
                sum += real.haversine_distance(&loc);
            }
        }
        let mean = sum / (3 * n) as f64;
        assert!((mean - 666.7).abs() < 20.0, "mean distance {mean}");
    }

    #[test]
    fn true_position_never_published() {
        let t = walk(50);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Trl::paper_default().protect(&t, &mut rng);
        for orig in t.records() {
            for pub_r in p.records() {
                // probability of an exact hit is zero; distances should
                // be comfortably nonzero
                if pub_r.time() == orig.time() {
                    assert!(orig.point().haversine_distance(&pub_r.point()) > 0.01);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = walk(20);
        let trl = Trl::paper_default();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(trl.protect(&t, &mut r1), trl.protect(&t, &mut r2));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_bad_radius() {
        Trl::new(-1.0);
    }
}
