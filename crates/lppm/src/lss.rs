//! Location Searching Service (LSS) demo: the accurate-service property
//! of TRL.
//!
//! TRL's selling point (paper §4.1.2 and \[18\]) is that privacy costs the
//! *user* nothing in result quality: the LSS answers nearest-place
//! queries for the three assisted locations, and the client recovers the
//! exact distance from its true position by trilateration. This module
//! implements both sides:
//!
//! * [`LocationSearchService`] — a toy server answering "distance to the
//!   nearest place" queries for arbitrary query points;
//! * [`trilaterate`] — the client-side solver recovering a true position
//!   (or unknown place location) from three anchors and their distances.
//!
//! # Examples
//!
//! ```
//! use mood_geo::GeoPoint;
//! use mood_lppm::lss::{trilaterate, LocationSearchService};
//! use mood_lppm::Trl;
//! use rand::SeedableRng;
//!
//! let restaurant = GeoPoint::new(46.205, 6.145)?;
//! let service = LocationSearchService::new(vec![restaurant]);
//!
//! let me = GeoPoint::new(46.2001, 6.1402)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let assisted = Trl::paper_default().assisted_locations(&me, &mut rng);
//!
//! // the server sees only assisted locations, never `me`
//! let distances = assisted.map(|l| service.nearest_distance(&l).unwrap());
//! let recovered = trilaterate(&assisted, &distances).unwrap();
//! // recovered = the restaurant's position, from which the client
//! // computes its exact distance
//! assert!(recovered.haversine_distance(&restaurant) < 5.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use mood_geo::{GeoPoint, LocalProjection};

/// A toy location-searching service: a set of places answering
/// nearest-place distance queries.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationSearchService {
    places: Vec<GeoPoint>,
}

impl LocationSearchService {
    /// Creates a service over a set of places (restaurants, gas
    /// stations, ...).
    pub fn new(places: Vec<GeoPoint>) -> Self {
        Self { places }
    }

    /// The places the service knows about.
    pub fn places(&self) -> &[GeoPoint] {
        &self.places
    }

    /// The place nearest to `query`, or `None` for an empty service.
    pub fn nearest_place(&self, query: &GeoPoint) -> Option<GeoPoint> {
        self.places.iter().copied().min_by(|a, b| {
            query
                .approx_distance(a)
                .partial_cmp(&query.approx_distance(b))
                .expect("distances are finite")
        })
    }

    /// Distance in meters from `query` to the nearest place, or `None`
    /// for an empty service.
    pub fn nearest_distance(&self, query: &GeoPoint) -> Option<f64> {
        self.nearest_place(query)
            .map(|p| query.haversine_distance(&p))
    }
}

/// Recovers the point at the given `distances` from three `anchors` by
/// trilateration (solving the two linearized circle-difference
/// equations in a local tangent frame).
///
/// Returns `None` when the anchors are (nearly) collinear or the
/// distances are inconsistent — callers should resample assisted
/// locations in that case.
pub fn trilaterate(anchors: &[GeoPoint; 3], distances: &[f64; 3]) -> Option<GeoPoint> {
    if distances.iter().any(|d| !d.is_finite() || *d < 0.0) {
        return None;
    }
    let proj = LocalProjection::new(anchors[0]);
    let (x1, y1) = (0.0, 0.0);
    let (x2, y2) = proj.to_local(&anchors[1]);
    let (x3, y3) = proj.to_local(&anchors[2]);
    let (d1, d2, d3) = (distances[0], distances[1], distances[2]);

    // Subtracting circle equations pairwise gives a linear system:
    //   2(x2-x1) x + 2(y2-y1) y = d1² - d2² + x2² + y2²
    //   2(x3-x1) x + 2(y3-y1) y = d1² - d3² + x3² + y3²
    let a11 = 2.0 * (x2 - x1);
    let a12 = 2.0 * (y2 - y1);
    let a21 = 2.0 * (x3 - x1);
    let a22 = 2.0 * (y3 - y1);
    let b1 = d1 * d1 - d2 * d2 + x2 * x2 + y2 * y2;
    let b2 = d1 * d1 - d3 * d3 + x3 * x3 + y3 * y3;

    let det = a11 * a22 - a12 * a21;
    if det.abs() < 1e-6 {
        return None; // collinear anchors
    }
    let x = (b1 * a22 - b2 * a12) / det;
    let y = (a11 * b2 - a21 * b1) / det;
    Some(proj.to_geo(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trl;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    #[test]
    fn trilateration_recovers_known_point() {
        let target = p(46.21, 6.13);
        let anchors = [p(46.20, 6.10), p(46.25, 6.16), p(46.17, 6.18)];
        let distances = [
            anchors[0].haversine_distance(&target),
            anchors[1].haversine_distance(&target),
            anchors[2].haversine_distance(&target),
        ];
        let rec = trilaterate(&anchors, &distances).unwrap();
        assert!(rec.haversine_distance(&target) < 5.0);
    }

    #[test]
    fn collinear_anchors_rejected() {
        let anchors = [p(46.20, 6.10), p(46.21, 6.10), p(46.22, 6.10)];
        assert!(trilaterate(&anchors, &[100.0, 100.0, 100.0]).is_none());
    }

    #[test]
    fn negative_distance_rejected() {
        let anchors = [p(46.20, 6.10), p(46.25, 6.16), p(46.17, 6.18)];
        assert!(trilaterate(&anchors, &[100.0, -5.0, 100.0]).is_none());
    }

    #[test]
    fn nearest_place_queries() {
        let service = LocationSearchService::new(vec![p(46.21, 6.13), p(46.30, 6.30)]);
        let q = p(46.20, 6.12);
        assert_eq!(service.nearest_place(&q), Some(p(46.21, 6.13)));
        assert!(service.nearest_distance(&q).unwrap() < 2_000.0);
    }

    #[test]
    fn empty_service_returns_none() {
        let service = LocationSearchService::new(vec![]);
        assert!(service.nearest_place(&p(46.2, 6.1)).is_none());
        assert!(service.nearest_distance(&p(46.2, 6.1)).is_none());
    }

    #[test]
    fn end_to_end_private_query_is_accurate() {
        // the full TRL protocol: user never reveals `me`, still gets the
        // exact nearest place
        let place = p(46.205, 6.145);
        let service = LocationSearchService::new(vec![place]);
        let me = p(46.2001, 6.1402);
        let trl = Trl::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let anchors = trl.assisted_locations(&me, &mut rng);
            let ds = [
                service.nearest_distance(&anchors[0]).unwrap(),
                service.nearest_distance(&anchors[1]).unwrap(),
                service.nearest_distance(&anchors[2]).unwrap(),
            ];
            if let Some(rec) = trilaterate(&anchors, &ds) {
                let err = rec.haversine_distance(&place);
                assert!(err < 10.0, "recovered place off by {err} m");
                // exact private distance:
                let true_d = me.haversine_distance(&place);
                let est_d = me.haversine_distance(&rec);
                assert!((true_d - est_d).abs() < 10.0);
            }
        }
    }
}
