use std::sync::Arc;

use rand::RngCore;

use mood_models::TraceRaster;
use mood_trace::{Record, Trace};

use crate::Lppm;

/// An ordered composition of LPPMs (paper Eq. 3):
///
/// ```text
/// C_p(L_ik)(T) = L_ip ∘ L_ip−1 ∘ ... ∘ L_i1 (T)
/// ```
///
/// The first mechanism in `parts` is applied first; order matters, just
/// like function composition.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mood_lppm::{Composition, GeoI, Lppm, Trl};
/// use mood_synth::presets;
/// use rand::SeedableRng;
///
/// let chain = Composition::new(vec![
///     Arc::new(GeoI::paper_default()) as Arc<dyn Lppm>,
///     Arc::new(Trl::paper_default()),
/// ]);
/// assert_eq!(chain.name(), "Geo-I→TRL");
///
/// let ds = presets::privamov_like().scaled(0.1).generate();
/// let trace = ds.iter().next().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let protected = chain.protect(trace, &mut rng);
/// assert_eq!(protected.len(), trace.len() * 3); // TRL tripled last
/// ```
pub struct Composition {
    parts: Vec<Arc<dyn Lppm>>,
    name: String,
}

impl Composition {
    /// Creates a composition applying `parts` left to right.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty.
    pub fn new(parts: Vec<Arc<dyn Lppm>>) -> Self {
        assert!(!parts.is_empty(), "composition needs at least one LPPM");
        let name = parts
            .iter()
            .map(|p| p.name().to_string())
            .collect::<Vec<_>>()
            .join("→");
        Self { parts, name }
    }

    /// Number of chained mechanisms.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `false`: compositions are never empty (checked at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The chained mechanisms, in application order.
    pub fn parts(&self) -> &[Arc<dyn Lppm>] {
        &self.parts
    }
}

impl Lppm for Composition {
    fn name(&self) -> &str {
        &self.name
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let mut current = self.parts[0].protect(trace, rng);
        for part in &self.parts[1..] {
            current = part.protect(&current, rng);
        }
        current
    }

    /// Chained [`Lppm::protect_into`]. Like every implementation of the
    /// trait method, `out` is **cleared, then filled** — stale contents
    /// of a recycled buffer never leak into (or get appended to) the
    /// protected output, whichever mechanism runs last in the chain.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use mood_lppm::{Composition, GeoI, Lppm, Trl};
    /// use mood_synth::presets;
    /// use rand::SeedableRng;
    ///
    /// let chain = Composition::new(vec![
    ///     Arc::new(GeoI::paper_default()) as Arc<dyn Lppm>,
    ///     Arc::new(Trl::paper_default()),
    /// ]);
    /// let ds = presets::privamov_like().scaled(0.1).generate();
    /// let trace = ds.iter().next().unwrap();
    ///
    /// let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
    /// let expected = chain.protect(trace, &mut r1).into_records();
    ///
    /// // a dirty recycled buffer is replaced, not appended to
    /// let mut out = vec![expected[0]; 7];
    /// let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
    /// chain.protect_into(trace, &mut r2, &mut out);
    /// assert_eq!(out, expected);
    /// ```
    fn protect_into(&self, trace: &Trace, rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        // Intermediate stages still build owned traces (each part needs
        // a `&Trace` input), but the final — typically largest — stage
        // writes into the caller's reusable buffer.
        let (last, init) = self
            .parts
            .split_last()
            .expect("compositions are never empty");
        let mut current: Option<Trace> = None;
        for part in init {
            current = Some(part.protect(current.as_ref().unwrap_or(trace), rng));
        }
        last.protect_into(current.as_ref().unwrap_or(trace), rng, out);
    }

    /// Chained fast path: the shared rasterization cache is threaded
    /// through **every** stage, so an HMC anywhere in the chain shares
    /// rasterizations with the attack side (HMC-first chains re-raster
    /// the raw trace the suite already scored).
    fn protect_into_with(
        &self,
        trace: &Trace,
        rng: &mut dyn RngCore,
        out: &mut Vec<Record>,
        raster: &mut TraceRaster,
    ) {
        let (last, init) = self
            .parts
            .split_last()
            .expect("compositions are never empty");
        let mut current: Option<Trace> = None;
        let mut buf = Vec::new();
        for part in init {
            let input = current.as_ref().unwrap_or(trace);
            part.protect_into_with(input, rng, &mut buf, raster);
            // protect_into yields exactly protect's records (time-sorted),
            // so rebuilding the trace is an identity pass
            current = Some(
                Trace::new(input.user(), std::mem::take(&mut buf))
                    .expect("LPPMs never produce an empty trace"),
            );
        }
        last.protect_into_with(current.as_ref().unwrap_or(trace), rng, out, raster);
    }
}

/// Enumerates every ordered composition of distinct mechanisms from
/// `base` with length in `[min_len, max_len]` — the search space `C` of
/// MooD's Multi-LPPM Composition Search.
///
/// The count over all lengths 1..=n is `Σ_{i=1..n} n!/(n−i)!` (paper
/// §3.1): 15 for n = 3. MooD's Algorithm 1 searches singles first
/// (`min_len = max_len = 1`) and then the proper compositions
/// (`min_len = 2`).
///
/// Enumeration order is deterministic: shorter compositions first, then
/// lexicographic by base index — so "the best protecting variant" is
/// reproducible across runs.
///
/// # Panics
///
/// Panics when `base` is empty, `min_len` is zero, or
/// `min_len > max_len`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mood_lppm::{enumerate_compositions, GeoI, Hmc, Lppm, Trl};
///
/// let base: Vec<Arc<dyn Lppm>> = vec![
///     Arc::new(GeoI::paper_default()),
///     Arc::new(Trl::paper_default()),
/// ];
/// // n = 2: 2 singles + 2 ordered pairs = 4
/// let all = enumerate_compositions(&base, 1, 2);
/// assert_eq!(all.len(), 4);
/// let pairs = enumerate_compositions(&base, 2, 2);
/// assert_eq!(pairs.len(), 2);
/// ```
pub fn enumerate_compositions(
    base: &[Arc<dyn Lppm>],
    min_len: usize,
    max_len: usize,
) -> Vec<Composition> {
    assert!(!base.is_empty(), "need at least one base LPPM");
    assert!(min_len >= 1, "min_len must be at least 1");
    assert!(min_len <= max_len, "min_len must not exceed max_len");
    let max_len = max_len.min(base.len());
    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    // Depth-first enumeration of arrangements, emitting by length order:
    // collect per length to keep "shorter first".
    let mut by_len: Vec<Vec<Vec<usize>>> = vec![Vec::new(); max_len + 1];
    fn recurse(
        base_len: usize,
        max_len: usize,
        stack: &mut Vec<usize>,
        by_len: &mut Vec<Vec<Vec<usize>>>,
    ) {
        if stack.len() == max_len {
            return;
        }
        for i in 0..base_len {
            if stack.contains(&i) {
                continue;
            }
            stack.push(i);
            by_len[stack.len()].push(stack.clone());
            recurse(base_len, max_len, stack, by_len);
            stack.pop();
        }
    }
    recurse(base.len(), max_len, &mut stack, &mut by_len);
    for arrangements in by_len.iter().take(max_len + 1).skip(min_len) {
        for arrangement in arrangements {
            out.push(Composition::new(
                arrangement.iter().map(|&i| base[i].clone()).collect(),
            ));
        }
    }
    out
}

/// The size of the full composition space for `n` base LPPMs:
/// `Σ_{i=1..n} n!/(n−i)!` (paper §3.1).
pub fn composition_space_size(n: usize) -> usize {
    let mut total = 0usize;
    for i in 1..=n {
        // n!/(n-i)! = n * (n-1) * ... * (n-i+1)
        let mut arrangements = 1usize;
        for k in 0..i {
            arrangements *= n - k;
        }
        total += arrangements;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeoI, Trl};
    use mood_geo::GeoPoint;
    use mood_trace::{Record, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base3() -> Vec<Arc<dyn Lppm>> {
        vec![
            Arc::new(GeoI::paper_default()) as Arc<dyn Lppm>,
            Arc::new(Trl::paper_default()),
            Arc::new(GeoI::new(0.001)), // stands in for HMC (needs no background)
        ]
    }

    fn walk(n: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    GeoPoint::new(46.2, 6.1).unwrap(),
                    Timestamp::from_unix(i * 600),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn paper_count_for_three_lppms() {
        // |C| = 3 + 6 + 6 = 15 (paper §3.3: "for n = 3 ... |C| = 15")
        assert_eq!(composition_space_size(3), 15);
        assert_eq!(enumerate_compositions(&base3(), 1, 3).len(), 15);
        // C - L (compositions of at least 2): 12
        assert_eq!(enumerate_compositions(&base3(), 2, 3).len(), 12);
        // singles only
        assert_eq!(enumerate_compositions(&base3(), 1, 1).len(), 3);
    }

    #[test]
    fn space_size_formula() {
        assert_eq!(composition_space_size(1), 1);
        assert_eq!(composition_space_size(2), 4);
        assert_eq!(composition_space_size(4), 4 + 12 + 24 + 24);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        // base with unique names (two GeoI configs share the "Geo-I"
        // name, so use the two distinct mechanisms here)
        let base: Vec<Arc<dyn Lppm>> = vec![
            Arc::new(GeoI::paper_default()),
            Arc::new(Trl::paper_default()),
        ];
        let all = enumerate_compositions(&base, 1, 2);
        let names: std::collections::HashSet<String> =
            all.iter().map(|c| c.name().to_string()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn enumeration_is_shorter_first() {
        let all = enumerate_compositions(&base3(), 1, 3);
        let lens: Vec<usize> = all.iter().map(Composition::len).collect();
        let mut sorted = lens.clone();
        sorted.sort();
        assert_eq!(lens, sorted);
    }

    #[test]
    fn composition_name_is_chain() {
        let c = Composition::new(vec![
            Arc::new(GeoI::paper_default()) as Arc<dyn Lppm>,
            Arc::new(Trl::paper_default()),
        ]);
        assert_eq!(c.name(), "Geo-I→TRL");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn order_matters_in_output_shape() {
        let t = walk(10);
        let geoi_then_trl = Composition::new(vec![
            Arc::new(GeoI::paper_default()) as Arc<dyn Lppm>,
            Arc::new(Trl::paper_default()),
        ]);
        let trl_then_geoi = Composition::new(vec![
            Arc::new(Trl::paper_default()) as Arc<dyn Lppm>,
            Arc::new(GeoI::paper_default()),
        ]);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = geoi_then_trl.protect(&t, &mut r1);
        let b = trl_then_geoi.protect(&t, &mut r2);
        // both triple the record count but produce different point sets
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 30);
        assert_ne!(a, b);
    }

    #[test]
    fn protect_into_clears_stale_contents_for_every_mechanism() {
        // The cleared-then-filled contract, regression-tested across the
        // default impl, per-record overrides and the composition: a
        // recycled buffer pre-seeded with junk must come back holding
        // exactly what `protect` returns — one stale record appended
        // would silently corrupt every downstream verdict.
        let t = walk(10);
        let junk = Record::new(
            GeoPoint::new(10.0, 10.0).unwrap(),
            Timestamp::from_unix(-999),
        );
        let mechanisms: Vec<Arc<dyn Lppm>> = {
            let mut v = base3();
            v.push(Arc::new(Composition::new(base3())));
            v.push(Arc::new(Composition::new(vec![
                Arc::new(Trl::paper_default()) as Arc<dyn Lppm>,
                Arc::new(GeoI::paper_default()),
            ])));
            v
        };
        for lppm in mechanisms {
            let mut r1 = StdRng::seed_from_u64(42);
            let expected = lppm.protect(&t, &mut r1).into_records();
            for stale_len in [0usize, 3, 64] {
                let mut out = vec![junk; stale_len];
                let mut r2 = StdRng::seed_from_u64(42);
                lppm.protect_into(&t, &mut r2, &mut out);
                assert_eq!(
                    out,
                    expected,
                    "{} with {stale_len} stale records",
                    lppm.name()
                );
                // the raster-threaded variant honours the same contract
                let mut out = vec![junk; stale_len];
                let mut raster = mood_models::TraceRaster::new();
                let mut r3 = StdRng::seed_from_u64(42);
                lppm.protect_into_with(&t, &mut r3, &mut out, &mut raster);
                assert_eq!(out, expected, "{} (with raster)", lppm.name());
            }
        }
    }

    #[test]
    fn composition_equals_manual_chaining() {
        let t = walk(10);
        let g = GeoI::paper_default();
        let trl = Trl::paper_default();
        let chain = Composition::new(vec![Arc::new(g) as Arc<dyn Lppm>, Arc::new(trl)]);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let composed = chain.protect(&t, &mut r1);
        let manual = trl.protect(&g.protect(&t, &mut r2), &mut r2);
        assert_eq!(composed, manual);
    }

    #[test]
    #[should_panic(expected = "at least one LPPM")]
    fn empty_composition_rejected() {
        Composition::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "min_len must be at least 1")]
    fn zero_min_len_rejected() {
        enumerate_compositions(&base3(), 0, 3);
    }
}
