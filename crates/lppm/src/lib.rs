//! Location Privacy Protection Mechanisms (paper §2.3 and §4.1.2).
//!
//! An LPPM transforms a raw mobility trace into an obfuscated one:
//!
//! ```text
//! L : (R² × R⁺)* → (R² × R⁺)*,   T ↦ L(Υ, T) = T'
//! ```
//!
//! Three representative mechanisms are implemented with the paper's
//! configuration:
//!
//! * [`GeoI`] — Geo-indistinguishability (Andrés et al. 2013): planar
//!   Laplace noise per record, ε = 0.01 m⁻¹ ("medium privacy");
//! * [`Trl`] — Trilateration dummies (Huang et al. 2018): each record is
//!   replaced by 3 assisted locations within r = 1 km; the [`lss`] module
//!   demonstrates the accurate-service property (exact distance recovery
//!   by trilateration);
//! * [`Hmc`] — HeatMap Confusion (Maouche et al. 2018): the trace's
//!   heatmap is made to look like another user's (the *decoy*) by
//!   rank-matched cell remapping, then re-materialized as a trace.
//!
//! Beyond the paper's evaluated set, [`SpatialCloaking`] implements the
//! generalization family (k-anonymity-style cell snapping) — the
//! extension hook the paper names in §6.
//!
//! [`Composition`] applies several LPPMs in sequence (function
//! composition, Eq. 3) and [`enumerate_compositions`] generates the full
//! search space `C` of MooD's Multi-LPPM Composition Search
//! (|C| = Σᵢ n!/(n−i)! = 15 for n = 3).
//!
//! Every mechanism is deterministic given its RNG, so whole experiment
//! runs reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cloaking;
mod composition;
mod geo_i;
mod hmc;
pub mod lss;
mod trl;

pub use cloaking::SpatialCloaking;
pub use composition::{composition_space_size, enumerate_compositions, Composition};
pub use geo_i::GeoI;
pub use hmc::Hmc;
pub use trl::Trl;

use std::sync::Arc;

use rand::RngCore;

use mood_models::TraceRaster;
use mood_trace::{Record, Trace};

/// A Location Privacy Protection Mechanism.
///
/// Implementations must be deterministic given the RNG: calling
/// [`Lppm::protect`] with an identically-seeded RNG must produce an
/// identical trace. The output trace keeps the input's user ID (the
/// ground truth MooD evaluates against).
pub trait Lppm: Send + Sync {
    /// Short mechanism name ("Geo-I", "TRL", "HMC", or a composition
    /// chain like "HMC→Geo-I").
    fn name(&self) -> &str;

    /// Produces the obfuscated version of `trace`.
    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace;

    /// Writes the obfuscated records of `trace` into `out`, replacing
    /// its previous contents — the buffer-reusing twin of
    /// [`Lppm::protect`] for hot loops (MooD evaluates thousands of
    /// candidates per orphan user; per-record mechanisms like Geo-I
    /// override this to fill the caller's buffer in place and allocate
    /// nothing once the buffer has warmed up).
    ///
    /// The contract is exact equivalence: the same RNG draws in the
    /// same order, and `out` holding precisely the records `protect`
    /// would have returned (time-sorted, per the [`Trace`] invariant).
    /// In particular `out` is **cleared, then filled**: whatever it held
    /// before the call is discarded, never appended to — callers may
    /// hand in a dirty recycled buffer. The default implementation
    /// delegates to `protect` and moves the resulting buffer out, so
    /// implementations only override it when they can genuinely reuse
    /// `out`'s capacity.
    ///
    /// ```
    /// use mood_lppm::{GeoI, Lppm};
    /// use mood_synth::presets;
    /// use rand::SeedableRng;
    ///
    /// let ds = presets::privamov_like().scaled(0.1).generate();
    /// let trace = ds.iter().next().unwrap();
    /// let geoi = GeoI::paper_default();
    ///
    /// let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
    /// let expected = geoi.protect(trace, &mut r1).into_records();
    ///
    /// // a recycled buffer full of stale records...
    /// let mut out = vec![expected[0]; 5];
    /// let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
    /// geoi.protect_into(trace, &mut r2, &mut out);
    /// // ...is cleared then filled: prior contents never leak through
    /// assert_eq!(out, expected);
    /// ```
    fn protect_into(&self, trace: &Trace, rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        *out = self.protect(trace, rng).into_records();
    }

    /// [`Lppm::protect_into`] with access to the caller's shared
    /// [`TraceRaster`] — the per-worker `(grid, trace) → cell-sequence`
    /// cache that attack scoring uses on the same scratch arena.
    /// Grid-based mechanisms (HMC) override this so rasterizing the
    /// input trace is shared with — or served by — the attack side;
    /// everything else ignores the cache. Same exact-equivalence
    /// contract as `protect_into` (cache hits are verified by full
    /// record comparison, so outputs are bit-identical either way).
    fn protect_into_with(
        &self,
        trace: &Trace,
        rng: &mut dyn RngCore,
        out: &mut Vec<Record>,
        raster: &mut TraceRaster,
    ) {
        let _ = raster;
        self.protect_into(trace, rng, out);
    }
}

impl<T: Lppm + ?Sized> Lppm for Arc<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        (**self).protect(trace, rng)
    }

    fn protect_into(&self, trace: &Trace, rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        (**self).protect_into(trace, rng, out)
    }

    fn protect_into_with(
        &self,
        trace: &Trace,
        rng: &mut dyn RngCore,
        out: &mut Vec<Record>,
        raster: &mut TraceRaster,
    ) {
        (**self).protect_into_with(trace, rng, out, raster)
    }
}
