use std::collections::BTreeMap;

use rand::{Rng, RngCore};

use mood_geo::{CellId, Grid};
use mood_models::Heatmap;
use mood_trace::{Dataset, Trace, UserId};

use crate::Lppm;

/// HeatMap Confusion (Maouche et al. 2018, the paper's \[23\]): the LPPM
/// designed specifically against re-identification attacks.
///
/// HMC represents the trace as a heatmap, alters it to *look like another
/// user's* (the **decoy**), and materializes the altered heatmap back
/// into a trace. Our rendition (design rationale in DESIGN.md):
///
/// 1. the decoy is the background user whose heatmap has the smallest
///    Topsoe divergence from the trace's own heatmap (most confusable
///    profile, which also minimizes utility loss);
/// 2. cells are remapped by **rank matching**: the trace's k-th hottest
///    cell maps to the decoy's k-th hottest cell, preserving the shape of
///    the frequency distribution;
/// 3. the trace is rebuilt run by run: each maximal run of consecutive
///    records in one cell moves to the mapped cell with probability
///    `confusion` (keeping its in-cell offsets), or stays in place.
///    Whole runs move together so dwell/trajectory structure survives —
///    and the residual own-structure is exactly why HMC is not a silver
///    bullet against POI-based attacks (paper Fig. 7).
///
/// The paper configures HMC with 800 m cells, matching the original
/// HMC paper (§4.1.2).
///
/// # Examples
///
/// ```
/// use mood_lppm::{Hmc, Lppm};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
/// use rand::SeedableRng;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let hmc = Hmc::paper_default(&background);
/// let trace = test.iter().next().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let protected = hmc.protect(trace, &mut rng);
/// assert_eq!(protected.len(), trace.len());
/// ```
pub struct Hmc {
    grid: Grid,
    population: Vec<(UserId, Heatmap)>,
    confusion: f64,
}

impl Hmc {
    /// Creates an HMC mechanism over `grid`, imitating profiles drawn
    /// from `background` (the same background knowledge the attacks
    /// train on — MooD's system model gives the protector access to past
    /// traces, §3.1).
    ///
    /// `confusion` is the probability that a cell-run is remapped
    /// (1.0 = move everything; the original system's utility constraints
    /// leave residual structure, modeled by values < 1).
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty or `confusion ∉ [0, 1]`.
    pub fn new(grid: Grid, background: &Dataset, confusion: f64) -> Self {
        assert!(!background.is_empty(), "HMC needs a background population");
        assert!(
            (0.0..=1.0).contains(&confusion),
            "confusion must be in [0, 1]"
        );
        let population = background
            .iter()
            .map(|t| (t.user(), Heatmap::from_trace(&grid, t)))
            .collect();
        Self {
            grid,
            population,
            confusion,
        }
    }

    /// The paper's configuration: 800 m cells over the background's
    /// extent, confusion 0.55 (calibrated so HMC's residual own-structure
    /// leaves roughly the paper's share of users exposed to POI/PIT
    /// attacks — the original HMC's utility constraints have the same
    /// effect).
    pub fn paper_default(background: &Dataset) -> Self {
        let bbox = background
            .bounding_box()
            .expect("non-empty background")
            .expanded(2_000.0)
            .expect("non-negative margin");
        let grid = Grid::new(bbox, 800.0).expect("valid cell size");
        Self::new(grid, background, 0.55)
    }

    /// The grid the heatmaps live on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The decoy for `trace`: the background user (≠ the trace's user)
    /// whose profile is Topsoe-closest to the trace's heatmap. `None`
    /// when the only background user is the trace's own.
    pub fn choose_decoy(&self, trace: &Trace) -> Option<(UserId, &Heatmap)> {
        let own = Heatmap::from_trace(&self.grid, trace);
        self.population
            .iter()
            .filter(|(u, _)| *u != trace.user())
            .map(|(u, hm)| (*u, hm, own.topsoe(hm).unwrap_or(f64::INFINITY)))
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite or inf"))
            .map(|(u, hm, _)| (u, hm))
    }

    /// The rank-matching cell map from `own` onto `decoy`: own k-th
    /// hottest cell → decoy k-th hottest cell (wrapping when the decoy
    /// has fewer cells).
    fn rank_map(own: &Heatmap, decoy: &Heatmap) -> BTreeMap<CellId, CellId> {
        let own_ranked = own.ranked_cells();
        let decoy_ranked = decoy.ranked_cells();
        let mut map = BTreeMap::new();
        if decoy_ranked.is_empty() {
            return map;
        }
        for (k, (cell, _)) in own_ranked.iter().enumerate() {
            let target = decoy_ranked[k % decoy_ranked.len()].0;
            map.insert(*cell, target);
        }
        map
    }
}

impl Lppm for Hmc {
    fn name(&self) -> &str {
        "HMC"
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let Some((_, decoy_hm)) = self.choose_decoy(trace) else {
            // No decoy available (single-user population): nothing to
            // imitate; return the trace unchanged.
            return trace.clone();
        };
        let own = Heatmap::from_trace(&self.grid, trace);
        let map = Self::rank_map(&own, decoy_hm);

        let mut records = Vec::with_capacity(trace.len());
        let mut i = 0;
        let rs = trace.records();
        while i < rs.len() {
            // maximal run of consecutive records in the same cell
            let cell = self.grid.cell_of(&rs[i].point());
            let mut j = i + 1;
            while j < rs.len() && self.grid.cell_of(&rs[j].point()) == cell {
                j += 1;
            }
            let move_run = rng.gen::<f64>() < self.confusion;
            let target = map.get(&cell).copied().unwrap_or(cell);
            for r in &rs[i..j] {
                if move_run && target != cell {
                    let (fy, fx) = self.grid.fraction_in_cell(&r.point());
                    records.push(r.with_point(self.grid.point_in_cell(target, fy, fx)));
                } else {
                    records.push(*r);
                }
            }
            i = j;
        }
        Trace::new(trace.user(), records).expect("same cardinality as input")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, TimeDelta, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn dwell_trace(user: u64, lat: f64, lng: f64, n: i64) -> Trace {
        let records: Vec<Record> = (0..n).map(|i| rec(lat, lng, i * 600)).collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn background() -> Dataset {
        Dataset::from_traces([
            dwell_trace(1, 46.16, 6.06, 60),
            dwell_trace(2, 46.25, 6.20, 60),
            dwell_trace(3, 46.20, 6.12, 60),
        ])
        .unwrap()
    }

    #[test]
    fn preserves_cardinality_and_timestamps() {
        let hmc = Hmc::paper_default(&background());
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(1);
        let p = hmc.protect(&t, &mut rng);
        assert_eq!(p.len(), t.len());
        for (a, b) in t.records().iter().zip(p.records()) {
            assert_eq!(a.time(), b.time());
        }
    }

    #[test]
    fn decoy_is_nearest_other_profile() {
        let hmc = Hmc::paper_default(&background());
        // user 1's trace: nearest other profile is user 3 (8 km away)
        // rather than user 2 (~14 km)... with disjoint supports Topsoe
        // saturates, so any non-self decoy is acceptable; assert non-self.
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let (decoy, _) = hmc.choose_decoy(&t).unwrap();
        assert_ne!(decoy, UserId::new(1));
    }

    #[test]
    fn decoy_prefers_overlapping_profile() {
        // user 9's background overlaps user 1's cell exactly
        let mut bg = background();
        bg.insert(dwell_trace(9, 46.1601, 6.0601, 60)).unwrap();
        let hmc = Hmc::paper_default(&bg);
        let t = dwell_trace(1, 46.1602, 6.0602, 40);
        let (decoy, _) = hmc.choose_decoy(&t).unwrap();
        assert_eq!(decoy, UserId::new(9));
    }

    #[test]
    fn full_confusion_moves_all_mass_to_decoy_cells() {
        let bg = background();
        let bbox = bg.bounding_box().unwrap().expanded(2_000.0).unwrap();
        let grid = Grid::new(bbox, 800.0).unwrap();
        let hmc = Hmc::new(grid.clone(), &bg, 1.0);
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(2);
        let p = hmc.protect(&t, &mut rng);
        let (decoy, decoy_hm) = hmc.choose_decoy(&t).unwrap();
        assert_ne!(decoy, UserId::new(1));
        // every protected record lands in a decoy-occupied cell
        let decoy_cells: std::collections::BTreeSet<CellId> =
            decoy_hm.cells().keys().copied().collect();
        for r in p.records() {
            assert!(decoy_cells.contains(&grid.cell_of(&r.point())));
        }
    }

    #[test]
    fn zero_confusion_is_identity() {
        let bg = background();
        let bbox = bg.bounding_box().unwrap().expanded(2_000.0).unwrap();
        let grid = Grid::new(bbox, 800.0).unwrap();
        let hmc = Hmc::new(grid, &bg, 0.0);
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(hmc.protect(&t, &mut rng), t);
    }

    #[test]
    fn single_user_population_returns_unchanged() {
        let bg = Dataset::from_traces([dwell_trace(1, 46.16, 6.06, 60)]).unwrap();
        let hmc = Hmc::paper_default(&bg);
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(hmc.protect(&t, &mut rng), t);
        assert!(hmc.choose_decoy(&t).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let hmc = Hmc::paper_default(&background());
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(hmc.protect(&t, &mut r1), hmc.protect(&t, &mut r2));
    }

    #[test]
    #[should_panic(expected = "background")]
    fn rejects_empty_background() {
        Hmc::paper_default(&Dataset::new());
    }

    #[test]
    #[should_panic(expected = "confusion must be")]
    fn rejects_bad_confusion() {
        let bg = background();
        let bbox = bg.bounding_box().unwrap();
        let grid = Grid::new(bbox, 800.0).unwrap();
        Hmc::new(grid, &bg, 1.5);
    }

    #[test]
    fn confuses_ap_style_matching_on_synthetic_data() {
        // 0.4 scale = 16 users: small enough for CI, large enough that
        // the majority claim is not dominated by per-user noise.
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.4).generate();
        let (bg, test) = ds.split_chronological(TimeDelta::from_days(15));
        let hmc = Hmc::paper_default(&bg);
        let grid = hmc.grid().clone();
        let mut rng = StdRng::seed_from_u64(5);
        // count how many users' protected traces are still closest to
        // their own background heatmap
        let profiles: Vec<(UserId, Heatmap)> = bg
            .iter()
            .map(|t| (t.user(), Heatmap::from_trace(&grid, t)))
            .collect();
        let mut own_wins = 0;
        let mut total = 0;
        for trace in test.iter() {
            let p = hmc.protect(trace, &mut rng);
            let anon = Heatmap::from_trace(&grid, &p);
            let best = profiles
                .iter()
                .min_by(|a, b| {
                    anon.topsoe(&a.1)
                        .unwrap()
                        .partial_cmp(&anon.topsoe(&b.1).unwrap())
                        .unwrap()
                })
                .unwrap();
            total += 1;
            if best.0 == trace.user() {
                own_wins += 1;
            }
        }
        // HMC should defeat heatmap matching for the clear majority
        assert!(
            own_wins * 3 <= total,
            "HMC left {own_wins}/{total} users re-identifiable by heatmap"
        );
    }
}
