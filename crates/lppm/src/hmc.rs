use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::{Rng, RngCore};

use mood_geo::{CellId, Grid};
use mood_models::{Heatmap, TraceRaster};
use mood_trace::{Dataset, Record, Trace, UserId};

use crate::Lppm;

/// HeatMap Confusion (Maouche et al. 2018, the paper's \[23\]): the LPPM
/// designed specifically against re-identification attacks.
///
/// HMC represents the trace as a heatmap, alters it to *look like another
/// user's* (the **decoy**), and materializes the altered heatmap back
/// into a trace. Our rendition (design rationale in DESIGN.md):
///
/// 1. the decoy is the background user whose heatmap has the smallest
///    Topsoe divergence from the trace's own heatmap (most confusable
///    profile, which also minimizes utility loss);
/// 2. cells are remapped by **rank matching**: the trace's k-th hottest
///    cell maps to the decoy's k-th hottest cell, preserving the shape of
///    the frequency distribution;
/// 3. the trace is rebuilt run by run: each maximal run of consecutive
///    records in one cell moves to the mapped cell with probability
///    `confusion` (keeping its in-cell offsets), or stays in place.
///    Whole runs move together so dwell/trajectory structure survives —
///    and the residual own-structure is exactly why HMC is not a silver
///    bullet against POI-based attacks (paper Fig. 7).
///
/// The paper configures HMC with 800 m cells, matching the original
/// HMC paper (§4.1.2).
///
/// # Examples
///
/// ```
/// use mood_lppm::{Hmc, Lppm};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
/// use rand::SeedableRng;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let hmc = Hmc::paper_default(&background);
/// let trace = test.iter().next().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let protected = hmc.protect(trace, &mut rng);
/// assert_eq!(protected.len(), trace.len());
/// ```
pub struct Hmc {
    grid: Grid,
    population: Vec<(UserId, Heatmap)>,
    confusion: f64,
    /// Verified cache of recent protection *plans* (decoy choice +
    /// rank-matching cell map per `(user, own heatmap)`); see
    /// [`PlanCache`].
    plans: Mutex<PlanCache>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

/// One cached protection plan: everything derivable from the trace's own
/// heatmap. The heatmap is stored so a hit can be **verified exactly**
/// (same user, equal heatmap ⇒ same decoy and same rank map, because
/// both are pure functions of them) — never keyed by fingerprint.
struct HmcPlan {
    user: UserId,
    own: Heatmap,
    /// Index into `population`, `None` when no decoy exists (the
    /// single-user case: the trace passes through unchanged).
    decoy_idx: Option<usize>,
    /// Rank-matching cell map, sorted by source cell for binary search.
    map: Vec<(CellId, CellId)>,
}

/// The candidate hot path applies HMC to the same trace many times (the
/// raw trace heads five of the fifteen paper variants), and the decoy
/// scan — a Topsoe pass over the whole background population — dominates
/// each application. A handful of verified plans, plus a scratch heatmap
/// reused across lookups, turns the repeats into a heatmap rebuild and
/// an equality check. Lookups `try_lock`; on contention the plan is
/// computed fresh — outputs are identical either way, only the reuse
/// counter differs.
struct PlanCache {
    scratch: Heatmap,
    ranked_scratch: Vec<(CellId, f64)>,
    plans: Vec<HmcPlan>,
    next_evict: usize,
}

/// How many plans stay resident: covers several users' candidate walks
/// interleaving on one engine (pipeline workers share the `Hmc`).
const PLAN_CAPACITY: usize = 8;

impl Hmc {
    /// Creates an HMC mechanism over `grid`, imitating profiles drawn
    /// from `background` (the same background knowledge the attacks
    /// train on — MooD's system model gives the protector access to past
    /// traces, §3.1).
    ///
    /// `confusion` is the probability that a cell-run is remapped
    /// (1.0 = move everything; the original system's utility constraints
    /// leave residual structure, modeled by values < 1).
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty or `confusion ∉ [0, 1]`.
    pub fn new(grid: Grid, background: &Dataset, confusion: f64) -> Self {
        assert!(!background.is_empty(), "HMC needs a background population");
        assert!(
            (0.0..=1.0).contains(&confusion),
            "confusion must be in [0, 1]"
        );
        let population = background
            .iter()
            .map(|t| (t.user(), Heatmap::from_trace(&grid, t)))
            .collect();
        Self {
            grid,
            population,
            confusion,
            plans: Mutex::new(PlanCache {
                scratch: Heatmap::new(),
                ranked_scratch: Vec::new(),
                plans: Vec::new(),
                next_evict: 0,
            }),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
        }
    }

    /// The paper's configuration: 800 m cells over the background's
    /// extent, confusion 0.55 (calibrated so HMC's residual own-structure
    /// leaves roughly the paper's share of users exposed to POI/PIT
    /// attacks — the original HMC's utility constraints have the same
    /// effect).
    pub fn paper_default(background: &Dataset) -> Self {
        let bbox = background
            .bounding_box()
            .expect("non-empty background")
            .expanded(2_000.0)
            .expect("non-negative margin");
        let grid = Grid::new(bbox, 800.0).expect("valid cell size");
        Self::new(grid, background, 0.55)
    }

    /// The grid the heatmaps live on.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The decoy for `trace`: the background user (≠ the trace's user)
    /// whose profile is Topsoe-closest to the trace's heatmap. `None`
    /// when the only background user is the trace's own.
    pub fn choose_decoy(&self, trace: &Trace) -> Option<(UserId, &Heatmap)> {
        let own = Heatmap::from_trace(&self.grid, trace);
        self.decoy_for(trace.user(), &own)
            .map(|i| (self.population[i].0, &self.population[i].1))
    }

    /// Protection plans served from the verified cache so far (decoy
    /// scan and rank-map construction skipped).
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_hits.load(Ordering::Relaxed)
    }

    /// Protection plans computed fresh so far (cache miss or lock
    /// contention).
    pub fn plan_cache_misses(&self) -> u64 {
        self.plan_misses.load(Ordering::Relaxed)
    }

    /// Index of the decoy in `population` for a trace of `user` with
    /// heatmap `own` — the pure function the plan cache memoizes.
    fn decoy_for(&self, user: UserId, own: &Heatmap) -> Option<usize> {
        self.population
            .iter()
            .enumerate()
            .filter(|(_, (u, _))| *u != user)
            .map(|(i, (_, hm))| (i, own.topsoe(hm).unwrap_or(f64::INFINITY)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite or inf"))
            .map(|(i, _)| i)
    }

    /// Builds the rank-matching cell map from `own` onto the decoy: own
    /// k-th hottest cell → decoy k-th hottest cell (wrapping when the
    /// decoy has fewer cells). `map` comes back sorted by source cell;
    /// `ranked` is a reusable ranking buffer.
    fn build_rank_map(
        &self,
        own: &Heatmap,
        decoy_idx: Option<usize>,
        ranked: &mut Vec<(CellId, f64)>,
        map: &mut Vec<(CellId, CellId)>,
    ) {
        map.clear();
        let Some(decoy_idx) = decoy_idx else { return };
        let decoy_ranked = self.population[decoy_idx].1.ranked_cells();
        if decoy_ranked.is_empty() {
            return;
        }
        own.ranked_cells_into(ranked);
        map.extend(
            ranked
                .iter()
                .enumerate()
                .map(|(k, (cell, _))| (*cell, decoy_ranked[k % decoy_ranked.len()].0)),
        );
        map.sort_by_key(|e| e.0);
    }

    /// The shared protection body: given the trace's pre-rasterized cell
    /// sequence, resolve the plan (cached or fresh) and rebuild the
    /// records run by run into `out`.
    fn apply(&self, trace: &Trace, cells: &[CellId], rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        out.clear();
        out.reserve(trace.len());
        match self.plans.try_lock() {
            Ok(mut guard) => {
                let cache = &mut *guard;
                let mut own = std::mem::take(&mut cache.scratch);
                own.rebuild_from_cells(cells);
                if let Some(i) = cache
                    .plans
                    .iter()
                    .position(|p| p.user == trace.user() && p.own == own)
                {
                    self.plan_hits.fetch_add(1, Ordering::Relaxed);
                    let plan = &cache.plans[i];
                    self.rebuild_records(trace, cells, plan.decoy_idx, &plan.map, rng, out);
                    cache.scratch = own;
                    return;
                }
                self.plan_misses.fetch_add(1, Ordering::Relaxed);
                let decoy_idx = self.decoy_for(trace.user(), &own);
                let slot = if cache.plans.len() < PLAN_CAPACITY {
                    cache.plans.push(HmcPlan {
                        user: trace.user(),
                        own: Heatmap::new(),
                        decoy_idx,
                        map: Vec::new(),
                    });
                    cache.plans.len() - 1
                } else {
                    let slot = cache.next_evict;
                    cache.next_evict = (cache.next_evict + 1) % PLAN_CAPACITY;
                    cache.plans[slot].user = trace.user();
                    cache.plans[slot].decoy_idx = decoy_idx;
                    slot
                };
                let mut ranked = std::mem::take(&mut cache.ranked_scratch);
                let mut map = std::mem::take(&mut cache.plans[slot].map);
                self.build_rank_map(&own, decoy_idx, &mut ranked, &mut map);
                self.rebuild_records(trace, cells, decoy_idx, &map, rng, out);
                cache.plans[slot].map = map;
                cache.ranked_scratch = ranked;
                // the plan stores (and so verifies against) the exact
                // heatmap it was derived from; the old buffer becomes
                // the next lookup's scratch
                cache.scratch = std::mem::replace(&mut cache.plans[slot].own, own);
            }
            Err(_) => {
                // Contended or poisoned: compute the plan fresh. Same
                // output, no blocking on the hot path.
                let mut own = Heatmap::new();
                own.rebuild_from_cells(cells);
                let decoy_idx = self.decoy_for(trace.user(), &own);
                self.plan_misses.fetch_add(1, Ordering::Relaxed);
                let (mut ranked, mut map) = (Vec::new(), Vec::new());
                self.build_rank_map(&own, decoy_idx, &mut ranked, &mut map);
                self.rebuild_records(trace, cells, decoy_idx, &map, rng, out);
            }
        }
    }

    /// Rebuilds the trace run by run: each maximal run of consecutive
    /// records in one cell moves to the mapped cell with probability
    /// `confusion` (one RNG draw per run, decoy or not — the draw order
    /// is part of the determinism contract), or stays in place.
    fn rebuild_records(
        &self,
        trace: &Trace,
        cells: &[CellId],
        decoy_idx: Option<usize>,
        map: &[(CellId, CellId)],
        rng: &mut dyn RngCore,
        out: &mut Vec<Record>,
    ) {
        if decoy_idx.is_none() {
            // No decoy available (single-user population): nothing to
            // imitate; pass the trace through unchanged (no RNG draws,
            // matching the original behaviour).
            out.extend_from_slice(trace.records());
            return;
        }
        let rs = trace.records();
        let mut i = 0;
        while i < rs.len() {
            // maximal run of consecutive records in the same cell
            let cell = cells[i];
            let mut j = i + 1;
            while j < rs.len() && cells[j] == cell {
                j += 1;
            }
            let move_run = rng.gen::<f64>() < self.confusion;
            let target = map
                .binary_search_by(|e| e.0.cmp(&cell))
                .map(|k| map[k].1)
                .unwrap_or(cell);
            for r in &rs[i..j] {
                if move_run && target != cell {
                    let (fy, fx) = self.grid.fraction_in_cell(&r.point());
                    out.push(r.with_point(self.grid.point_in_cell(target, fy, fx)));
                } else {
                    out.push(*r);
                }
            }
            i = j;
        }
    }
}

impl Lppm for Hmc {
    fn name(&self) -> &str {
        "HMC"
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let mut records = Vec::with_capacity(trace.len());
        self.protect_into(trace, rng, &mut records);
        Trace::new(trace.user(), records).expect("same cardinality as input")
    }

    fn protect_into(&self, trace: &Trace, rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        let cells: Vec<CellId> = trace
            .records()
            .iter()
            .map(|r| self.grid.cell_of(&r.point()))
            .collect();
        self.apply(trace, &cells, rng, out);
    }

    /// The native fast path: the cell sequence comes from (and warms)
    /// the caller's shared rasterization cache, so scoring the same
    /// trace afterwards — or protecting it under another HMC-first
    /// variant — skips rasterization entirely.
    fn protect_into_with(
        &self,
        trace: &Trace,
        rng: &mut dyn RngCore,
        out: &mut Vec<Record>,
        raster: &mut TraceRaster,
    ) {
        let cells = raster.cells(&self.grid, trace);
        self.apply(trace, cells, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, TimeDelta, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn dwell_trace(user: u64, lat: f64, lng: f64, n: i64) -> Trace {
        let records: Vec<Record> = (0..n).map(|i| rec(lat, lng, i * 600)).collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn background() -> Dataset {
        Dataset::from_traces([
            dwell_trace(1, 46.16, 6.06, 60),
            dwell_trace(2, 46.25, 6.20, 60),
            dwell_trace(3, 46.20, 6.12, 60),
        ])
        .unwrap()
    }

    #[test]
    fn preserves_cardinality_and_timestamps() {
        let hmc = Hmc::paper_default(&background());
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(1);
        let p = hmc.protect(&t, &mut rng);
        assert_eq!(p.len(), t.len());
        for (a, b) in t.records().iter().zip(p.records()) {
            assert_eq!(a.time(), b.time());
        }
    }

    #[test]
    fn decoy_is_nearest_other_profile() {
        let hmc = Hmc::paper_default(&background());
        // user 1's trace: nearest other profile is user 3 (8 km away)
        // rather than user 2 (~14 km)... with disjoint supports Topsoe
        // saturates, so any non-self decoy is acceptable; assert non-self.
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let (decoy, _) = hmc.choose_decoy(&t).unwrap();
        assert_ne!(decoy, UserId::new(1));
    }

    #[test]
    fn decoy_prefers_overlapping_profile() {
        // user 9's background overlaps user 1's cell exactly
        let mut bg = background();
        bg.insert(dwell_trace(9, 46.1601, 6.0601, 60)).unwrap();
        let hmc = Hmc::paper_default(&bg);
        let t = dwell_trace(1, 46.1602, 6.0602, 40);
        let (decoy, _) = hmc.choose_decoy(&t).unwrap();
        assert_eq!(decoy, UserId::new(9));
    }

    #[test]
    fn full_confusion_moves_all_mass_to_decoy_cells() {
        let bg = background();
        let bbox = bg.bounding_box().unwrap().expanded(2_000.0).unwrap();
        let grid = Grid::new(bbox, 800.0).unwrap();
        let hmc = Hmc::new(grid.clone(), &bg, 1.0);
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(2);
        let p = hmc.protect(&t, &mut rng);
        let (decoy, decoy_hm) = hmc.choose_decoy(&t).unwrap();
        assert_ne!(decoy, UserId::new(1));
        // every protected record lands in a decoy-occupied cell
        let decoy_cells: std::collections::BTreeSet<CellId> =
            decoy_hm.keys().iter().copied().collect();
        for r in p.records() {
            assert!(decoy_cells.contains(&grid.cell_of(&r.point())));
        }
    }

    #[test]
    fn zero_confusion_is_identity() {
        let bg = background();
        let bbox = bg.bounding_box().unwrap().expanded(2_000.0).unwrap();
        let grid = Grid::new(bbox, 800.0).unwrap();
        let hmc = Hmc::new(grid, &bg, 0.0);
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(hmc.protect(&t, &mut rng), t);
    }

    #[test]
    fn single_user_population_returns_unchanged() {
        let bg = Dataset::from_traces([dwell_trace(1, 46.16, 6.06, 60)]).unwrap();
        let hmc = Hmc::paper_default(&bg);
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(hmc.protect(&t, &mut rng), t);
        assert!(hmc.choose_decoy(&t).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let hmc = Hmc::paper_default(&background());
        let t = dwell_trace(1, 46.161, 6.061, 40);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(hmc.protect(&t, &mut r1), hmc.protect(&t, &mut r2));
    }

    #[test]
    fn fast_path_is_byte_identical_and_hits_the_plan_cache() {
        let hmc = Hmc::paper_default(&background());
        let traces = [
            dwell_trace(1, 46.161, 6.061, 40),
            dwell_trace(2, 46.251, 6.201, 30),
        ];
        let mut raster = TraceRaster::new();
        let mut out = vec![rec(0.0, 0.0, 0)]; // dirty recycled buffer
        for round in 0..3 {
            for t in &traces {
                let mut r1 = StdRng::seed_from_u64(11 + round);
                let mut r2 = StdRng::seed_from_u64(11 + round);
                let expected = hmc.protect(t, &mut r1);
                hmc.protect_into_with(t, &mut r2, &mut out, &mut raster);
                assert_eq!(out.as_slice(), expected.records(), "round {round}");
            }
        }
        // repeats of the same (user, heatmap) pairs reuse cached plans
        // and cached rasterizations
        assert!(hmc.plan_cache_hits() > 0, "no plan-cache hits");
        assert!(raster.hits() > 0, "no raster hits");
    }

    #[test]
    fn plan_cache_distinguishes_equal_heatmaps_of_different_users() {
        // user 1 and user 9 dwell at the SAME spot: identical heatmaps,
        // but user 9's decoy may be user 1's profile while user 1 must
        // skip itself — the cache must key on the user too.
        let mut bg = background();
        bg.insert(dwell_trace(9, 46.16, 6.06, 60)).unwrap();
        let hmc = Hmc::paper_default(&bg);
        let (spot_lat, spot_lng) = (46.1605, 6.0605);
        let t1 = dwell_trace(1, spot_lat, spot_lng, 40);
        let t9 = dwell_trace(9, spot_lat, spot_lng, 40);
        let (d1, _) = hmc.choose_decoy(&t1).unwrap();
        let (d9, _) = hmc.choose_decoy(&t9).unwrap();
        assert_eq!(d1, UserId::new(9));
        assert_eq!(d9, UserId::new(1));
        // warm the cache with t1, then protect t9: same heatmap, other user
        let mut r = StdRng::seed_from_u64(3);
        let _ = hmc.protect(&t1, &mut r);
        let p9 = hmc.protect(&t9, &mut r);
        let mut fresh_rng = StdRng::seed_from_u64(3);
        let fresh = Hmc::paper_default(&bg);
        let _ = fresh.protect(&t1, &mut fresh_rng);
        assert_eq!(p9, fresh.protect(&t9, &mut fresh_rng));
    }

    #[test]
    #[should_panic(expected = "background")]
    fn rejects_empty_background() {
        Hmc::paper_default(&Dataset::new());
    }

    #[test]
    #[should_panic(expected = "confusion must be")]
    fn rejects_bad_confusion() {
        let bg = background();
        let bbox = bg.bounding_box().unwrap();
        let grid = Grid::new(bbox, 800.0).unwrap();
        Hmc::new(grid, &bg, 1.5);
    }

    #[test]
    fn confuses_ap_style_matching_on_synthetic_data() {
        // 0.4 scale = 16 users: small enough for CI, large enough that
        // the majority claim is not dominated by per-user noise.
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.4).generate();
        let (bg, test) = ds.split_chronological(TimeDelta::from_days(15));
        let hmc = Hmc::paper_default(&bg);
        let grid = hmc.grid().clone();
        let mut rng = StdRng::seed_from_u64(5);
        // count how many users' protected traces are still closest to
        // their own background heatmap
        let profiles: Vec<(UserId, Heatmap)> = bg
            .iter()
            .map(|t| (t.user(), Heatmap::from_trace(&grid, t)))
            .collect();
        let mut own_wins = 0;
        let mut total = 0;
        for trace in test.iter() {
            let p = hmc.protect(trace, &mut rng);
            let anon = Heatmap::from_trace(&grid, &p);
            let best = profiles
                .iter()
                .min_by(|a, b| {
                    anon.topsoe(&a.1)
                        .unwrap()
                        .partial_cmp(&anon.topsoe(&b.1).unwrap())
                        .unwrap()
                })
                .unwrap();
            total += 1;
            if best.0 == trace.user() {
                own_wins += 1;
            }
        }
        // HMC should defeat heatmap matching for the clear majority
        assert!(
            own_wins * 3 <= total,
            "HMC left {own_wins}/{total} users re-identifiable by heatmap"
        );
    }
}
