use rand::RngCore;

use mood_geo::Grid;
use mood_trace::{Dataset, Record, Trace};

use crate::Lppm;

/// Spatial cloaking — a *generalization*-family LPPM (the third classic
/// family next to perturbation/Geo-I and dummy generation/TRL; cf. the
/// paper's §2.3 and its k-anonymity related work \[31\], \[1\], \[2\]).
///
/// Every record is generalized to the **center of its grid cell**: all
/// positions within a cell become indistinguishable, a spatial analogue
/// of attribute generalization in k-anonymity systems. Cloaking is
/// deterministic (the RNG is unused), which makes it an interesting
/// composition partner: `Cloaking→Geo-I` is "generalize, then perturb".
///
/// This mechanism is **not** part of the paper's evaluated set; it is the
/// extension the paper names in §6 ("MooD can be extended by using
/// state-of-the-art LPPMs") and is exercised by the 4-LPPM engine tests
/// (composition space |C| = 64).
///
/// # Examples
///
/// ```
/// use mood_lppm::{Lppm, SpatialCloaking};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
/// use rand::SeedableRng;
///
/// let ds = presets::privamov_like().scaled(0.1).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let cloak = SpatialCloaking::from_background(&background, 800.0);
/// let trace = test.iter().next().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let protected = cloak.protect(trace, &mut rng);
/// assert_eq!(protected.len(), trace.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialCloaking {
    grid: Grid,
}

impl SpatialCloaking {
    /// Creates a cloaking mechanism over an explicit grid.
    pub fn new(grid: Grid) -> Self {
        Self { grid }
    }

    /// Builds the cloaking grid from the background dataset's extent
    /// (with the same 2 km margin the attacks use) and `cell_size_m`
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty or `cell_size_m` is not
    /// strictly positive.
    pub fn from_background(background: &Dataset, cell_size_m: f64) -> Self {
        let bbox = background
            .bounding_box()
            .expect("background must not be empty")
            .expanded(2_000.0)
            .expect("non-negative margin");
        Self::new(Grid::new(bbox, cell_size_m).expect("validated cell size"))
    }

    /// The generalization grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

impl Lppm for SpatialCloaking {
    fn name(&self) -> &str {
        "Cloaking"
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let mut records = Vec::new();
        self.protect_into(trace, rng, &mut records);
        Trace::new(trace.user(), records).expect("same cardinality as input")
    }

    fn protect_into(&self, trace: &Trace, _rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        out.clear();
        out.reserve(trace.len());
        out.extend(
            trace
                .records()
                .iter()
                .map(|r| r.with_point(self.grid.cell_center(self.grid.cell_of(&r.point())))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::{BoundingBox, GeoPoint};
    use mood_trace::{Record, TimeDelta, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3).unwrap(), 800.0).unwrap()
    }

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    #[test]
    fn snaps_to_cell_centers() {
        let cloak = SpatialCloaking::new(grid());
        // two points ~25 m apart: guaranteed to share an 800 m cell
        let t = Trace::new(
            UserId::new(1),
            vec![rec(46.1510, 6.0510, 0), rec(46.1512, 6.0511, 600)],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = cloak.protect(&t, &mut rng);
        let g = cloak.grid();
        assert_eq!(
            g.cell_of(&t.records()[0].point()),
            g.cell_of(&t.records()[1].point()),
            "test points must share a cell"
        );
        // same cell -> identical generalized points
        assert_eq!(p.records()[0].point(), p.records()[1].point());
        let cell = cloak.grid().cell_of(&t.records()[0].point());
        assert_eq!(p.records()[0].point(), cloak.grid().cell_center(cell));
    }

    #[test]
    fn displacement_bounded_by_cell_diagonal() {
        let cloak = SpatialCloaking::new(grid());
        let t = Trace::new(UserId::new(1), vec![rec(46.2031, 6.1269, 0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = cloak.protect(&t, &mut rng);
        let d = t.records()[0]
            .point()
            .haversine_distance(&p.records()[0].point());
        assert!(d <= 800.0, "cloaking moved a record {d} m");
    }

    #[test]
    fn is_deterministic_and_rng_free() {
        let cloak = SpatialCloaking::new(grid());
        let t = Trace::new(
            UserId::new(1),
            vec![rec(46.17, 6.12, 0), rec(46.22, 6.21, 600)],
        )
        .unwrap();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(999); // different seed, same output
        assert_eq!(cloak.protect(&t, &mut r1), cloak.protect(&t, &mut r2));
    }

    #[test]
    fn preserves_timestamps_and_user() {
        let cloak = SpatialCloaking::new(grid());
        let t = Trace::new(
            UserId::new(7),
            vec![rec(46.17, 6.12, 5), rec(46.22, 6.21, 600)],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = cloak.protect(&t, &mut rng);
        assert_eq!(p.user(), UserId::new(7));
        assert_eq!(p.records()[0].time().as_unix(), 5);
    }

    #[test]
    fn from_background_covers_the_city() {
        let ds = mood_synth::presets::privamov_like().scaled(0.1).generate();
        let (bg, test) = ds.split_chronological(TimeDelta::from_days(15));
        let cloak = SpatialCloaking::from_background(&bg, 800.0);
        let trace = test.iter().next().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = cloak.protect(trace, &mut rng);
        // every cloaked record is inside the grid's box
        for r in p.records() {
            assert!(cloak.grid().bbox().contains(&r.point()));
        }
    }

    #[test]
    #[should_panic(expected = "background must not be empty")]
    fn rejects_empty_background() {
        SpatialCloaking::from_background(&Dataset::new(), 800.0);
    }
}
