use rand::{Rng, RngCore};

use mood_geo::LocalProjection;
use mood_trace::{Record, Trace};

use crate::Lppm;

/// Geo-indistinguishability (Andrés et al. 2013, the paper's \[4\]):
/// ε-differential privacy for locations, achieved by adding planar
/// Laplace noise to every record.
///
/// The noise radius follows the distribution with density
/// `ε² r e^(−εr)` (a Gamma(2, 1/ε)); its mean is `2/ε`. Sampling uses
/// the exact inverse CDF `r = −(1/ε)(W₋₁((p−1)/e) + 1)` with the
/// Lambert-W lower branch, as in the original paper.
///
/// The paper's experiments fix ε = 0.01 m⁻¹ ("medium privacy", §4.1.2),
/// i.e. an average displacement of 200 m.
///
/// # Examples
///
/// ```
/// use mood_lppm::{GeoI, Lppm};
/// use mood_synth::presets;
/// use rand::SeedableRng;
///
/// let ds = presets::privamov_like().scaled(0.1).generate();
/// let trace = ds.iter().next().unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let protected = GeoI::paper_default().protect(trace, &mut rng);
/// assert_eq!(protected.len(), trace.len()); // same cardinality
/// assert_ne!(protected.records()[0].point(), trace.records()[0].point());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoI {
    epsilon_per_m: f64,
}

impl GeoI {
    /// Creates a Geo-I mechanism with privacy parameter ε (per meter).
    /// Lower ε = more noise = more privacy.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon_per_m` is not strictly positive and finite.
    pub fn new(epsilon_per_m: f64) -> Self {
        assert!(
            epsilon_per_m.is_finite() && epsilon_per_m > 0.0,
            "epsilon must be positive"
        );
        Self { epsilon_per_m }
    }

    /// The paper's configuration: ε = 0.01 m⁻¹ (mean noise 200 m).
    pub fn paper_default() -> Self {
        Self::new(0.01)
    }

    /// The privacy parameter ε in m⁻¹.
    pub fn epsilon(&self) -> f64 {
        self.epsilon_per_m
    }

    /// Samples a noise radius from the planar Laplace radial distribution
    /// via the exact inverse CDF.
    fn sample_radius(&self, rng: &mut dyn RngCore) -> f64 {
        let p: f64 = rng.gen_range(0.0..1.0);
        let w = lambert_w_minus1((p - 1.0) / std::f64::consts::E);
        -(w + 1.0) / self.epsilon_per_m
    }
}

impl Lppm for GeoI {
    fn name(&self) -> &str {
        "Geo-I"
    }

    fn protect(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let mut records = Vec::new();
        self.protect_into(trace, rng, &mut records);
        Trace::new(trace.user(), records).expect("same cardinality as input")
    }

    fn protect_into(&self, trace: &Trace, rng: &mut dyn RngCore, out: &mut Vec<Record>) {
        out.clear();
        out.reserve(trace.len());
        for r in trace.records() {
            let theta: f64 = rng.gen_range(0.0..360.0);
            let radius = self.sample_radius(rng);
            let proj = LocalProjection::new(r.point());
            let moved = proj
                .displace(&r.point(), theta, radius)
                .expect("sampled radius is non-negative");
            out.push(r.with_point(moved));
        }
    }
}

/// Lambert W function, lower branch `W₋₁`, for `x ∈ [−1/e, 0)`.
///
/// Solves `w e^w = x` with `w ≤ −1`, by Halley iteration from an
/// asymptotic initial guess. Absolute residual is below 1e-10 over the
/// whole domain.
///
/// # Panics
///
/// Panics when `x` is outside `[−1/e, 0)`.
pub fn lambert_w_minus1(x: f64) -> f64 {
    const NEG_INV_E: f64 = -1.0 / std::f64::consts::E;
    assert!(
        (NEG_INV_E..0.0).contains(&x),
        "W_-1 requires x in [-1/e, 0), got {x}"
    );
    // Initial guess: near the branch point use the series in
    // p = -sqrt(2(1 + e x)); elsewhere the log-log asymptote.
    let mut w = if x > -0.25 {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2
    } else {
        let p = -(2.0 * (1.0 + std::f64::consts::E * x)).max(0.0).sqrt();
        -1.0 + p - p * p / 3.0
    };
    for _ in 0..50 {
        let ew = w.exp();
        let f = w * ew - x;
        let w1 = w + 1.0;
        if w1.abs() < 1e-300 {
            break;
        }
        let denom = ew * w1 - (w + 2.0) * f / (2.0 * w1);
        let delta = f / denom;
        w -= delta;
        if delta.abs() < 1e-14 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, Timestamp, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn walk(n: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    GeoPoint::new(46.2, 6.1).unwrap(),
                    Timestamp::from_unix(i * 600),
                )
            })
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn lambert_w_residuals_small() {
        for &x in &[-0.367879, -0.3, -0.2, -0.1, -0.05, -0.01, -1e-4, -1e-8] {
            let w = lambert_w_minus1(x);
            let residual = (w * w.exp() - x).abs();
            assert!(residual < 1e-10, "x={x}: w={w}, residual={residual}");
            assert!(w <= -1.0 + 1e-9, "x={x}: w={w} not on lower branch");
        }
    }

    #[test]
    fn lambert_w_branch_point() {
        let w = lambert_w_minus1(-1.0 / std::f64::consts::E + 1e-12);
        assert!((w + 1.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    #[should_panic(expected = "W_-1 requires")]
    fn lambert_w_rejects_positive() {
        lambert_w_minus1(0.5);
    }

    #[test]
    fn noise_mean_matches_two_over_epsilon() {
        let geo_i = GeoI::new(0.01);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| geo_i.sample_radius(&mut rng)).sum::<f64>() / n as f64;
        // Gamma(2, 1/eps) mean = 2/eps = 200 m
        assert!((mean - 200.0).abs() < 5.0, "mean = {mean}");
    }

    #[test]
    fn displacement_distribution_matches_radial_cdf() {
        // CDF C(r) = 1 - (1 + eps r) e^{-eps r}; check the median.
        let geo_i = GeoI::new(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let mut radii: Vec<f64> = (0..10_000).map(|_| geo_i.sample_radius(&mut rng)).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = radii[radii.len() / 2];
        // analytic median of Gamma(2, scale=100) ≈ 167.83 m
        assert!((median - 167.8).abs() < 6.0, "median = {median}");
    }

    #[test]
    fn protect_preserves_timestamps_and_count() {
        let t = walk(50);
        let mut rng = StdRng::seed_from_u64(3);
        let p = GeoI::paper_default().protect(&t, &mut rng);
        assert_eq!(p.len(), t.len());
        assert_eq!(p.user(), t.user());
        for (a, b) in t.records().iter().zip(p.records()) {
            assert_eq!(a.time(), b.time());
        }
    }

    #[test]
    fn average_displacement_near_200m() {
        let t = walk(2_000);
        let mut rng = StdRng::seed_from_u64(5);
        let p = GeoI::paper_default().protect(&t, &mut rng);
        let mean: f64 = t
            .records()
            .iter()
            .zip(p.records())
            .map(|(a, b)| a.point().haversine_distance(&b.point()))
            .sum::<f64>()
            / t.len() as f64;
        assert!((mean - 200.0).abs() < 15.0, "mean displacement {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = walk(20);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let g = GeoI::paper_default();
        assert_eq!(g.protect(&t, &mut r1), g.protect(&t, &mut r2));
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let t = walk(500);
        let mean_disp = |eps: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = GeoI::new(eps).protect(&t, &mut rng);
            t.records()
                .iter()
                .zip(p.records())
                .map(|(a, b)| a.point().haversine_distance(&b.point()))
                .sum::<f64>()
                / t.len() as f64
        };
        assert!(mean_disp(0.001, 1) > 4.0 * mean_disp(0.01, 1));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        GeoI::new(0.0);
    }
}
