//! Calibration diagnostic: the raw attack × LPPM matrix on every preset.
//!
//! Prints, per dataset, the number of users re-identified by the
//! three-attack union and by AP-Attack alone, for each single mechanism.
//! This is the tool used to calibrate the synthetic presets against the
//! paper's Figures 2/6/7 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p mood-lppm --example calib [scale]`

use mood_attacks::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack};
use mood_lppm::{GeoI, Hmc, Lppm, Trl};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn protect_all(ds: &Dataset, lppm: &dyn Lppm, seed: u64) -> Dataset {
    let traces: Vec<Trace> = ds
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
            lppm.protect(t, &mut rng)
        })
        .collect();
    Dataset::from_traces(traces).unwrap()
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    for spec in presets::all() {
        let ds = spec.scaled(scale).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let suite = AttackSuite::train(
            &[
                &PoiAttack::paper_default() as &dyn Attack,
                &PitAttack::paper_default(),
                &ApAttack::paper_default(),
            ],
            &train,
        );
        let ap_only = AttackSuite::train(&[&ApAttack::paper_default() as &dyn Attack], &train);
        let hmc = Hmc::paper_default(&train);
        let geoi = GeoI::paper_default();
        let trl = Trl::paper_default();
        let lppms: Vec<(&str, &dyn Lppm)> = vec![
            ("none", &NoOp),
            ("Geo-I", &geoi),
            ("TRL", &trl),
            ("HMC", &hmc),
        ];
        println!("=== {} ({} users) ===", spec.name, test.user_count());
        for (name, lppm) in lppms {
            let t0 = std::time::Instant::now();
            let prot = protect_all(&test, lppm, 42);
            let multi = suite.evaluate(&prot);
            let ap = ap_only.evaluate(&prot);
            println!(
                "  {:<6} multi={:>3} ({:>3.0}%) loss={:>4.1}%  ap={:>3}  per={:?} [{:?}]",
                name,
                multi.non_protected_count(),
                multi.non_protected_ratio() * 100.0,
                multi.data_loss_ratio() * 100.0,
                ap.non_protected_count(),
                multi.re_identified_per_attack,
                t0.elapsed()
            );
        }
    }
}

struct NoOp;
impl Lppm for NoOp {
    fn name(&self) -> &str {
        "none"
    }
    fn protect(&self, t: &Trace, _: &mut dyn rand::RngCore) -> Trace {
        t.clone()
    }
}
