use serde::{Deserialize, Serialize};

/// Identifier of a user in a mobility dataset.
///
/// Real user IDs are small integers assigned by the data collector;
/// pseudonyms minted for fine-grained sub-traces live in a disjoint high
/// range (see [`PseudonymFactory`]) so the two can never collide.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(u64);

impl UserId {
    /// Creates a user ID from its raw integer value.
    pub const fn new(id: u64) -> Self {
        Self(id)
    }

    /// The raw integer value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// `true` when this ID was minted by a [`PseudonymFactory`] rather than
    /// assigned to a real user.
    pub const fn is_pseudonym(&self) -> bool {
        self.0 >= PSEUDONYM_BASE
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_pseudonym() {
            write!(f, "p{}", self.0 - PSEUDONYM_BASE)
        } else {
            write!(f, "u{}", self.0)
        }
    }
}

/// First ID of the pseudonym range. Real datasets have at most a few
/// thousand users, so 2^32 leaves no realistic chance of collision.
const PSEUDONYM_BASE: u64 = 1 << 32;

/// Mints fresh pseudonymous [`UserId`]s.
///
/// MooD's fine-grained protection publishes each protected sub-trace under
/// a **new** user ID so sub-traces "seem to come from different users"
/// (paper §3.4, `renew_Ids` in Algorithm 1). The factory is deterministic:
/// the n-th pseudonym it produces is always the same, which keeps whole
/// experiment runs reproducible.
///
/// # Examples
///
/// ```
/// use mood_trace::PseudonymFactory;
///
/// let mut factory = PseudonymFactory::new();
/// let a = factory.next_id();
/// let b = factory.next_id();
/// assert_ne!(a, b);
/// assert!(a.is_pseudonym() && b.is_pseudonym());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PseudonymFactory {
    next: u64,
}

impl PseudonymFactory {
    /// Creates a factory starting at the beginning of the pseudonym range.
    pub fn new() -> Self {
        Self {
            next: PSEUDONYM_BASE,
        }
    }

    /// Returns a fresh pseudonym, never equal to any real user ID nor to
    /// any pseudonym previously returned by this factory.
    pub fn next_id(&mut self) -> UserId {
        let id = UserId::new(self.next);
        self.next += 1;
        id
    }

    /// Number of pseudonyms handed out so far.
    pub fn issued(&self) -> u64 {
        self.next - PSEUDONYM_BASE
    }
}

impl Default for PseudonymFactory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_ids_are_not_pseudonyms() {
        assert!(!UserId::new(0).is_pseudonym());
        assert!(!UserId::new(530).is_pseudonym());
    }

    #[test]
    fn factory_ids_are_pseudonyms_and_unique() {
        let mut f = PseudonymFactory::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = f.next_id();
            assert!(id.is_pseudonym());
            assert!(seen.insert(id), "duplicate pseudonym");
        }
        assert_eq!(f.issued(), 1000);
    }

    #[test]
    fn factory_is_deterministic() {
        let mut f1 = PseudonymFactory::new();
        let mut f2 = PseudonymFactory::new();
        for _ in 0..10 {
            assert_eq!(f1.next_id(), f2.next_id());
        }
    }

    #[test]
    fn display_distinguishes_pseudonyms() {
        assert_eq!(UserId::new(7).to_string(), "u7");
        let mut f = PseudonymFactory::new();
        assert_eq!(f.next_id().to_string(), "p0");
        assert_eq!(f.next_id().to_string(), "p1");
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(UserId::new(1) < UserId::new(2));
    }

    #[test]
    fn serde_roundtrip() {
        let id = UserId::new(99);
        let json = serde_json::to_string(&id).unwrap();
        let back: UserId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
