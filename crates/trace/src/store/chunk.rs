//! The compressed columnar block of the trace store: a [`TraceChunk`]
//! holds up to a few thousand records of **one** user in
//! delta-compressed form, together with the per-chunk summaries
//! (record count, min/max timestamp, bounding box) that let dataset
//! operations route whole chunks without decoding them.
//!
//! # Encoding
//!
//! Records are stored as a single bit stream: the first record is
//! written raw (64-bit timestamp, 64-bit `f64::to_bits` per
//! coordinate), every later record as three bit-packed residuals:
//!
//! * timestamps: delta-of-delta on the `i64` seconds (regular sampling
//!   intervals collapse to a single bit per record);
//! * coordinates: delta-of-delta on the `u64` bit pattern of the `f64`,
//!   in wrapping two's-complement arithmetic. Nearby doubles of equal
//!   sign have nearby bit patterns, and linear motion keeps the bit
//!   deltas themselves nearly constant, so residuals stay small —
//!   while round-tripping is *exact for every input* (the residual is a
//!   reversible mod-2⁶⁴ difference, never a quantization).
//!
//! Each residual is zigzag-mapped and written as `0` when zero, else as
//! `1` + 6-bit significant-length + the significant bits minus the
//! implied leading one. GPS noise leaves ~34 significant bits per
//! coordinate residual, so the common record costs ~2 + 2×40 bits —
//! under half of the 24-byte in-memory [`Record`] with room to spare,
//! where byte-aligned varints would sit right at the boundary.

use mood_geo::{BoundingBox, GeoPoint};

use crate::{Record, Timestamp};

/// Little-endian bit-stream writer; values are packed LSB-first.
struct BitWriter {
    bytes: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn with_capacity(bytes: usize) -> BitWriter {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `n` bits of `bits` (`n <= 64`).
    fn push(&mut self, bits: u64, n: u32) {
        if n > 32 {
            self.push_raw(bits & 0xFFFF_FFFF, 32);
            self.push_raw(bits >> 32, n - 32);
        } else {
            self.push_raw(bits, n);
        }
    }

    fn push_raw(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 32 && (n == 32 || bits >> n == 0));
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.bytes.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.acc & 0xff) as u8);
        }
        self.bytes.shrink_to_fit();
        self.bytes
    }
}

/// Reader matching [`BitWriter`]'s packing.
///
/// # Panics
///
/// Panics on truncated input — chunks are only decoded from buffers
/// this module produced, so truncation is a logic error, not bad data.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads the next `n` bits (`n <= 64`).
    fn read(&mut self, n: u32) -> u64 {
        if n > 32 {
            let lo = self.read_raw(32);
            lo | (self.read_raw(n - 32) << 32)
        } else {
            self.read_raw(n)
        }
    }

    fn read_raw(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 32);
        while self.nbits < n {
            self.acc |= u64::from(self.bytes[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        v
    }
}

/// Maps a signed residual to its unsigned bit payload (zigzag).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes one zigzagged residual: `0` for zero, else `1` + 6-bit
/// length-minus-one + the value's bits below the implied leading one.
fn write_residual(out: &mut BitWriter, v: i64) {
    let z = zigzag(v);
    if z == 0 {
        out.push(0, 1);
    } else {
        let len = 64 - z.leading_zeros();
        out.push(1, 1);
        out.push(u64::from(len - 1), 6);
        out.push(z ^ (1u64 << (len - 1)), len - 1);
    }
}

/// Inverse of [`write_residual`].
fn read_residual(input: &mut BitReader<'_>) -> i64 {
    if input.read(1) == 0 {
        return 0;
    }
    let len = input.read(6) as u32 + 1;
    let z = input.read(len - 1) | (1u64 << (len - 1));
    unzigzag(z)
}

/// A compressed block of one user's records plus the metadata summaries
/// (count, time range, bounding box) that dataset-level operations read
/// instead of decoding.
///
/// Round-tripping is bit-exact: [`TraceChunk::decode_into`] reproduces
/// every timestamp and every coordinate's `f64` bit pattern verbatim.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::store::TraceChunk;
/// use mood_trace::{Record, Timestamp};
///
/// let records = vec![
///     Record::new(GeoPoint::new(46.20, 6.14)?, Timestamp::from_unix(0)),
///     Record::new(GeoPoint::new(46.21, 6.15)?, Timestamp::from_unix(600)),
/// ];
/// let chunk = TraceChunk::encode(&records);
/// let mut back = Vec::new();
/// chunk.decode_into(&mut back);
/// assert_eq!(back, records);
/// assert_eq!(chunk.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChunk {
    count: u32,
    min_time: Timestamp,
    max_time: Timestamp,
    min_lat: f64,
    max_lat: f64,
    min_lng: f64,
    max_lng: f64,
    bytes: Vec<u8>,
}

impl TraceChunk {
    /// Compresses `records` into a chunk. The records are stored in the
    /// given order (the store keeps per-user chunks time-sorted; the
    /// codec itself works for any order).
    ///
    /// # Panics
    ///
    /// Panics when `records` is empty — empty chunks carry no summary
    /// and are never stored.
    pub fn encode(records: &[Record]) -> TraceChunk {
        assert!(!records.is_empty(), "chunks hold at least one record");
        let first = &records[0];
        let mut bits = BitWriter::with_capacity(24 + records.len() * 11);
        bits.push(first.time().as_unix() as u64, 64);
        bits.push(first.point().lat().to_bits(), 64);
        bits.push(first.point().lng().to_bits(), 64);

        let mut min_time = first.time();
        let mut max_time = first.time();
        let (mut min_lat, mut max_lat) = (first.point().lat(), first.point().lat());
        let (mut min_lng, mut max_lng) = (first.point().lng(), first.point().lng());

        let mut prev_ts = first.time().as_unix();
        let mut prev_ts_delta = 0i64;
        let mut prev_lat = first.point().lat().to_bits();
        let mut prev_lat_delta = 0i64;
        let mut prev_lng = first.point().lng().to_bits();
        let mut prev_lng_delta = 0i64;

        for r in &records[1..] {
            let ts = r.time().as_unix();
            let lat = r.point().lat().to_bits();
            let lng = r.point().lng().to_bits();
            let ts_delta = ts.wrapping_sub(prev_ts);
            let lat_delta = lat.wrapping_sub(prev_lat) as i64;
            let lng_delta = lng.wrapping_sub(prev_lng) as i64;
            write_residual(&mut bits, ts_delta.wrapping_sub(prev_ts_delta));
            write_residual(&mut bits, lat_delta.wrapping_sub(prev_lat_delta));
            write_residual(&mut bits, lng_delta.wrapping_sub(prev_lng_delta));

            prev_ts = ts;
            prev_ts_delta = ts_delta;
            prev_lat = lat;
            prev_lat_delta = lat_delta;
            prev_lng = lng;
            prev_lng_delta = lng_delta;

            min_time = min_time.min(r.time());
            max_time = max_time.max(r.time());
            min_lat = min_lat.min(r.point().lat());
            max_lat = max_lat.max(r.point().lat());
            min_lng = min_lng.min(r.point().lng());
            max_lng = max_lng.max(r.point().lng());
        }
        let bytes = bits.finish();
        TraceChunk {
            count: u32::try_from(records.len()).expect("chunk sizes fit u32"),
            min_time,
            max_time,
            min_lat,
            max_lat,
            min_lng,
            max_lng,
            bytes,
        }
    }

    /// Decompresses the chunk, appending every record (in stored order)
    /// to `out`.
    pub fn decode_into(&self, out: &mut Vec<Record>) {
        out.reserve(self.count as usize);
        let mut bits = BitReader::new(&self.bytes);
        let mut ts = bits.read(64) as i64;
        let mut lat = bits.read(64);
        let mut lng = bits.read(64);
        let point = |lat_bits: u64, lng_bits: u64| {
            GeoPoint::new(f64::from_bits(lat_bits), f64::from_bits(lng_bits))
                .expect("chunk was encoded from valid points")
        };
        out.push(Record::new(point(lat, lng), Timestamp::from_unix(ts)));

        let mut ts_delta = 0i64;
        let mut lat_delta = 0i64;
        let mut lng_delta = 0i64;
        for _ in 1..self.count {
            ts_delta = ts_delta.wrapping_add(read_residual(&mut bits));
            lat_delta = lat_delta.wrapping_add(read_residual(&mut bits));
            lng_delta = lng_delta.wrapping_add(read_residual(&mut bits));
            ts = ts.wrapping_add(ts_delta);
            lat = lat.wrapping_add(lat_delta as u64);
            lng = lng.wrapping_add(lng_delta as u64);
            out.push(Record::new(point(lat, lng), Timestamp::from_unix(ts)));
        }
    }

    /// Number of records in the chunk (always ≥ 1).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Always `false`: chunks hold at least one record.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Earliest record timestamp in the chunk.
    pub fn min_time(&self) -> Timestamp {
        self.min_time
    }

    /// Latest record timestamp in the chunk.
    pub fn max_time(&self) -> Timestamp {
        self.max_time
    }

    /// Smallest bounding box containing every record of the chunk.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::new(self.min_lat, self.max_lat, self.min_lng, self.max_lng)
            .expect("summaries of valid points form a valid box")
    }

    /// Size of the compressed payload in bytes (excluding the summary
    /// fields of the chunk struct itself).
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn assert_bit_exact(records: &[Record]) {
        let chunk = TraceChunk::encode(records);
        let mut back = Vec::new();
        chunk.decode_into(&mut back);
        assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.time(), b.time());
            assert_eq!(a.point().lat().to_bits(), b.point().lat().to_bits());
            assert_eq!(a.point().lng().to_bits(), b.point().lng().to_bits());
        }
    }

    #[test]
    fn roundtrip_single_record() {
        assert_bit_exact(&[rec(46.2043913, 6.1431582, 1_354_320_000)]);
    }

    #[test]
    fn roundtrip_regular_sampling() {
        let records: Vec<Record> = (0..500)
            .map(|i| rec(46.2 + i as f64 * 1e-5, 6.14 - i as f64 * 2e-5, i * 600))
            .collect();
        assert_bit_exact(&records);
    }

    #[test]
    fn roundtrip_negative_coordinates_and_times() {
        let records = vec![
            rec(-33.44, -70.66, -1000),
            rec(-33.4400001, -70.6600001, -400),
            rec(-33.45, -70.67, 0),
            rec(0.0, 0.0, 1),
            rec(-0.0, -0.0, 2),
        ];
        assert_bit_exact(&records);
    }

    #[test]
    fn roundtrip_duplicate_timestamps() {
        let records = vec![
            rec(46.2, 6.1, 100),
            rec(46.3, 6.2, 100),
            rec(46.2, 6.1, 100),
            rec(46.2, 6.1, 101),
        ];
        assert_bit_exact(&records);
    }

    #[test]
    fn summaries_match_records() {
        let records = vec![rec(46.3, 6.1, 50), rec(46.1, 6.4, 10), rec(46.2, 6.2, 90)];
        let chunk = TraceChunk::encode(&records);
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.min_time().as_unix(), 10);
        assert_eq!(chunk.max_time().as_unix(), 90);
        let bb = chunk.bounding_box();
        for r in &records {
            assert!(bb.contains(&r.point()));
        }
        assert!((bb.min_lat() - 46.1).abs() < 1e-12);
        assert!((bb.max_lng() - 6.4).abs() < 1e-12);
    }

    #[test]
    fn stationary_records_compress_below_half() {
        // The target regime: a dwell with GPS noise. Bit deltas carry
        // ~2×40 bits of true noise entropy; the 24-byte Record must
        // shrink to <= 12 bytes with room to spare.
        let records: Vec<Record> = (0..4096)
            .map(|i| {
                let jitter = ((i * 2_654_435_761_u64 as usize) % 1000) as f64 * 1e-7;
                rec(46.2 + jitter, 6.14 - jitter, (i as i64) * 600)
            })
            .collect();
        let chunk = TraceChunk::encode(&records);
        let per_record = chunk.encoded_bytes() as f64 / records.len() as f64;
        assert!(
            per_record <= 12.0,
            "stationary records at {per_record:.1} B/record, need <= 12"
        );
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_chunk_rejected() {
        TraceChunk::encode(&[]);
    }

    #[test]
    fn residual_extremes_roundtrip() {
        let values = [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)];
        // All in one stream, so misaligned bit boundaries are exercised.
        let mut bits = BitWriter::with_capacity(64);
        for v in values {
            write_residual(&mut bits, v);
        }
        let bytes = bits.finish();
        let mut reader = BitReader::new(&bytes);
        for v in values {
            assert_eq!(read_residual(&mut reader), v);
        }
    }

    #[test]
    fn bit_writer_handles_full_width_values() {
        let mut bits = BitWriter::with_capacity(32);
        bits.push(u64::MAX, 64);
        bits.push(0b101, 3);
        bits.push(u64::MAX >> 1, 63);
        let bytes = bits.finish();
        let mut reader = BitReader::new(&bytes);
        assert_eq!(reader.read(64), u64::MAX);
        assert_eq!(reader.read(3), 0b101);
        assert_eq!(reader.read(63), u64::MAX >> 1);
    }
}
