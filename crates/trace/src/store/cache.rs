//! LRU cache of decoded traces, bounded by a byte budget.
//!
//! The [`TraceStore`](super::TraceStore) keeps every user compressed;
//! when a pipeline asks for a user's records the decoded [`Trace`] is
//! parked here so immediate re-reads (e.g. several attacks scoring the
//! same candidate) don't pay the decode again. The cache never holds
//! more than `budget_bytes` of decoded records: the least-recently-used
//! entries are evicted first, and a single trace larger than the whole
//! budget is handed out *uncached* so the invariant
//! `resident_bytes <= budget_bytes` holds unconditionally.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::{Record, Trace, UserId};

/// Decoded size of one record as accounted by the cache.
pub(crate) const RECORD_BYTES: usize = std::mem::size_of::<Record>();

struct CacheEntry {
    trace: Arc<Trace>,
    bytes: usize,
    last_used: u64,
}

/// Byte-budgeted LRU map from user to decoded trace. Interior to the
/// store; all access goes through the store's mutex.
pub(crate) struct DecodedCache {
    entries: BTreeMap<UserId, CacheEntry>,
    budget_bytes: usize,
    resident_bytes: usize,
    peak_resident_bytes: usize,
    clock: u64,
    hits: u64,
    decodes: u64,
    evictions: u64,
    uncached_decodes: u64,
}

impl DecodedCache {
    pub(crate) fn new(budget_bytes: usize) -> DecodedCache {
        DecodedCache {
            entries: BTreeMap::new(),
            budget_bytes,
            resident_bytes: 0,
            peak_resident_bytes: 0,
            clock: 0,
            hits: 0,
            decodes: 0,
            evictions: 0,
            uncached_decodes: 0,
        }
    }

    /// Looks up a decoded trace, refreshing its LRU position. A miss
    /// is counted as an upcoming decode (the caller decodes outside
    /// the store lock and then calls [`DecodedCache::insert`]).
    pub(crate) fn get(&mut self, user: UserId) -> Option<Arc<Trace>> {
        self.clock += 1;
        match self.entries.get_mut(&user) {
            Some(entry) => {
                entry.last_used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&entry.trace))
            }
            None => {
                self.decodes += 1;
                None
            }
        }
    }

    /// Admits a freshly decoded trace, evicting least-recently-used
    /// entries until it fits. Traces larger than the whole budget are
    /// not admitted (counted as `uncached_decodes`); callers still use
    /// the `Arc` they hold, so correctness is unaffected.
    pub(crate) fn insert(&mut self, user: UserId, trace: &Arc<Trace>) {
        let bytes = trace.len() * RECORD_BYTES;
        if bytes > self.budget_bytes {
            self.uncached_decodes += 1;
            return;
        }
        // Two workers can decode the same cold user concurrently; the
        // second insert wins and the first entry's bytes are released.
        if let Some(old) = self.entries.remove(&user) {
            self.resident_bytes -= old.bytes;
        }
        while self.resident_bytes + bytes > self.budget_bytes {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(u, _)| *u)
                .expect("resident bytes imply at least one entry");
            let evicted = self.entries.remove(&victim).expect("victim exists");
            self.resident_bytes -= evicted.bytes;
            self.evictions += 1;
        }
        self.clock += 1;
        self.entries.insert(
            user,
            CacheEntry {
                trace: Arc::clone(trace),
                bytes,
                last_used: self.clock,
            },
        );
        self.resident_bytes += bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
    }

    pub(crate) fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    pub(crate) fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    pub(crate) fn peak_resident_bytes(&self) -> usize {
        self.peak_resident_bytes
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn decodes(&self) -> u64 {
        self.decodes
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    pub(crate) fn uncached_decodes(&self) -> u64 {
        self.uncached_decodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;
    use mood_geo::GeoPoint;

    fn trace_of(user: u64, n: usize) -> Arc<Trace> {
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    GeoPoint::new(46.0, 6.0).unwrap(),
                    Timestamp::from_unix(i as i64),
                )
            })
            .collect();
        Arc::new(Trace::new(UserId::new(user), records).unwrap())
    }

    #[test]
    fn eviction_keeps_resident_under_budget() {
        // Budget fits two 10-record traces but not three.
        let mut cache = DecodedCache::new(25 * RECORD_BYTES);
        for u in 0..5u64 {
            assert!(cache.get(UserId::new(u)).is_none());
            cache.insert(UserId::new(u), &trace_of(u, 10));
            assert!(cache.resident_bytes() <= cache.budget_bytes());
        }
        assert_eq!(cache.evictions(), 3);
        assert_eq!(cache.decodes(), 5);
        // Most recent survivors: users 3 and 4.
        assert!(cache.get(UserId::new(4)).is_some());
        assert!(cache.get(UserId::new(3)).is_some());
        assert!(cache.get(UserId::new(0)).is_none());
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn lru_refresh_protects_hot_entry() {
        let mut cache = DecodedCache::new(25 * RECORD_BYTES);
        cache.get(UserId::new(1));
        cache.insert(UserId::new(1), &trace_of(1, 10));
        cache.get(UserId::new(2));
        cache.insert(UserId::new(2), &trace_of(2, 10));
        // Touch user 1 so user 2 becomes the LRU victim.
        assert!(cache.get(UserId::new(1)).is_some());
        cache.get(UserId::new(3));
        cache.insert(UserId::new(3), &trace_of(3, 10));
        assert!(cache.get(UserId::new(1)).is_some());
        assert!(cache.get(UserId::new(2)).is_none());
    }

    #[test]
    fn oversized_trace_is_served_uncached() {
        let mut cache = DecodedCache::new(5 * RECORD_BYTES);
        cache.get(UserId::new(9));
        cache.insert(UserId::new(9), &trace_of(9, 100));
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.uncached_decodes(), 1);
        assert!(cache.get(UserId::new(9)).is_none());
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let mut cache = DecodedCache::new(100 * RECORD_BYTES);
        cache.insert(UserId::new(1), &trace_of(1, 10));
        cache.insert(UserId::new(1), &trace_of(1, 20));
        assert_eq!(cache.resident_bytes(), 20 * RECORD_BYTES);
        assert!(cache.peak_resident_bytes() >= 20 * RECORD_BYTES);
    }
}
