//! Compressed, chunked trace storage for larger-than-RAM corpora.
//!
//! [`TraceStore`] keeps every user's records as a sequence of
//! delta-compressed [`TraceChunk`]s instead of a decoded
//! `Vec<Record>`. Records stream in one at a time ([`TraceStore::append`],
//! typically fed by [`stream_csv`](crate::io::stream_csv)); per-user
//! append buffers seal into chunks at a configurable size, cold users'
//! buffers and small chunks are compacted periodically, and a byte-
//! budgeted LRU [`DecodedCache`](cache::DecodedCache) keeps only the hot
//! working set decoded. Dataset-level operations (`split_chronological`,
//! `most_active_window`, `bounding_box`) run off per-chunk min/max-time
//! and bounding-box summaries, decoding only chunks that straddle a cut.
//!
//! The store is bit-exact: decoding any user reproduces exactly the
//! trace the in-memory [`Dataset`] path would have built from the same
//! record sequence, including the stable-sort tie order of
//! [`Trace::new`]. Protection and attack-evaluation pipelines running
//! against a store therefore produce byte-identical reports.

mod cache;
mod chunk;

pub use chunk::TraceChunk;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mood_geo::BoundingBox;

use crate::{Dataset, Record, TimeDelta, Timestamp, Trace, UserId};

use cache::{DecodedCache, RECORD_BYTES};

/// Tuning knobs of a [`TraceStore`].
///
/// The defaults target the paper's corpus scale: small write chunks so
/// append buffers stay bounded, 4096-record read chunks after
/// compaction, and a 64 MiB decoded-cache budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Records a user's append buffer holds before sealing into a chunk.
    pub seal_records: usize,
    /// Target records per chunk after compaction (and for resorted users).
    pub chunk_records: usize,
    /// Byte budget of the decoded-trace LRU cache.
    pub cache_budget_bytes: usize,
    /// Appends between cold-user sweeps (seal + compact inactive users).
    pub compact_after: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            seal_records: 512,
            chunk_records: 4096,
            cache_budget_bytes: 64 << 20,
            compact_after: 8192,
        }
    }
}

impl StoreConfig {
    /// Returns the config with the decoded-cache budget set to `bytes`.
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget_bytes = bytes;
        self
    }

    /// Returns the config with the post-compaction chunk size set.
    pub fn with_chunk_records(mut self, records: usize) -> Self {
        assert!(records > 0, "chunk_records must be positive");
        self.chunk_records = records;
        self
    }

    /// Returns the config with the append-buffer seal size set.
    pub fn with_seal_records(mut self, records: usize) -> Self {
        assert!(records > 0, "seal_records must be positive");
        self.seal_records = records;
        self
    }
}

/// Counters and gauges of a [`TraceStore`], taken atomically under the
/// cache lock. Exported on `/metrics` by `mood-serve` and printed by
/// `mood ingest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of users in the store.
    pub users: usize,
    /// Total records across chunks and append buffers.
    pub records: usize,
    /// Number of compressed chunks.
    pub chunks: usize,
    /// Total compressed payload bytes across all chunks.
    pub encoded_bytes: usize,
    /// Decoded bytes currently held in unsealed append buffers.
    pub buffer_bytes: usize,
    /// High-water mark of `buffer_bytes` over the store's lifetime.
    pub peak_buffer_bytes: usize,
    /// Decoded bytes currently resident in the LRU cache.
    pub resident_bytes: usize,
    /// High-water mark of `resident_bytes`; never exceeds `budget_bytes`.
    pub peak_resident_bytes: usize,
    /// Byte budget of the decoded-trace cache.
    pub budget_bytes: usize,
    /// Cache lookups served without decoding.
    pub cache_hits: u64,
    /// Cache misses (each one decodes a user's chunks).
    pub decodes: u64,
    /// Entries evicted from the cache to respect the budget.
    pub evictions: u64,
    /// Decodes of traces larger than the whole budget (served uncached).
    pub uncached_decodes: u64,
    /// Chunk groups merged by compaction.
    pub compactions: u64,
    /// Users whose chunks were globally re-sorted at finish (out-of-order
    /// input).
    pub resorts: u64,
}

/// Per-user state: sealed chunks plus the unsealed append buffer.
struct UserSlot {
    chunks: Vec<TraceChunk>,
    buffer: Vec<Record>,
    /// Max timestamp across sealed chunks; a later append below this
    /// marks the user dirty (needs a global resort at finish).
    max_sealed_time: Option<Timestamp>,
    dirty: bool,
    last_append: u64,
}

impl UserSlot {
    fn new() -> UserSlot {
        UserSlot {
            chunks: Vec::new(),
            buffer: Vec::new(),
            max_sealed_time: None,
            dirty: false,
            last_append: 0,
        }
    }

    fn record_count(&self) -> usize {
        self.chunks.iter().map(TraceChunk::len).sum::<usize>() + self.buffer.len()
    }
}

/// Sorts and seals the slot's append buffer into one chunk, returning
/// the decoded bytes freed. The stable sort preserves the arrival order
/// of co-timestamped records, matching [`Trace::new`].
fn seal_slot(slot: &mut UserSlot) -> usize {
    debug_assert!(!slot.buffer.is_empty());
    slot.buffer.sort_by_key(|r| r.time());
    let chunk = TraceChunk::encode(&slot.buffer);
    let freed = slot.buffer.len() * RECORD_BYTES;
    slot.max_sealed_time = Some(match slot.max_sealed_time {
        Some(m) => m.max(chunk.max_time()),
        None => chunk.max_time(),
    });
    slot.chunks.push(chunk);
    slot.buffer.clear();
    freed
}

/// Greedily merges runs of adjacent chunks whose combined size fits
/// `chunk_records`, preserving record order exactly. Returns the number
/// of merges performed.
fn compact_slot(slot: &mut UserSlot, chunk_records: usize) -> u64 {
    if slot.chunks.len() < 2 {
        return 0;
    }
    let mut merges = 0u64;
    let mut out: Vec<TraceChunk> = Vec::with_capacity(slot.chunks.len());
    let mut group: Vec<TraceChunk> = Vec::new();
    let mut group_len = 0usize;
    let mut scratch: Vec<Record> = Vec::new();
    let flush = |group: &mut Vec<TraceChunk>,
                 group_len: &mut usize,
                 out: &mut Vec<TraceChunk>,
                 scratch: &mut Vec<Record>,
                 merges: &mut u64| {
        match group.len() {
            0 => {}
            1 => out.push(group.pop().expect("one chunk")),
            _ => {
                scratch.clear();
                for c in group.iter() {
                    c.decode_into(scratch);
                }
                out.push(TraceChunk::encode(scratch));
                group.clear();
                *merges += 1;
            }
        }
        *group_len = 0;
    };
    for chunk in std::mem::take(&mut slot.chunks) {
        if group_len + chunk.len() > chunk_records {
            flush(
                &mut group,
                &mut group_len,
                &mut out,
                &mut scratch,
                &mut merges,
            );
        }
        if chunk.len() >= chunk_records {
            out.push(chunk);
        } else {
            group_len += chunk.len();
            group.push(chunk);
        }
    }
    flush(
        &mut group,
        &mut group_len,
        &mut out,
        &mut scratch,
        &mut merges,
    );
    slot.chunks = out;
    merges
}

/// A compressed, chunked, per-user trace store.
///
/// Build one either by streaming ([`TraceStore::append`] +
/// [`TraceStore::finish`], or [`stream_csv`](crate::io::stream_csv)) or
/// from an existing in-memory dataset ([`TraceStore::from_dataset`]).
/// After `finish`, the store is immutable and shareable across threads
/// (`&TraceStore` is `Sync`); reads decode through the byte-budgeted
/// LRU cache.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::store::{StoreConfig, TraceStore};
/// use mood_trace::{Record, Timestamp, UserId};
///
/// let mut store = TraceStore::new(StoreConfig::default());
/// for i in 0..100 {
///     store.append(
///         UserId::new(i % 4),
///         Record::new(GeoPoint::new(46.2, 6.1)?, Timestamp::from_unix(i as i64 * 60)),
///     );
/// }
/// store.finish();
/// assert_eq!(store.user_count(), 4);
/// assert_eq!(store.trace(UserId::new(0)).len(), 25);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TraceStore {
    config: StoreConfig,
    users: BTreeMap<UserId, UserSlot>,
    cache: Mutex<DecodedCache>,
    appends: u64,
    compactions: u64,
    resorts: u64,
    buffer_bytes: usize,
    peak_buffer_bytes: usize,
    finished: bool,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("users", &self.users.len())
            .field("appends", &self.appends)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl TraceStore {
    /// Creates an empty store accepting appends.
    pub fn new(config: StoreConfig) -> TraceStore {
        TraceStore {
            config,
            users: BTreeMap::new(),
            cache: Mutex::new(DecodedCache::new(config.cache_budget_bytes)),
            appends: 0,
            compactions: 0,
            resorts: 0,
            buffer_bytes: 0,
            peak_buffer_bytes: 0,
            finished: false,
        }
    }

    /// An already-finished empty store; used by the metadata operations
    /// to assemble derived stores chunk-by-chunk.
    fn new_finished(config: StoreConfig) -> TraceStore {
        let mut s = TraceStore::new(config);
        s.finished = true;
        s
    }

    /// Compresses an in-memory dataset into a store.
    pub fn from_dataset(dataset: &Dataset, config: StoreConfig) -> TraceStore {
        let mut store = TraceStore::new(config);
        for trace in dataset.iter() {
            for r in trace.records() {
                store.append(trace.user(), *r);
            }
        }
        store.finish();
        store
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Appends one record to `user`'s trace. Records may arrive in any
    /// order; out-of-order users are globally re-sorted at
    /// [`TraceStore::finish`] so decoded traces always match
    /// [`Trace::new`] bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when called after [`TraceStore::finish`].
    pub fn append(&mut self, user: UserId, record: Record) {
        assert!(!self.finished, "append after finish()");
        self.appends += 1;
        let appends = self.appends;
        let slot = self.users.entry(user).or_insert_with(UserSlot::new);
        if slot.max_sealed_time.is_some_and(|m| record.time() < m) {
            slot.dirty = true;
        }
        slot.buffer.push(record);
        slot.last_append = appends;
        self.buffer_bytes += RECORD_BYTES;
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(self.buffer_bytes);
        if slot.buffer.len() >= self.config.seal_records {
            self.buffer_bytes -= seal_slot(slot);
        }
        if self.config.compact_after > 0 && appends.is_multiple_of(self.config.compact_after) {
            self.sweep_cold();
        }
    }

    /// Seals and compacts users that have not appended for a full
    /// `compact_after` window, bounding decoded buffer memory for cold
    /// users without touching hot ones.
    fn sweep_cold(&mut self) {
        let threshold = self.appends.saturating_sub(self.config.compact_after);
        let chunk_records = self.config.chunk_records;
        let mut freed = 0usize;
        let mut merges = 0u64;
        for slot in self.users.values_mut() {
            if slot.last_append > threshold {
                continue;
            }
            if !slot.buffer.is_empty() {
                freed += seal_slot(slot);
                slot.buffer.shrink_to_fit();
            }
            merges += compact_slot(slot, chunk_records);
        }
        self.buffer_bytes -= freed;
        self.compactions += merges;
    }

    /// Seals every buffer, re-sorts users whose records arrived out of
    /// order, compacts all chunks, and freezes the store for reading.
    /// Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        let chunk_records = self.config.chunk_records;
        let mut freed = 0usize;
        let mut merges = 0u64;
        let mut resorts = 0u64;
        for slot in self.users.values_mut() {
            if !slot.buffer.is_empty() {
                freed += seal_slot(slot);
            }
            slot.buffer = Vec::new();
            if slot.dirty {
                // Out-of-order arrivals: decode everything, stable-sort
                // globally (same tie order as Trace::new over the full
                // arrival sequence), and re-chunk at the read size.
                let mut records = Vec::with_capacity(slot.record_count());
                for c in &slot.chunks {
                    c.decode_into(&mut records);
                }
                records.sort_by_key(|r| r.time());
                slot.chunks = records
                    .chunks(chunk_records)
                    .map(TraceChunk::encode)
                    .collect();
                slot.dirty = false;
                resorts += 1;
            } else {
                merges += compact_slot(slot, chunk_records);
            }
        }
        self.buffer_bytes -= freed;
        self.compactions += merges;
        self.resorts += resorts;
        self.finished = true;
    }

    /// `true` once [`TraceStore::finish`] has run.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Number of users in the store.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// `true` when the store holds no users.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Total records across all users.
    pub fn record_count(&self) -> usize {
        self.users.values().map(UserSlot::record_count).sum()
    }

    /// The user IDs present, ascending (same order as
    /// [`Dataset::user_ids`]).
    pub fn user_ids(&self) -> Vec<UserId> {
        self.users.keys().copied().collect()
    }

    fn slot(&self, user: UserId) -> &UserSlot {
        assert!(self.finished, "TraceStore reads require finish()");
        self.users.get(&user).expect("unknown user in TraceStore")
    }

    fn decode_slot(&self, user: UserId, slot: &UserSlot) -> Trace {
        let mut records = Vec::with_capacity(slot.record_count());
        for c in &slot.chunks {
            c.decode_into(&mut records);
        }
        Trace::from_sorted(user, records).expect("finished store chunks are sorted")
    }

    /// The decoded trace of `user`, served through the LRU cache. The
    /// decode itself runs outside the cache lock (chunks are immutable
    /// after finish), so parallel workers do not serialize on it.
    ///
    /// # Panics
    ///
    /// Panics for unknown users or before [`TraceStore::finish`].
    pub fn trace(&self, user: UserId) -> Arc<Trace> {
        let slot = self.slot(user);
        if let Some(hit) = self.cache.lock().expect("store cache lock").get(user) {
            return hit;
        }
        let trace = Arc::new(self.decode_slot(user, slot));
        self.cache
            .lock()
            .expect("store cache lock")
            .insert(user, &trace);
        trace
    }

    /// Like [`TraceStore::trace`] but returns `None` for unknown users.
    pub fn get(&self, user: UserId) -> Option<Arc<Trace>> {
        assert!(self.finished, "TraceStore reads require finish()");
        self.users.contains_key(&user).then(|| self.trace(user))
    }

    /// Decodes the whole store into an in-memory [`Dataset`],
    /// bypassing the cache. The result is bit-identical to building the
    /// dataset from the original record sequence.
    pub fn to_dataset(&self) -> Dataset {
        assert!(self.finished, "TraceStore reads require finish()");
        Dataset::from_traces(
            self.users
                .iter()
                .map(|(user, slot)| self.decode_slot(*user, slot)),
        )
        .expect("store users are unique")
    }

    fn insert_user_chunks(&mut self, user: UserId, chunks: Vec<TraceChunk>) {
        debug_assert!(!chunks.is_empty());
        let mut slot = UserSlot::new();
        slot.max_sealed_time = Some(
            chunks
                .iter()
                .map(TraceChunk::max_time)
                .max()
                .expect("non-empty"),
        );
        slot.chunks = chunks;
        self.users.insert(user, slot);
    }

    /// Chronological per-user split, chunk-routed: semantics identical
    /// to [`Dataset::split_chronological`], but only chunks straddling
    /// a user's cut instant are decoded — everything else moves as
    /// compressed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `train_span` is not strictly positive or the store is
    /// unfinished.
    pub fn split_chronological(&self, train_span: TimeDelta) -> (TraceStore, TraceStore) {
        assert!(self.finished, "TraceStore reads require finish()");
        assert!(train_span.as_secs() > 0, "train_span must be positive");
        let mut train = TraceStore::new_finished(self.config);
        let mut test = TraceStore::new_finished(self.config);
        let mut scratch: Vec<Record> = Vec::new();
        for (user, slot) in &self.users {
            let start = slot.chunks[0].min_time();
            let cut = start.offset(train_span);
            let mut left: Vec<TraceChunk> = Vec::new();
            let mut right: Vec<TraceChunk> = Vec::new();
            for c in &slot.chunks {
                if c.max_time() < cut {
                    left.push(c.clone());
                } else if c.min_time() >= cut {
                    right.push(c.clone());
                } else {
                    scratch.clear();
                    c.decode_into(&mut scratch);
                    let split = scratch.partition_point(|r| r.time() < cut);
                    // min_time < cut <= max_time, so both halves are
                    // non-empty.
                    left.push(TraceChunk::encode(&scratch[..split]));
                    right.push(TraceChunk::encode(&scratch[split..]));
                }
            }
            if !left.is_empty() && !right.is_empty() {
                train.insert_user_chunks(*user, left);
                test.insert_user_chunks(*user, right);
            }
        }
        (train, test)
    }

    /// Restricts the store to its most active `days`-day window,
    /// chunk-routed: semantics identical to
    /// [`Dataset::most_active_window`]. Chunks whose records all fall in
    /// one day contribute to the activity histogram without decoding;
    /// chunks fully inside the chosen window move compressed.
    ///
    /// # Panics
    ///
    /// Panics if `days` is not strictly positive or the store is
    /// unfinished.
    pub fn most_active_window(&self, days: i64) -> Option<TraceStore> {
        assert!(self.finished, "TraceStore reads require finish()");
        assert!(days > 0, "days must be positive");
        if self.users.is_empty() {
            return None;
        }
        let start = self
            .users
            .values()
            .map(|s| s.chunks[0].min_time())
            .min()
            .expect("non-empty");
        let end = self
            .users
            .values()
            .map(|s| s.chunks[s.chunks.len() - 1].max_time())
            .max()
            .expect("non-empty");
        let total_days = (end.since(start).as_secs() / 86_400 + 1).max(1);
        let day_of = |t: Timestamp| (t.since(start).as_secs() / 86_400) as usize;
        let mut per_day = vec![0usize; total_days as usize];
        let mut scratch: Vec<Record> = Vec::new();
        for slot in self.users.values() {
            for c in &slot.chunks {
                let d0 = day_of(c.min_time());
                let d1 = day_of(c.max_time());
                if d0 == d1 {
                    per_day[d0] += c.len();
                } else {
                    scratch.clear();
                    c.decode_into(&mut scratch);
                    for r in &scratch {
                        per_day[day_of(r.time())] += 1;
                    }
                }
            }
        }
        // Identical window selection to Dataset::most_active_window.
        let w = (days as usize).min(per_day.len());
        let mut best_start = 0usize;
        let mut window_sum: usize = per_day[..w].iter().sum();
        let mut best_sum = window_sum;
        for s in 1..=(per_day.len() - w) {
            window_sum = window_sum - per_day[s - 1] + per_day[s + w - 1];
            if window_sum > best_sum {
                best_sum = window_sum;
                best_start = s;
            }
        }
        let win_start = start.offset(TimeDelta::from_days(best_start as i64));
        let win_end = win_start.offset(TimeDelta::from_days(days));
        let mut out = TraceStore::new_finished(self.config);
        for (user, slot) in &self.users {
            let mut kept: Vec<TraceChunk> = Vec::new();
            for c in &slot.chunks {
                if c.min_time() >= win_start && c.max_time() < win_end {
                    kept.push(c.clone());
                } else if c.max_time() < win_start || c.min_time() >= win_end {
                    continue;
                } else {
                    scratch.clear();
                    c.decode_into(&mut scratch);
                    let lo = scratch.partition_point(|r| r.time() < win_start);
                    let hi = scratch.partition_point(|r| r.time() < win_end);
                    if lo < hi {
                        kept.push(TraceChunk::encode(&scratch[lo..hi]));
                    }
                }
            }
            if !kept.is_empty() {
                out.insert_user_chunks(*user, kept);
            }
        }
        Some(out)
    }

    /// Smallest bounding box containing every record, computed from the
    /// per-chunk summaries without decoding; `None` when empty. Equal to
    /// [`Dataset::bounding_box`] on the decoded form.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        assert!(self.finished, "TraceStore reads require finish()");
        let mut boxes = self
            .users
            .values()
            .flat_map(|s| s.chunks.iter())
            .map(TraceChunk::bounding_box);
        let first = boxes.next()?;
        Some(boxes.fold(first, |acc, b| {
            BoundingBox::new(
                acc.min_lat().min(b.min_lat()),
                acc.max_lat().max(b.max_lat()),
                acc.min_lng().min(b.min_lng()),
                acc.max_lng().max(b.max_lng()),
            )
            .expect("union of valid boxes is valid")
        }))
    }

    /// Earliest record timestamp, from chunk summaries; `None` when
    /// empty.
    pub fn start_time(&self) -> Option<Timestamp> {
        assert!(self.finished, "TraceStore reads require finish()");
        self.users.values().map(|s| s.chunks[0].min_time()).min()
    }

    /// Latest record timestamp, from chunk summaries; `None` when empty.
    pub fn end_time(&self) -> Option<Timestamp> {
        assert!(self.finished, "TraceStore reads require finish()");
        self.users
            .values()
            .map(|s| s.chunks[s.chunks.len() - 1].max_time())
            .max()
    }

    /// Atomic snapshot of the store's counters and gauges.
    pub fn stats(&self) -> StoreStats {
        let (chunks, encoded_bytes) = self.users.values().fold((0usize, 0usize), |(n, b), s| {
            (
                n + s.chunks.len(),
                b + s
                    .chunks
                    .iter()
                    .map(TraceChunk::encoded_bytes)
                    .sum::<usize>(),
            )
        });
        let cache = self.cache.lock().expect("store cache lock");
        StoreStats {
            users: self.users.len(),
            records: self.record_count(),
            chunks,
            encoded_bytes,
            buffer_bytes: self.buffer_bytes,
            peak_buffer_bytes: self.peak_buffer_bytes,
            resident_bytes: cache.resident_bytes(),
            peak_resident_bytes: cache.peak_resident_bytes(),
            budget_bytes: cache.budget_bytes(),
            cache_hits: cache.hits(),
            decodes: cache.decodes(),
            evictions: cache.evictions(),
            uncached_decodes: cache.uncached_decodes(),
            compactions: self.compactions,
            resorts: self.resorts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            seal_records: 8,
            chunk_records: 32,
            cache_budget_bytes: 1 << 20,
            compact_after: 64,
        }
    }

    /// Interleaved sorted streams for a few users, as a CSV reader
    /// would produce them.
    fn feed_interleaved(store: &mut TraceStore, users: u64, per_user: i64) {
        for t in 0..per_user {
            for u in 0..users {
                store.append(
                    UserId::new(u),
                    rec(46.0 + u as f64 * 0.01 + t as f64 * 1e-5, 6.0, t * 600),
                );
            }
        }
    }

    #[test]
    fn roundtrips_sorted_streams() {
        let mut store = TraceStore::new(small_config());
        feed_interleaved(&mut store, 3, 100);
        store.finish();
        assert_eq!(store.user_count(), 3);
        assert_eq!(store.record_count(), 300);
        for u in 0..3u64 {
            let t = store.trace(UserId::new(u));
            assert_eq!(t.len(), 100);
            assert_eq!(t.start_time().as_unix(), 0);
            assert_eq!(t.end_time().as_unix(), 99 * 600);
        }
        assert_eq!(store.stats().resorts, 0);
    }

    #[test]
    fn matches_trace_new_for_out_of_order_input() {
        // Shuffled arrival order, with duplicate timestamps to exercise
        // the stable tie order.
        let mut arrivals = Vec::new();
        for i in 0..200i64 {
            let t = (i * 7919) % 50; // many collisions
            arrivals.push(rec(46.0 + i as f64 * 1e-4, 6.0, t));
        }
        let mut store = TraceStore::new(small_config());
        for r in &arrivals {
            store.append(UserId::new(1), *r);
        }
        store.finish();
        assert_eq!(store.stats().resorts, 1);
        let expected = Trace::new(UserId::new(1), arrivals).unwrap();
        assert_eq!(*store.trace(UserId::new(1)), expected);
    }

    #[test]
    fn from_dataset_roundtrips_exactly() {
        let traces: Vec<Trace> = (0..5u64)
            .map(|u| {
                let records: Vec<Record> = (0..77)
                    .map(|i| rec(46.0 + u as f64 * 0.02, 6.0 + i as f64 * 1e-4, i * 300))
                    .collect();
                Trace::new(UserId::new(u), records).unwrap()
            })
            .collect();
        let ds = Dataset::from_traces(traces).unwrap();
        let store = TraceStore::from_dataset(&ds, small_config());
        assert_eq!(store.to_dataset(), ds);
    }

    #[test]
    fn compaction_merges_seal_chunks() {
        let mut store = TraceStore::new(small_config());
        feed_interleaved(&mut store, 1, 100);
        store.finish();
        let stats = store.stats();
        // 100 records at seal size 8 produce 13 chunks; compaction at
        // chunk size 32 merges them down.
        assert!(stats.compactions > 0, "expected merges, got {stats:?}");
        assert!(
            stats.chunks <= 4,
            "expected <= 4 chunks, got {}",
            stats.chunks
        );
        assert_eq!(store.trace(UserId::new(0)).len(), 100);
    }

    #[test]
    fn cold_sweep_seals_inactive_buffers() {
        let mut store = TraceStore::new(StoreConfig {
            seal_records: 1000, // never seal by size
            chunk_records: 2000,
            cache_budget_bytes: 1 << 20,
            compact_after: 16,
        });
        // User 9 appends 5 records, then goes cold while user 1 streams.
        for i in 0..5 {
            store.append(UserId::new(9), rec(46.0, 6.0, i));
        }
        for i in 0..64 {
            store.append(UserId::new(1), rec(46.1, 6.1, i));
        }
        // The cold sweep sealed user 9's buffer even though it is far
        // below seal_records.
        assert!(store.users[&UserId::new(9)].buffer.is_empty());
        assert_eq!(store.users[&UserId::new(9)].chunks.len(), 1);
        store.finish();
        assert_eq!(store.trace(UserId::new(9)).len(), 5);
        assert_eq!(store.trace(UserId::new(1)).len(), 64);
    }

    #[test]
    fn buffer_bytes_accounting_balances() {
        let mut store = TraceStore::new(small_config());
        feed_interleaved(&mut store, 4, 50);
        assert!(store.stats().peak_buffer_bytes > 0);
        store.finish();
        assert_eq!(store.stats().buffer_bytes, 0);
    }

    #[test]
    fn split_chronological_matches_dataset() {
        let mut store = TraceStore::new(small_config());
        feed_interleaved(&mut store, 4, 500); // ~3.5 days at 600 s cadence
        store.finish();
        let ds = store.to_dataset();
        let span = TimeDelta::from_days(2);
        let (st_train, st_test) = store.split_chronological(span);
        let (ds_train, ds_test) = ds.split_chronological(span);
        assert_eq!(st_train.to_dataset(), ds_train);
        assert_eq!(st_test.to_dataset(), ds_test);
    }

    #[test]
    fn split_chronological_drops_train_only_users() {
        let mut store = TraceStore::new(small_config());
        for i in 0..50 {
            store.append(UserId::new(1), rec(46.0, 6.0, i * 3600));
        }
        // user 2 has records only inside the first day
        for i in 0..5 {
            store.append(UserId::new(2), rec(46.1, 6.1, i * 600));
        }
        store.finish();
        let (train, test) = store.split_chronological(TimeDelta::from_days(1));
        assert_eq!(train.user_ids(), vec![UserId::new(1)]);
        assert_eq!(test.user_ids(), vec![UserId::new(1)]);
        let ds = store.to_dataset();
        let (dt, dv) = ds.split_chronological(TimeDelta::from_days(1));
        assert_eq!(train.to_dataset(), dt);
        assert_eq!(test.to_dataset(), dv);
    }

    #[test]
    fn most_active_window_matches_dataset() {
        let mut store = TraceStore::new(small_config());
        // Sparse early days, dense later days, two users.
        for u in 0..2u64 {
            for d in 0..10i64 {
                store.append(UserId::new(u), rec(46.0, 6.0, d * 86_400));
            }
            for d in 10..13i64 {
                for h in 0..24i64 {
                    store.append(UserId::new(u), rec(46.0, 6.0, d * 86_400 + h * 3600));
                }
            }
        }
        store.finish();
        let ds = store.to_dataset();
        let st_win = store.most_active_window(3).unwrap();
        let ds_win = ds.most_active_window(3).unwrap();
        assert_eq!(st_win.to_dataset(), ds_win);
    }

    #[test]
    fn bounding_box_and_time_bounds_match_dataset() {
        let mut store = TraceStore::new(small_config());
        feed_interleaved(&mut store, 3, 200);
        store.finish();
        let ds = store.to_dataset();
        assert_eq!(store.bounding_box(), ds.bounding_box());
        assert_eq!(store.start_time(), ds.start_time());
        assert_eq!(store.end_time(), ds.end_time());
    }

    #[test]
    fn cache_budget_bounds_resident_bytes() {
        let mut store = TraceStore::new(StoreConfig {
            seal_records: 64,
            chunk_records: 256,
            // Budget fits ~2 of the 8 decoded traces.
            cache_budget_bytes: 250 * RECORD_BYTES,
            compact_after: 1024,
        });
        feed_interleaved(&mut store, 8, 100);
        store.finish();
        for _ in 0..3 {
            for u in 0..8u64 {
                let t = store.trace(UserId::new(u));
                assert_eq!(t.len(), 100);
                let stats = store.stats();
                assert!(
                    stats.resident_bytes <= stats.budget_bytes,
                    "resident {} > budget {}",
                    stats.resident_bytes,
                    stats.budget_bytes
                );
            }
        }
        let stats = store.stats();
        assert!(stats.evictions > 0);
        assert!(stats.peak_resident_bytes <= stats.budget_bytes);
    }

    #[test]
    fn compression_beats_half_of_vec_form() {
        let mut store = TraceStore::new(StoreConfig::default());
        // GPS-like jitter around a dwell point, 30 s cadence.
        for u in 0..4u64 {
            for i in 0..5000i64 {
                let jitter = ((i * 2_654_435_761) % 1000) as f64 * 1e-7;
                store.append(UserId::new(u), rec(46.2 + jitter, 6.14 - jitter, i * 30));
            }
        }
        store.finish();
        let stats = store.stats();
        let vec_bytes = stats.records * RECORD_BYTES;
        assert!(
            stats.encoded_bytes * 2 <= vec_bytes,
            "encoded {} vs vec {}",
            stats.encoded_bytes,
            vec_bytes
        );
    }

    #[test]
    #[should_panic(expected = "reads require finish")]
    fn reads_before_finish_panic() {
        let mut store = TraceStore::new(small_config());
        store.append(UserId::new(1), rec(46.0, 6.0, 0));
        let _ = store.trace(UserId::new(1));
    }

    #[test]
    #[should_panic(expected = "append after finish")]
    fn append_after_finish_panics() {
        let mut store = TraceStore::new(small_config());
        store.append(UserId::new(1), rec(46.0, 6.0, 0));
        store.finish();
        store.append(UserId::new(1), rec(46.0, 6.0, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mood_geo::GeoPoint;
    use proptest::prelude::*;

    fn arb_records() -> impl Strategy<Value = Vec<Record>> {
        proptest::collection::vec(
            (
                -1_000_000i64..1_000_000,
                -0.4f64..0.4,
                -0.4f64..0.4,
                0u64..4,
            ),
            1..300,
        )
        .prop_map(|tuples| {
            tuples
                .into_iter()
                .map(|(t, dlat, dlng, _)| {
                    Record::new(
                        GeoPoint::new(46.0 + dlat, 6.0 + dlng).unwrap(),
                        Timestamp::from_unix(t),
                    )
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn chunk_roundtrip_is_bit_exact(records in arb_records()) {
            let chunk = TraceChunk::encode(&records);
            let mut back = Vec::new();
            chunk.decode_into(&mut back);
            prop_assert_eq!(back.len(), records.len());
            for (a, b) in records.iter().zip(&back) {
                prop_assert_eq!(a.time(), b.time());
                prop_assert_eq!(a.point().lat().to_bits(), b.point().lat().to_bits());
                prop_assert_eq!(a.point().lng().to_bits(), b.point().lng().to_bits());
            }
        }

        #[test]
        fn store_matches_trace_new(records in arb_records()) {
            let mut store = TraceStore::new(StoreConfig {
                seal_records: 7,
                chunk_records: 19,
                cache_budget_bytes: 1 << 16,
                compact_after: 23,
            });
            for r in &records {
                store.append(UserId::new(5), *r);
            }
            store.finish();
            let expected = Trace::new(UserId::new(5), records).unwrap();
            prop_assert_eq!(&*store.trace(UserId::new(5)), &expected);
        }
    }
}
