use serde::{Deserialize, Serialize};

use mood_geo::GeoPoint;

/// A point in time, stored as whole seconds since the Unix epoch.
///
/// Second granularity matches the paper's datasets (GPS fixes seconds to
/// minutes apart) and keeps arithmetic exact — no floating-point drift in
/// split points or window boundaries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// Creates a timestamp from Unix seconds.
    pub fn from_unix(seconds: i64) -> Self {
        Self(seconds)
    }

    /// Seconds since the Unix epoch.
    pub fn as_unix(&self) -> i64 {
        self.0
    }

    /// The timestamp `delta` later (or earlier for negative deltas),
    /// saturating at the i64 boundaries.
    pub fn offset(&self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(delta.as_secs()))
    }

    /// Signed duration from `earlier` to `self`.
    pub fn since(&self, earlier: Timestamp) -> TimeDelta {
        TimeDelta::from_secs(self.0.saturating_sub(earlier.0))
    }

    /// Midpoint between two timestamps (truncating).
    pub fn midpoint(a: Timestamp, b: Timestamp) -> Timestamp {
        // average without overflow
        Timestamp(a.0 / 2 + b.0 / 2 + (a.0 % 2 + b.0 % 2) / 2)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A signed span of time in whole seconds.
///
/// Used for trace durations, the fine-grained window length (24 h) and the
/// recursion floor δ (4 h) of MooD's Algorithm 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TimeDelta(i64);

impl TimeDelta {
    /// A span of `seconds` seconds (may be negative).
    pub const fn from_secs(seconds: i64) -> Self {
        Self(seconds)
    }

    /// A span of `minutes` minutes.
    pub const fn from_mins(minutes: i64) -> Self {
        Self(minutes * 60)
    }

    /// A span of `hours` hours.
    pub const fn from_hours(hours: i64) -> Self {
        Self(hours * 3600)
    }

    /// A span of `days` days.
    pub const fn from_days(days: i64) -> Self {
        Self(days * 86_400)
    }

    /// The span in whole seconds.
    pub const fn as_secs(&self) -> i64 {
        self.0
    }

    /// The span in fractional hours.
    pub fn as_hours_f64(&self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Absolute value of the span.
    pub fn abs(&self) -> TimeDelta {
        TimeDelta(self.0.abs())
    }

    /// Half of this span (truncating).
    pub fn halved(&self) -> TimeDelta {
        TimeDelta(self.0 / 2)
    }
}

impl std::ops::Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Mul<i64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(rhs))
    }
}

impl std::fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        if s % 86_400 == 0 && s >= 86_400 {
            write!(f, "{sign}{}d", s / 86_400)
        } else if s % 3600 == 0 && s >= 3600 {
            write!(f, "{sign}{}h", s / 3600)
        } else {
            write!(f, "{sign}{s}s")
        }
    }
}

/// One spatio-temporal record `r = (lat, lng, t)` (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    point: GeoPoint,
    time: Timestamp,
}

impl Record {
    /// Creates a record from a validated point and a timestamp.
    pub fn new(point: GeoPoint, time: Timestamp) -> Self {
        Self { point, time }
    }

    /// The geographic position of the record.
    pub fn point(&self) -> GeoPoint {
        self.point
    }

    /// The instant the record was captured.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// A copy of this record at a different position, same instant.
    /// This is the shape of every LPPM's per-record transformation.
    pub fn with_point(&self, point: GeoPoint) -> Record {
        Record {
            point,
            time: self.time,
        }
    }

    /// A copy of this record at a different instant, same position.
    pub fn with_time(&self, time: Timestamp) -> Record {
        Record {
            point: self.point,
            time,
        }
    }
}

impl std::fmt::Display for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.point, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_unix(1_000);
        assert_eq!(t.offset(TimeDelta::from_secs(500)).as_unix(), 1_500);
        assert_eq!(t.offset(TimeDelta::from_secs(-500)).as_unix(), 500);
        assert_eq!(
            Timestamp::from_unix(2_000).since(t),
            TimeDelta::from_secs(1_000)
        );
    }

    #[test]
    fn timestamp_midpoint() {
        let a = Timestamp::from_unix(100);
        let b = Timestamp::from_unix(200);
        assert_eq!(Timestamp::midpoint(a, b).as_unix(), 150);
        // odd sum truncates
        let c = Timestamp::from_unix(101);
        assert_eq!(Timestamp::midpoint(c, b).as_unix(), 150);
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp::from_unix(5) < Timestamp::from_unix(9));
    }

    #[test]
    fn delta_constructors_agree() {
        assert_eq!(TimeDelta::from_mins(60), TimeDelta::from_hours(1));
        assert_eq!(TimeDelta::from_hours(24), TimeDelta::from_days(1));
        assert_eq!(TimeDelta::from_days(1).as_secs(), 86_400);
    }

    #[test]
    fn delta_arithmetic() {
        let h = TimeDelta::from_hours(1);
        assert_eq!(h + h, TimeDelta::from_hours(2));
        assert_eq!(h - h, TimeDelta::from_secs(0));
        assert_eq!(h * 24, TimeDelta::from_days(1));
        assert_eq!(TimeDelta::from_secs(-30).abs(), TimeDelta::from_secs(30));
        assert_eq!(
            TimeDelta::from_hours(24).halved(),
            TimeDelta::from_hours(12)
        );
    }

    #[test]
    fn delta_display_picks_unit() {
        assert_eq!(TimeDelta::from_days(2).to_string(), "2d");
        assert_eq!(TimeDelta::from_hours(4).to_string(), "4h");
        assert_eq!(TimeDelta::from_secs(90).to_string(), "90s");
        assert_eq!(TimeDelta::from_hours(-4).to_string(), "-4h");
    }

    #[test]
    fn delta_as_hours() {
        assert!((TimeDelta::from_mins(90).as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn record_accessors_and_rewrites() {
        let p = GeoPoint::new(46.0, 6.0).unwrap();
        let q = GeoPoint::new(46.1, 6.1).unwrap();
        let r = Record::new(p, Timestamp::from_unix(42));
        assert_eq!(r.point(), p);
        assert_eq!(r.time().as_unix(), 42);
        let moved = r.with_point(q);
        assert_eq!(moved.point(), q);
        assert_eq!(moved.time(), r.time());
        let shifted = r.with_time(Timestamp::from_unix(100));
        assert_eq!(shifted.point(), p);
        assert_eq!(shifted.time().as_unix(), 100);
    }

    #[test]
    fn serde_roundtrip() {
        let r = Record::new(GeoPoint::new(46.0, 6.0).unwrap(), Timestamp::from_unix(9));
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
