use serde::{Deserialize, Serialize};

use mood_geo::{BoundingBox, GeoPoint};

use crate::{Record, Result, TimeDelta, Timestamp, TraceError, UserId};

/// A user's mobility trace: a non-empty, time-sorted sequence of
/// [`Record`]s (paper §2.1, `T ∈ (R² × R⁺)*`).
///
/// The sorted-and-non-empty invariant is established at construction and
/// preserved by every operation, so attacks and LPPMs can iterate records
/// without defensive checks.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::{Record, Timestamp, Trace, TimeDelta, UserId};
///
/// let records: Vec<Record> = (0..48)
///     .map(|i| Record::new(
///         GeoPoint::new(46.2, 6.1).unwrap(),
///         Timestamp::from_unix(i * 1800),
///     ))
///     .collect();
/// let trace = Trace::new(UserId::new(3), records)?;
/// let days = trace.windows(TimeDelta::from_hours(12));
/// assert_eq!(days.len(), 2);
/// # Ok::<(), mood_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "TraceRepr", into = "TraceRepr")]
pub struct Trace {
    user: UserId,
    records: Vec<Record>,
}

impl Trace {
    /// Creates a trace, sorting records by timestamp (stable sort, so
    /// co-timestamped records keep their relative order).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyTrace`] when `records` is empty.
    pub fn new(user: UserId, mut records: Vec<Record>) -> Result<Self> {
        if records.is_empty() {
            return Err(TraceError::EmptyTrace);
        }
        // Fast path: one linear scan skips the O(n log n) sort for
        // already-sorted input (the common case — public datasets ship
        // time-ordered and synth generators emit in order).
        let sorted = records.windows(2).all(|p| p[0].time() <= p[1].time());
        if !sorted {
            records.sort_by_key(|r| r.time());
        }
        Ok(Self { user, records })
    }

    /// Creates a trace from records that are already time-sorted,
    /// validating instead of sorting.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyTrace`] for empty input and
    /// [`TraceError::UnsortedRecords`] with the index of the first
    /// violation otherwise.
    pub fn from_sorted(user: UserId, records: Vec<Record>) -> Result<Self> {
        if records.is_empty() {
            return Err(TraceError::EmptyTrace);
        }
        for (i, pair) in records.windows(2).enumerate() {
            if pair[0].time() > pair[1].time() {
                return Err(TraceError::UnsortedRecords { index: i + 1 });
            }
        }
        Ok(Self { user, records })
    }

    /// The user this trace belongs to.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// A copy of the trace re-attributed to `user`; the mechanism behind
    /// `renew_Ids` in Algorithm 1.
    pub fn with_user(&self, user: UserId) -> Trace {
        Trace {
            user,
            records: self.records.clone(),
        }
    }

    /// The time-sorted records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the trace and returns its record buffer (still
    /// time-sorted). This is the recycling half of buffer-reusing hot
    /// loops: build a candidate with [`Trace::new`] from a scratch
    /// buffer, and when the candidate is rejected take the allocation
    /// back instead of dropping it.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Number of records (always ≥ 1).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always `false`; present for API completeness (clippy's
    /// `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Timestamp of the first record.
    pub fn start_time(&self) -> Timestamp {
        self.records[0].time()
    }

    /// Timestamp of the last record.
    pub fn end_time(&self) -> Timestamp {
        self.records[self.records.len() - 1].time()
    }

    /// Time spanned from first to last record.
    pub fn duration(&self) -> TimeDelta {
        self.end_time().since(self.start_time())
    }

    /// Iterator over the geographic points of the records.
    pub fn points(&self) -> impl Iterator<Item = GeoPoint> + '_ {
        self.records.iter().map(|r| r.point())
    }

    /// Smallest bounding box containing every record.
    pub fn bounding_box(&self) -> BoundingBox {
        let points: Vec<GeoPoint> = self.points().collect();
        BoundingBox::from_points(points.iter()).expect("trace is non-empty")
    }

    /// Splits at instant `t`: records strictly before `t` on the left,
    /// records at or after `t` on the right. Either side may be `None`
    /// when it would be empty.
    pub fn split_at_time(&self, t: Timestamp) -> (Option<Trace>, Option<Trace>) {
        let split = self.records.partition_point(|r| r.time() < t);
        let left = if split > 0 {
            Some(Trace {
                user: self.user,
                records: self.records[..split].to_vec(),
            })
        } else {
            None
        };
        let right = if split < self.records.len() {
            Some(Trace {
                user: self.user,
                records: self.records[split..].to_vec(),
            })
        } else {
            None
        };
        (left, right)
    }

    /// Cuts the trace in half according to time (paper §3.4): the split
    /// point is the midpoint between the first and last timestamps.
    ///
    /// When all records share one timestamp the "split" puts everything in
    /// one half; callers (MooD's recursion) stop on the δ duration check
    /// before that can loop.
    pub fn split_in_half(&self) -> (Option<Trace>, Option<Trace>) {
        let mid = Timestamp::midpoint(self.start_time(), self.end_time());
        // Put the midpoint record in the right half unless that empties the
        // left; bias so both halves are non-empty whenever possible.
        let (l, r) = self.split_at_time(mid);
        if l.is_some() {
            (l, r)
        } else {
            self.split_at_time(mid.offset(TimeDelta::from_secs(1)))
        }
    }

    /// Chops the trace into consecutive windows of length `window`,
    /// aligned to the first record's timestamp. Empty windows (gaps longer
    /// than `window`) produce no trace. Used to form the 24 h sub-traces
    /// of the fine-grained experiments (§4.5).
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive.
    pub fn windows(&self, window: TimeDelta) -> Vec<Trace> {
        assert!(window.as_secs() > 0, "window must be positive");
        let start = self.start_time().as_unix();
        let w = window.as_secs();
        let mut out: Vec<Trace> = Vec::new();
        let mut bucket: Vec<Record> = Vec::new();
        let mut bucket_idx = 0i64;
        for r in &self.records {
            let idx = (r.time().as_unix() - start) / w;
            if idx != bucket_idx && !bucket.is_empty() {
                out.push(Trace {
                    user: self.user,
                    records: std::mem::take(&mut bucket),
                });
            }
            bucket_idx = idx;
            bucket.push(*r);
        }
        if !bucket.is_empty() {
            out.push(Trace {
                user: self.user,
                records: bucket,
            });
        }
        out
    }

    /// The records with timestamps in `[from, to)`.
    pub fn records_between(&self, from: Timestamp, to: Timestamp) -> &[Record] {
        let lo = self.records.partition_point(|r| r.time() < from);
        let hi = self.records.partition_point(|r| r.time() < to);
        &self.records[lo..hi]
    }

    /// Temporal projection (paper Eq. 8): the expected position at instant
    /// `t`, linearly interpolated between the two records bracketing `t`.
    /// Instants before the first or after the last record clamp to the
    /// nearest record's position.
    pub fn interpolate_at(&self, t: Timestamp) -> GeoPoint {
        if t <= self.start_time() {
            return self.records[0].point();
        }
        if t >= self.end_time() {
            return self.records[self.records.len() - 1].point();
        }
        // First record with time >= t; i >= 1 because t > start_time.
        let i = self.records.partition_point(|r| r.time() < t);
        let before = &self.records[i - 1];
        let after = &self.records[i];
        let span = after.time().since(before.time()).as_secs();
        if span == 0 {
            return before.point();
        }
        let f = t.since(before.time()).as_secs() as f64 / span as f64;
        before.point().lerp(&after.point(), f)
    }

    /// A new trace keeping every `step`-th record (≥ 1), always retaining
    /// the first record. Used to build scaled-down workloads.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn subsampled(&self, step: usize) -> Trace {
        assert!(step > 0, "step must be positive");
        let records: Vec<Record> = self.records.iter().copied().step_by(step).collect();
        Trace {
            user: self.user,
            records,
        }
    }

    /// Concatenates several fragments of the *same* user into one trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyTrace`] when `parts` is empty and
    /// [`TraceError::DuplicateUser`] when fragments disagree on the user.
    pub fn concat(parts: &[Trace]) -> Result<Trace> {
        let first = parts.first().ok_or(TraceError::EmptyTrace)?;
        let user = first.user;
        let mut records = Vec::new();
        for p in parts {
            if p.user != user {
                return Err(TraceError::DuplicateUser(p.user));
            }
            records.extend_from_slice(&p.records);
        }
        Trace::new(user, records)
    }
}

/// Serialized form of [`Trace`]; construction re-validates the invariant.
#[derive(Serialize, Deserialize)]
struct TraceRepr {
    user: UserId,
    records: Vec<Record>,
}

impl From<Trace> for TraceRepr {
    fn from(t: Trace) -> Self {
        TraceRepr {
            user: t.user,
            records: t.records,
        }
    }
}

impl TryFrom<TraceRepr> for Trace {
    type Error = TraceError;
    fn try_from(r: TraceRepr) -> Result<Self> {
        Trace::new(r.user, r.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(pt(lat, lng), Timestamp::from_unix(t))
    }

    fn walk(n: i64, step_s: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| rec(46.0 + i as f64 * 1e-3, 6.0, i * step_s))
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            Trace::new(UserId::new(1), vec![]),
            Err(TraceError::EmptyTrace)
        ));
    }

    #[test]
    fn new_sorts_records() {
        let t = Trace::new(
            UserId::new(1),
            vec![rec(46.0, 6.0, 100), rec(46.1, 6.0, 50), rec(46.2, 6.0, 75)],
        )
        .unwrap();
        let times: Vec<i64> = t.records().iter().map(|r| r.time().as_unix()).collect();
        assert_eq!(times, vec![50, 75, 100]);
    }

    #[test]
    fn new_sorted_fast_path_preserves_input() {
        // Already-sorted input (including co-timestamped runs) must come
        // out unchanged, whether the scan takes the fast path or not.
        let records = vec![
            rec(46.0, 6.0, 50),
            rec(46.1, 6.0, 75),
            rec(46.2, 6.0, 75),
            rec(46.3, 6.0, 100),
        ];
        let t = Trace::new(UserId::new(1), records.clone()).unwrap();
        assert_eq!(t.records(), records.as_slice());
        // The unsorted path keeps the same stable tie order.
        let mut shuffled = records.clone();
        shuffled.swap(0, 3);
        let sorted = Trace::new(UserId::new(1), shuffled).unwrap();
        let times: Vec<i64> = sorted
            .records()
            .iter()
            .map(|r| r.time().as_unix())
            .collect();
        assert_eq!(times, vec![50, 75, 75, 100]);
    }

    #[test]
    fn from_sorted_validates() {
        let bad = vec![rec(46.0, 6.0, 100), rec(46.1, 6.0, 50)];
        assert!(matches!(
            Trace::from_sorted(UserId::new(1), bad),
            Err(TraceError::UnsortedRecords { index: 1 })
        ));
        let good = vec![rec(46.0, 6.0, 50), rec(46.1, 6.0, 100)];
        assert!(Trace::from_sorted(UserId::new(1), good).is_ok());
    }

    #[test]
    fn duration_and_bounds() {
        let t = walk(10, 60);
        assert_eq!(t.duration(), TimeDelta::from_secs(9 * 60));
        assert_eq!(t.start_time().as_unix(), 0);
        assert_eq!(t.end_time().as_unix(), 540);
        let bb = t.bounding_box();
        assert!(bb.contains(&t.records()[0].point()));
        assert!(bb.contains(&t.records()[9].point()));
    }

    #[test]
    fn with_user_changes_only_user() {
        let t = walk(5, 60);
        let renamed = t.with_user(UserId::new(42));
        assert_eq!(renamed.user(), UserId::new(42));
        assert_eq!(renamed.records(), t.records());
    }

    #[test]
    fn split_at_time_partitions() {
        let t = walk(10, 60);
        let (l, r) = t.split_at_time(Timestamp::from_unix(300));
        let l = l.unwrap();
        let r = r.unwrap();
        assert_eq!(l.len() + r.len(), 10);
        assert!(l.end_time() < Timestamp::from_unix(300));
        assert!(r.start_time() >= Timestamp::from_unix(300));
        assert_eq!(l.user(), t.user());
    }

    #[test]
    fn split_at_time_boundaries() {
        let t = walk(10, 60);
        let (l, r) = t.split_at_time(Timestamp::from_unix(-5));
        assert!(l.is_none());
        assert_eq!(r.unwrap().len(), 10);
        let (l, r) = t.split_at_time(Timestamp::from_unix(10_000));
        assert_eq!(l.unwrap().len(), 10);
        assert!(r.is_none());
    }

    #[test]
    fn split_in_half_balances() {
        let t = walk(10, 60);
        let (l, r) = t.split_in_half();
        let l = l.unwrap();
        let r = r.unwrap();
        assert_eq!(l.len() + r.len(), 10);
        assert!(l.len() >= 4 && l.len() <= 6);
    }

    #[test]
    fn split_in_half_single_record() {
        let t = Trace::new(UserId::new(1), vec![rec(46.0, 6.0, 0)]).unwrap();
        let (l, r) = t.split_in_half();
        // one side carries the record, the other is empty
        assert_eq!(l.iter().chain(r.iter()).map(|t| t.len()).sum::<usize>(), 1);
    }

    #[test]
    fn windows_split_by_duration() {
        // 48 records every 30 min = 24 h of data, minus the last instant
        let t = walk(48, 1800);
        let halves = t.windows(TimeDelta::from_hours(12));
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].len(), 24);
        assert_eq!(halves[1].len(), 24);
        for h in &halves {
            assert_eq!(h.user(), t.user());
        }
    }

    #[test]
    fn windows_skip_gaps() {
        let mut records = vec![rec(46.0, 6.0, 0), rec(46.0, 6.0, 600)];
        // 10-day gap, then two more records
        records.push(rec(46.0, 6.0, 864_000));
        records.push(rec(46.0, 6.0, 864_600));
        let t = Trace::new(UserId::new(1), records).unwrap();
        let days = t.windows(TimeDelta::from_days(1));
        assert_eq!(days.len(), 2);
        assert_eq!(days[0].len(), 2);
        assert_eq!(days[1].len(), 2);
    }

    #[test]
    fn windows_preserve_all_records() {
        let t = walk(100, 977);
        let parts = t.windows(TimeDelta::from_hours(3));
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn records_between_half_open() {
        let t = walk(10, 60);
        let slice = t.records_between(Timestamp::from_unix(60), Timestamp::from_unix(180));
        assert_eq!(slice.len(), 2); // t=60 and t=120, not t=180
    }

    #[test]
    fn interpolate_midpoint() {
        let t = Trace::new(UserId::new(1), vec![rec(46.0, 6.0, 0), rec(46.2, 6.2, 100)]).unwrap();
        let p = t.interpolate_at(Timestamp::from_unix(50));
        assert!((p.lat() - 46.1).abs() < 1e-9);
        assert!((p.lng() - 6.1).abs() < 1e-9);
    }

    #[test]
    fn interpolate_clamps_outside() {
        let t = Trace::new(
            UserId::new(1),
            vec![rec(46.0, 6.0, 100), rec(46.2, 6.2, 200)],
        )
        .unwrap();
        assert_eq!(t.interpolate_at(Timestamp::from_unix(0)), pt(46.0, 6.0));
        assert_eq!(t.interpolate_at(Timestamp::from_unix(999)), pt(46.2, 6.2));
    }

    #[test]
    fn interpolate_exact_record_time() {
        let t = walk(5, 60);
        let p = t.interpolate_at(Timestamp::from_unix(120));
        assert_eq!(p, t.records()[2].point());
    }

    #[test]
    fn subsample_keeps_first() {
        let t = walk(10, 60);
        let s = t.subsampled(3);
        assert_eq!(s.len(), 4); // indices 0,3,6,9
        assert_eq!(s.records()[0], t.records()[0]);
    }

    #[test]
    fn concat_same_user() {
        let t = walk(10, 60);
        let (l, r) = t.split_in_half();
        let joined = Trace::concat(&[l.unwrap(), r.unwrap()]).unwrap();
        assert_eq!(joined, t);
    }

    #[test]
    fn concat_rejects_mixed_users() {
        let a = walk(3, 60);
        let b = walk(3, 60).with_user(UserId::new(2));
        assert!(matches!(
            Trace::concat(&[a, b]),
            Err(TraceError::DuplicateUser(_))
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let t = walk(5, 60);
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn serde_rejects_empty_trace() {
        let json = r#"{"user":1,"records":[]}"#;
        assert!(serde_json::from_str::<Trace>(json).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_trace() -> impl Strategy<Value = Trace> {
        proptest::collection::vec((0i64..1_000_000, -0.4f64..0.4, -0.4f64..0.4), 1..200).prop_map(
            |tuples| {
                let records: Vec<Record> = tuples
                    .into_iter()
                    .map(|(t, dlat, dlng)| {
                        Record::new(
                            GeoPoint::new(46.0 + dlat, 6.0 + dlng).unwrap(),
                            Timestamp::from_unix(t),
                        )
                    })
                    .collect();
                Trace::new(UserId::new(7), records).unwrap()
            },
        )
    }

    proptest! {
        #[test]
        fn construction_sorts(t in arb_trace()) {
            for pair in t.records().windows(2) {
                prop_assert!(pair[0].time() <= pair[1].time());
            }
        }

        #[test]
        fn split_preserves_records(t in arb_trace(), frac in 0.0f64..1.0) {
            let offset = (t.duration().as_secs() as f64 * frac) as i64;
            let cut = t.start_time().offset(TimeDelta::from_secs(offset));
            let (l, r) = t.split_at_time(cut);
            let total = l.as_ref().map_or(0, Trace::len) + r.as_ref().map_or(0, Trace::len);
            prop_assert_eq!(total, t.len());
        }

        #[test]
        fn windows_preserve_records(t in arb_trace(), hours in 1i64..100) {
            let parts = t.windows(TimeDelta::from_hours(hours));
            let total: usize = parts.iter().map(Trace::len).sum();
            prop_assert_eq!(total, t.len());
            // each window spans less than the window length
            for p in &parts {
                prop_assert!(p.duration() < TimeDelta::from_hours(hours));
            }
        }

        #[test]
        fn interpolation_stays_in_bbox(t in arb_trace(), frac in 0.0f64..1.0) {
            let offset = (t.duration().as_secs() as f64 * frac) as i64;
            let at = t.start_time().offset(TimeDelta::from_secs(offset));
            let p = t.interpolate_at(at);
            let bb = t.bounding_box();
            prop_assert!(bb.expanded(1.0).unwrap().contains(&p));
        }

        #[test]
        fn halves_rejoin_to_original(t in arb_trace()) {
            let (l, r) = t.split_in_half();
            let parts: Vec<Trace> = l.into_iter().chain(r).collect();
            let joined = Trace::concat(&parts).unwrap();
            prop_assert_eq!(joined, t);
        }
    }
}
