//! CSV and JSON input/output for mobility datasets.
//!
//! The CSV format is the one most public mobility datasets ship in —
//! one record per line:
//!
//! ```text
//! user_id,lat,lng,timestamp
//! 1,46.204391,6.143158,1354320000
//! ```
//!
//! Timestamps are Unix seconds. Rows may appear in any order; traces are
//! sorted at construction. The header line is optional on input and always
//! written on output.
//!
//! Two readers share one row parser (so they agree on every error and
//! line number): [`read_csv`] decodes the whole file into an in-memory
//! [`Dataset`], while [`stream_csv`] feeds rows straight into a
//! compressed [`TraceStore`](crate::store::TraceStore) without ever
//! materializing the corpus — the path for files whose decoded form
//! exceeds RAM.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mood_geo::GeoPoint;

use crate::store::{StoreConfig, TraceStore};
use crate::{Dataset, Record, Result, Timestamp, Trace, TraceError, UserId};

/// Header written by [`write_csv`] and recognized (and skipped) by
/// [`read_csv`].
pub const CSV_HEADER: &str = "user_id,lat,lng,timestamp";

/// Parses one non-empty CSV row into a user id and record. `line_no` is
/// 1-based and only used for error messages. Shared by [`read_csv`] and
/// [`stream_csv`] so both report identical errors.
fn parse_row(trimmed: &str, line_no: usize) -> Result<(UserId, Record)> {
    let mut fields = trimmed.split(',');
    let (user, lat, lng, ts) = match (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) {
        (Some(u), Some(a), Some(o), Some(t), None) => (u, a, o, t),
        (Some(_), Some(_), Some(_), Some(_), Some(_)) => {
            let count = 5 + fields.count();
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("expected 4 comma-separated fields, got {count} in '{trimmed}'"),
            });
        }
        _ => {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("expected 4 comma-separated fields, got '{trimmed}'"),
            })
        }
    };
    let user: u64 = user.trim().parse().map_err(|_| TraceError::Parse {
        line: line_no,
        message: format!("invalid user id '{user}'"),
    })?;
    let lat: f64 = lat.trim().parse().map_err(|_| TraceError::Parse {
        line: line_no,
        message: format!("invalid latitude '{lat}'"),
    })?;
    let lng: f64 = lng.trim().parse().map_err(|_| TraceError::Parse {
        line: line_no,
        message: format!("invalid longitude '{lng}'"),
    })?;
    let ts: i64 = ts.trim().parse().map_err(|_| TraceError::Parse {
        line: line_no,
        message: format!("invalid timestamp '{ts}'"),
    })?;
    let point = GeoPoint::new(lat, lng).map_err(|e| TraceError::Parse {
        line: line_no,
        message: e.to_string(),
    })?;
    Ok((
        UserId::new(user),
        Record::new(point, Timestamp::from_unix(ts)),
    ))
}

/// Drives the shared line loop: reads lines into one reused buffer (no
/// per-line `String` allocation), skips blanks and an optional header,
/// and hands each parsed row to `sink`.
fn for_each_row<R, F>(reader: R, mut sink: F) -> Result<()>
where
    R: Read,
    F: FnMut(UserId, Record),
{
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            return Ok(());
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || (line_no == 1 && trimmed.eq_ignore_ascii_case(CSV_HEADER)) {
            continue;
        }
        let (user, record) = parse_row(trimmed, line_no)?;
        sink(user, record);
    }
}

/// Reads a dataset from CSV text (see module docs for the format).
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a 1-based line number for malformed
/// rows, invalid coordinates or non-integer timestamps, and
/// [`TraceError::Io`] for underlying read failures.
///
/// # Examples
///
/// ```
/// let csv = "user_id,lat,lng,timestamp\n1,46.2,6.14,0\n1,46.3,6.15,600\n";
/// let ds = mood_trace::io::read_csv(csv.as_bytes())?;
/// assert_eq!(ds.user_count(), 1);
/// assert_eq!(ds.record_count(), 2);
/// # Ok::<(), mood_trace::TraceError>(())
/// ```
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset> {
    let mut by_user: BTreeMap<UserId, Vec<Record>> = BTreeMap::new();
    for_each_row(reader, |user, record| {
        by_user.entry(user).or_default().push(record);
    })?;
    let mut ds = Dataset::new();
    for (user, records) in by_user {
        ds.insert(Trace::new(user, records)?)?;
    }
    Ok(ds)
}

/// Streams CSV text into a compressed [`TraceStore`] without ever
/// holding the decoded corpus in memory: rows append into bounded
/// per-user buffers that seal into delta-compressed chunks as they
/// fill. The returned store is finished (ready for reads) and decodes
/// to exactly the dataset [`read_csv`] would produce from the same
/// input — including the stable ordering of co-timestamped rows.
///
/// # Errors
///
/// Identical to [`read_csv`]: same malformed-row messages and 1-based
/// line numbers (both readers share one row parser).
///
/// # Examples
///
/// ```
/// use mood_trace::store::StoreConfig;
///
/// let csv = "user_id,lat,lng,timestamp\n1,46.2,6.14,0\n1,46.3,6.15,600\n";
/// let store = mood_trace::io::stream_csv(csv.as_bytes(), StoreConfig::default())?;
/// assert_eq!(store.user_count(), 1);
/// assert_eq!(store.record_count(), 2);
/// # Ok::<(), mood_trace::TraceError>(())
/// ```
pub fn stream_csv<R: Read>(reader: R, config: StoreConfig) -> Result<TraceStore> {
    let mut store = TraceStore::new(config);
    for_each_row(reader, |user, record| {
        store.append(user, record);
    })?;
    store.finish();
    Ok(store)
}

/// Streams a CSV file into a compressed [`TraceStore`].
///
/// # Errors
///
/// See [`stream_csv`]; additionally fails when the file cannot be
/// opened.
pub fn stream_csv_file<P: AsRef<Path>>(path: P, config: StoreConfig) -> Result<TraceStore> {
    stream_csv(std::fs::File::open(path)?, config)
}

/// Writes `dataset` as CSV (records of each user in time order, users in
/// ascending ID order), with a header line.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failure.
pub fn write_csv<W: Write>(dataset: &Dataset, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{CSV_HEADER}")?;
    for trace in dataset.iter() {
        let uid = trace.user().as_u64();
        for r in trace.records() {
            // default f64 formatting is shortest-roundtrip: reading the
            // CSV back reproduces the exact coordinates
            writeln!(
                w,
                "{uid},{},{},{}",
                r.point().lat(),
                r.point().lng(),
                r.time().as_unix()
            )?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSV dataset from a file path.
///
/// # Errors
///
/// See [`read_csv`]; additionally fails when the file cannot be opened.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<Dataset> {
    read_csv(std::fs::File::open(path)?)
}

/// Writes a dataset to a CSV file, creating or truncating it.
///
/// # Errors
///
/// See [`write_csv`]; additionally fails when the file cannot be created.
pub fn write_csv_file<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<()> {
    write_csv(dataset, std::fs::File::create(path)?)
}

/// Serializes a dataset to pretty JSON.
///
/// # Errors
///
/// Returns [`TraceError::Io`] if serialization fails (it cannot for valid
/// datasets).
pub fn to_json(dataset: &Dataset) -> Result<String> {
    serde_json::to_string_pretty(dataset).map_err(|e| TraceError::Io(std::io::Error::other(e)))
}

/// Deserializes a dataset from JSON produced by [`to_json`].
///
/// # Errors
///
/// Returns [`TraceError::Parse`] (line 0) when the JSON is malformed or
/// violates dataset invariants.
pub fn from_json(json: &str) -> Result<Dataset> {
    serde_json::from_str(json).map_err(|e| TraceError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let csv = "\
user_id,lat,lng,timestamp
1,46.20,6.14,0
1,46.21,6.15,600
2,45.76,4.83,100
2,45.77,4.84,700
";
        read_csv(csv.as_bytes()).unwrap()
    }

    #[test]
    fn read_basic_csv() {
        let ds = sample_dataset();
        assert_eq!(ds.user_count(), 2);
        assert_eq!(ds.record_count(), 4);
        let t1 = ds.get(UserId::new(1)).unwrap();
        assert_eq!(t1.start_time().as_unix(), 0);
    }

    #[test]
    fn read_without_header() {
        let csv = "1,46.20,6.14,0\n1,46.21,6.15,600\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.record_count(), 2);
    }

    #[test]
    fn read_skips_blank_lines() {
        let csv = "1,46.20,6.14,0\n\n1,46.21,6.15,600\n\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.record_count(), 2);
    }

    #[test]
    fn read_handles_crlf_lines() {
        let csv = "user_id,lat,lng,timestamp\r\n1,46.20,6.14,0\r\n1,46.21,6.15,600\r\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.record_count(), 2);
    }

    #[test]
    fn read_handles_missing_final_newline() {
        let csv = "1,46.20,6.14,0\n1,46.21,6.15,600";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.record_count(), 2);
    }

    #[test]
    fn read_sorts_out_of_order_rows() {
        let csv = "1,46.21,6.15,600\n1,46.20,6.14,0\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        let t = ds.get(UserId::new(1)).unwrap();
        assert_eq!(t.start_time().as_unix(), 0);
    }

    #[test]
    fn read_reports_line_numbers() {
        let csv = "1,46.20,6.14,0\n1,not_a_number,6.15,600\n";
        match read_csv(csv.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn read_rejects_wrong_field_count() {
        let csv = "1,46.20,6.14\n";
        assert!(matches!(
            read_csv(csv.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
        let csv = "1,46.20,6.14,0,extra\n";
        assert!(matches!(
            read_csv(csv.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn read_rejects_excess_fields_with_count() {
        // The >4-field arm reports how many fields the row actually had.
        let csv = "1,46.20,6.14,0,extra,more,stuff\n";
        match read_csv(csv.as_bytes()) {
            Err(TraceError::Parse { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("got 7"), "message: {message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn read_rejects_invalid_coordinates() {
        let csv = "1,95.0,6.14,0\n";
        assert!(matches!(
            read_csv(csv.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn stream_csv_equals_read_csv() {
        let csv = "\
user_id,lat,lng,timestamp
1,46.20,6.14,600
1,46.21,6.15,0
2,45.76,4.83,100
1,46.22,6.16,600
2,45.77,4.84,700
";
        let ds = read_csv(csv.as_bytes()).unwrap();
        let config = StoreConfig::default()
            .with_seal_records(2)
            .with_chunk_records(4);
        let store = stream_csv(csv.as_bytes(), config).unwrap();
        assert_eq!(store.to_dataset(), ds);
    }

    #[test]
    fn stream_csv_reports_identical_errors() {
        for csv in [
            "1,46.20,6.14,0\n1,not_a_number,6.15,600\n",
            "1,46.20,6.14\n",
            "1,46.20,6.14,0,extra,more\n",
            "1,95.0,6.14,0\n",
        ] {
            let read_err = read_csv(csv.as_bytes()).unwrap_err();
            let stream_err = stream_csv(csv.as_bytes(), StoreConfig::default()).unwrap_err();
            assert_eq!(format!("{read_err:?}"), format!("{stream_err:?}"));
        }
    }

    #[test]
    fn csv_roundtrip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn csv_file_roundtrip() {
        let ds = sample_dataset();
        let dir = std::env::temp_dir().join("mood_trace_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        write_csv_file(&ds, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(ds, back);
        let streamed = stream_csv_file(&path, StoreConfig::default()).unwrap();
        assert_eq!(streamed.to_dataset(), ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_roundtrip() {
        let ds = sample_dataset();
        let json = to_json(&ds).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            from_json("{not json"),
            Err(TraceError::Parse { .. })
        ));
    }
}
