use std::fmt;

/// Error type for trace and dataset operations.
#[derive(Debug)]
pub enum TraceError {
    /// Operation requires a non-empty trace.
    EmptyTrace,
    /// Records were not sorted by timestamp and sorting was not requested.
    UnsortedRecords {
        /// Index of the first out-of-order record.
        index: usize,
    },
    /// Two traces with the same user were inserted into a dataset.
    DuplicateUser(crate::UserId),
    /// The requested user does not exist in the dataset.
    UnknownUser(crate::UserId),
    /// A split point that produces an empty side when emptiness is invalid.
    InvalidSplit(String),
    /// Geographic error bubbled up from `mood-geo`.
    Geo(mood_geo::GeoError),
    /// Parse failure while reading a CSV dataset.
    Parse {
        /// 1-based line number of the malformed row.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::EmptyTrace => write!(f, "operation requires a non-empty trace"),
            TraceError::UnsortedRecords { index } => {
                write!(
                    f,
                    "records are not time-sorted (first violation at index {index})"
                )
            }
            TraceError::DuplicateUser(u) => write!(f, "duplicate user {u} in dataset"),
            TraceError::UnknownUser(u) => write!(f, "unknown user {u}"),
            TraceError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
            TraceError::Geo(e) => write!(f, "geographic error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Geo(e) => Some(e),
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mood_geo::GeoError> for TraceError {
    fn from(e: mood_geo::GeoError) -> Self {
        TraceError::Geo(e)
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::Parse {
            line: 7,
            message: "bad latitude".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(TraceError::EmptyTrace.to_string().contains("non-empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }

    #[test]
    fn source_chains_geo_error() {
        use std::error::Error;
        let e = TraceError::from(mood_geo::GeoError::InvalidLatitude(99.0));
        assert!(e.source().is_some());
    }
}
