//! Mobility-trace data model for the MooD workspace.
//!
//! The paper models a mobility trace as a time-ordered sequence of
//! spatio-temporal records `r = (lat, lng, t)` belonging to a user
//! (`T ∈ (R² × R⁺)*`, §2.1). This crate provides that model plus the
//! dataset-level operations every experiment needs:
//!
//! * [`Record`] — one GPS fix: a [`mood_geo::GeoPoint`] plus a [`Timestamp`];
//! * [`Trace`] — a user's time-sorted sequence of records, with splitting
//!   (in half, by fixed windows), interpolation and bounding boxes;
//! * [`Dataset`] — a collection of traces keyed by unique [`UserId`]s, with
//!   the chronological train/test split used by every re-identification
//!   attack (15-day background knowledge / 15-day attack data);
//! * [`PseudonymFactory`] — fresh user IDs for fine-grained sub-traces
//!   (MooD publishes sub-traces under pseudonyms, §3.4);
//! * [`TraceStore`](store::TraceStore) — compressed, chunked storage for
//!   corpora whose decoded form exceeds RAM ([`store`]);
//! * CSV and JSON input/output ([`io`]), including streaming ingestion
//!   straight into a store ([`io::stream_csv`]).
//!
//! # Examples
//!
//! ```
//! use mood_geo::GeoPoint;
//! use mood_trace::{Record, Timestamp, Trace, UserId};
//!
//! let records = vec![
//!     Record::new(GeoPoint::new(46.20, 6.14)?, Timestamp::from_unix(0)),
//!     Record::new(GeoPoint::new(46.21, 6.15)?, Timestamp::from_unix(600)),
//! ];
//! let trace = Trace::new(UserId::new(1), records)?;
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.duration().as_secs(), 600);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
pub mod io;
mod record;
pub mod store;
mod trace;
mod user;

pub use dataset::Dataset;
pub use error::TraceError;
pub use record::{Record, TimeDelta, Timestamp};
pub use store::{StoreConfig, StoreStats, TraceStore};
pub use trace::Trace;
pub use user::{PseudonymFactory, UserId};

/// Convenient result alias for fallible trace operations.
pub type Result<T> = std::result::Result<T, TraceError>;
