use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mood_geo::BoundingBox;

use crate::{Result, TimeDelta, Timestamp, Trace, TraceError, UserId};

/// A mobility dataset: one trace per user.
///
/// Iteration order is always ascending [`UserId`], so experiments are
/// deterministic regardless of insertion order.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::{Dataset, Record, Timestamp, Trace, UserId};
///
/// let mut ds = Dataset::new();
/// let r = Record::new(GeoPoint::new(46.2, 6.1)?, Timestamp::from_unix(0));
/// ds.insert(Trace::new(UserId::new(1), vec![r])?)?;
/// assert_eq!(ds.user_count(), 1);
/// assert_eq!(ds.record_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(try_from = "Vec<Trace>", into = "Vec<Trace>")]
pub struct Dataset {
    traces: BTreeMap<UserId, Trace>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dataset from traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::DuplicateUser`] when two traces share a user.
    pub fn from_traces<I>(traces: I) -> Result<Self>
    where
        I: IntoIterator<Item = Trace>,
    {
        let mut ds = Self::new();
        for t in traces {
            ds.insert(t)?;
        }
        Ok(ds)
    }

    /// Inserts a trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::DuplicateUser`] when the dataset already
    /// contains a trace for the same user.
    pub fn insert(&mut self, trace: Trace) -> Result<()> {
        let user = trace.user();
        if self.traces.contains_key(&user) {
            return Err(TraceError::DuplicateUser(user));
        }
        self.traces.insert(user, trace);
        Ok(())
    }

    /// Removes and returns the trace of `user`, if present.
    pub fn remove(&mut self, user: UserId) -> Option<Trace> {
        self.traces.remove(&user)
    }

    /// The trace of `user`, if present.
    pub fn get(&self, user: UserId) -> Option<&Trace> {
        self.traces.get(&user)
    }

    /// Number of users (= number of traces).
    pub fn user_count(&self) -> usize {
        self.traces.len()
    }

    /// `true` when the dataset holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total number of records across all traces (`|D|_r` in Eq. 7).
    pub fn record_count(&self) -> usize {
        self.traces.values().map(Trace::len).sum()
    }

    /// Iterator over traces in ascending user order.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.values()
    }

    /// The user IDs present, ascending.
    pub fn user_ids(&self) -> Vec<UserId> {
        self.traces.keys().copied().collect()
    }

    /// Keeps only traces for which `keep` returns `true`.
    pub fn retain<F>(&mut self, mut keep: F)
    where
        F: FnMut(&Trace) -> bool,
    {
        self.traces.retain(|_, t| keep(t));
    }

    /// Smallest bounding box containing every record of every trace, or
    /// `None` for an empty dataset.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        let mut boxes = self.traces.values().map(Trace::bounding_box);
        let first = boxes.next()?;
        Some(boxes.fold(first, |acc, b| {
            BoundingBox::new(
                acc.min_lat().min(b.min_lat()),
                acc.max_lat().max(b.max_lat()),
                acc.min_lng().min(b.min_lng()),
                acc.max_lng().max(b.max_lng()),
            )
            .expect("union of valid boxes is valid")
        }))
    }

    /// Chronological per-user split (paper §4.2): the first `train_span`
    /// of each user's trace becomes background knowledge, the rest the
    /// attack/test trace. Users lacking records on either side are dropped
    /// from **both** sides ("only active users during those periods were
    /// considered").
    ///
    /// # Panics
    ///
    /// Panics if `train_span` is not strictly positive.
    pub fn split_chronological(&self, train_span: TimeDelta) -> (Dataset, Dataset) {
        assert!(train_span.as_secs() > 0, "train_span must be positive");
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for trace in self.traces.values() {
            let cut = trace.start_time().offset(train_span);
            let (l, r) = trace.split_at_time(cut);
            if let (Some(l), Some(r)) = (l, r) {
                train.insert(l).expect("unique users preserved");
                test.insert(r).expect("unique users preserved");
            }
        }
        (train, test)
    }

    /// Restricts each trace to the most active `days`-day window of the
    /// *dataset* (the consecutive window maximizing total record count,
    /// evaluated at day granularity, paper §4.2). Users with no records in
    /// the window are dropped. Returns `None` when the dataset is empty.
    pub fn most_active_window(&self, days: i64) -> Option<Dataset> {
        assert!(days > 0, "days must be positive");
        if self.traces.is_empty() {
            return None;
        }
        let start = self
            .traces
            .values()
            .map(|t| t.start_time())
            .min()
            .expect("non-empty");
        let end = self
            .traces
            .values()
            .map(|t| t.end_time())
            .max()
            .expect("non-empty");
        let total_days = (end.since(start).as_secs() / 86_400 + 1).max(1);
        // Count records per day index.
        let mut per_day = vec![0usize; total_days as usize];
        for t in self.traces.values() {
            for r in t.records() {
                let d = (r.time().since(start).as_secs() / 86_400) as usize;
                per_day[d] += 1;
            }
        }
        // Slide a `days`-wide window and pick the densest start.
        let w = (days as usize).min(per_day.len());
        let mut best_start = 0usize;
        let mut window_sum: usize = per_day[..w].iter().sum();
        let mut best_sum = window_sum;
        for s in 1..=(per_day.len() - w) {
            window_sum = window_sum - per_day[s - 1] + per_day[s + w - 1];
            if window_sum > best_sum {
                best_sum = window_sum;
                best_start = s;
            }
        }
        let win_start = start.offset(TimeDelta::from_days(best_start as i64));
        let win_end = win_start.offset(TimeDelta::from_days(days));
        let mut out = Dataset::new();
        for t in self.traces.values() {
            let records = t.records_between(win_start, win_end).to_vec();
            if !records.is_empty() {
                out.insert(Trace::from_sorted(t.user(), records).expect("slice stays sorted"))
                    .expect("unique users preserved");
            }
        }
        Some(out)
    }

    /// Earliest record timestamp in the dataset, or `None` when empty.
    pub fn start_time(&self) -> Option<Timestamp> {
        self.traces.values().map(Trace::start_time).min()
    }

    /// Latest record timestamp in the dataset, or `None` when empty.
    pub fn end_time(&self) -> Option<Timestamp> {
        self.traces.values().map(Trace::end_time).max()
    }
}

impl FromIterator<Trace> for Dataset {
    /// Collects traces, silently replacing earlier traces on user
    /// collision. Use [`Dataset::from_traces`] to detect collisions.
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        let mut ds = Dataset::new();
        for t in iter {
            ds.traces.insert(t.user(), t);
        }
        ds
    }
}

impl From<Dataset> for Vec<Trace> {
    fn from(ds: Dataset) -> Self {
        ds.traces.into_values().collect()
    }
}

impl TryFrom<Vec<Trace>> for Dataset {
    type Error = TraceError;
    fn try_from(traces: Vec<Trace>) -> Result<Self> {
        Dataset::from_traces(traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Record;
    use mood_geo::GeoPoint;

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn trace(user: u64, n: i64, step: i64, t0: i64) -> Trace {
        let records: Vec<Record> = (0..n)
            .map(|i| rec(46.0 + user as f64 * 0.01, 6.0, t0 + i * step))
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut ds = Dataset::new();
        ds.insert(trace(1, 5, 60, 0)).unwrap();
        assert!(matches!(
            ds.insert(trace(1, 3, 60, 0)),
            Err(TraceError::DuplicateUser(_))
        ));
    }

    #[test]
    fn counts() {
        let ds = Dataset::from_traces([trace(1, 5, 60, 0), trace(2, 7, 60, 0)]).unwrap();
        assert_eq!(ds.user_count(), 2);
        assert_eq!(ds.record_count(), 12);
        assert!(!ds.is_empty());
    }

    #[test]
    fn iteration_is_sorted_by_user() {
        let ds = Dataset::from_traces([trace(9, 2, 60, 0), trace(1, 2, 60, 0), trace(5, 2, 60, 0)])
            .unwrap();
        let ids: Vec<u64> = ds.iter().map(|t| t.user().as_u64()).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn get_and_remove() {
        let mut ds = Dataset::from_traces([trace(1, 5, 60, 0)]).unwrap();
        assert!(ds.get(UserId::new(1)).is_some());
        assert!(ds.get(UserId::new(2)).is_none());
        assert!(ds.remove(UserId::new(1)).is_some());
        assert!(ds.is_empty());
    }

    #[test]
    fn split_chronological_divides_each_user() {
        // 4 days of data per user, split after 2 days
        let ds = Dataset::from_traces([trace(1, 96, 3600, 0), trace(2, 96, 3600, 0)]).unwrap();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(2));
        assert_eq!(train.user_count(), 2);
        assert_eq!(test.user_count(), 2);
        assert_eq!(train.get(UserId::new(1)).unwrap().len(), 48);
        assert_eq!(test.get(UserId::new(1)).unwrap().len(), 48);
        assert!(
            train.get(UserId::new(1)).unwrap().end_time()
                < test.get(UserId::new(1)).unwrap().start_time()
        );
    }

    #[test]
    fn split_chronological_drops_inactive_users() {
        // user 2's records all fall inside the train window
        let ds = Dataset::from_traces([trace(1, 96, 3600, 0), trace(2, 4, 3600, 0)]).unwrap();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(2));
        assert_eq!(train.user_count(), 1);
        assert_eq!(test.user_count(), 1);
        assert!(train.get(UserId::new(2)).is_none());
    }

    #[test]
    fn most_active_window_picks_dense_days() {
        // user 1: sparse on days 0-9, dense on days 10-12
        let mut records = Vec::new();
        for d in 0..10 {
            records.push(rec(46.0, 6.0, d * 86_400));
        }
        for d in 10..13 {
            for h in 0..24 {
                records.push(rec(46.0, 6.0, d * 86_400 + h * 3600));
            }
        }
        let ds = Dataset::from_traces([Trace::new(UserId::new(1), records).unwrap()]).unwrap();
        let win = ds.most_active_window(3).unwrap();
        let t = win.get(UserId::new(1)).unwrap();
        assert_eq!(t.len(), 72);
    }

    #[test]
    fn most_active_window_empty_dataset() {
        assert!(Dataset::new().most_active_window(30).is_none());
    }

    #[test]
    fn bounding_box_covers_all_users() {
        let ds = Dataset::from_traces([trace(1, 3, 60, 0), trace(9, 3, 60, 0)]).unwrap();
        let bb = ds.bounding_box().unwrap();
        for t in ds.iter() {
            for r in t.records() {
                assert!(bb.contains(&r.point()));
            }
        }
    }

    #[test]
    fn retain_filters() {
        let mut ds = Dataset::from_traces([trace(1, 3, 60, 0), trace(2, 30, 60, 0)]).unwrap();
        ds.retain(|t| t.len() > 10);
        assert_eq!(ds.user_count(), 1);
        assert!(ds.get(UserId::new(2)).is_some());
    }

    #[test]
    fn time_bounds() {
        let ds = Dataset::from_traces([trace(1, 5, 60, 100), trace(2, 5, 60, 0)]).unwrap();
        assert_eq!(ds.start_time().unwrap().as_unix(), 0);
        assert_eq!(ds.end_time().unwrap().as_unix(), 340);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = Dataset::from_traces([trace(1, 3, 60, 0), trace(2, 4, 60, 0)]).unwrap();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn from_iterator_last_wins() {
        let ds: Dataset = [trace(1, 3, 60, 0), trace(1, 5, 60, 0)]
            .into_iter()
            .collect();
        assert_eq!(ds.user_count(), 1);
        assert_eq!(ds.get(UserId::new(1)).unwrap().len(), 5);
    }
}
