use serde::{Deserialize, Serialize};

use mood_trace::Trace;

/// Spatio-temporal distortion (paper Eq. 8, from the HMC paper \[23\]).
///
/// For every record `x = (p, t)` of the obfuscated trace `T'`, the
/// *temporal projection* of `x` into the original trace `T` is `T`'s
/// interpolated position at time `t` (clamped to `T`'s extent). The STD
/// is the mean distance in meters between each obfuscated record and its
/// projection:
///
/// ```text
/// STD(T, T') = (1/|T'|) Σ_{x ∈ T'} d(x, proj_T(x.t))
/// ```
///
/// Lower is better; `STD(T, T) = 0`.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
/// use mood_trace::{Record, Timestamp, Trace, UserId};
/// use mood_metrics::spatio_temporal_distortion;
///
/// let orig = Trace::new(UserId::new(1), vec![
///     Record::new(GeoPoint::new(46.0, 6.0)?, Timestamp::from_unix(0)),
///     Record::new(GeoPoint::new(46.0, 6.2)?, Timestamp::from_unix(100)),
/// ])?;
/// assert_eq!(spatio_temporal_distortion(&orig, &orig), 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn spatio_temporal_distortion(original: &Trace, obfuscated: &Trace) -> f64 {
    let mut sum = 0.0;
    for r in obfuscated.records() {
        let projected = original.interpolate_at(r.time());
        sum += projected.haversine_distance(&r.point());
    }
    sum / obfuscated.len() as f64
}

/// The four utility bands of the paper's Figure 9, classifying a user's
/// STD value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DistortionBand {
    /// STD < 500 m — fit for precise sensing (e.g. noise maps).
    Low,
    /// 500 m ≤ STD < 1 km — fit for area-level sensing (e.g. pollution).
    Medium,
    /// 1 km ≤ STD < 5 km — fit for coarse analyses (e.g. weather).
    High,
    /// STD ≥ 5 km.
    ExtremelyHigh,
}

impl DistortionBand {
    /// Classifies an STD value in meters.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite value (STD is a mean of
    /// distances, so this indicates a bug upstream).
    pub fn classify(std_m: f64) -> Self {
        assert!(
            std_m.is_finite() && std_m >= 0.0,
            "STD must be a non-negative finite value, got {std_m}"
        );
        if std_m < 500.0 {
            DistortionBand::Low
        } else if std_m < 1_000.0 {
            DistortionBand::Medium
        } else if std_m < 5_000.0 {
            DistortionBand::High
        } else {
            DistortionBand::ExtremelyHigh
        }
    }

    /// All bands, best to worst.
    pub fn all() -> [DistortionBand; 4] {
        [
            DistortionBand::Low,
            DistortionBand::Medium,
            DistortionBand::High,
            DistortionBand::ExtremelyHigh,
        ]
    }

    /// The paper's label for the band.
    pub fn label(&self) -> &'static str {
        match self {
            DistortionBand::Low => "Low Distortion < 500 meters",
            DistortionBand::Medium => "Medium Distortion < 1000 meters",
            DistortionBand::High => "High Distortion < 5000 meters",
            DistortionBand::ExtremelyHigh => "Extremely High Distortion > 5000 meters",
        }
    }
}

impl std::fmt::Display for DistortionBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::{GeoPoint, LocalProjection};
    use mood_trace::{Record, Timestamp, UserId};

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn line_trace() -> Trace {
        let records: Vec<Record> = (0..11)
            .map(|i| rec(46.0 + i as f64 * 0.001, 6.0, i * 100))
            .collect();
        Trace::new(UserId::new(1), records).unwrap()
    }

    #[test]
    fn identity_has_zero_std() {
        let t = line_trace();
        assert_eq!(spatio_temporal_distortion(&t, &t), 0.0);
    }

    #[test]
    fn constant_offset_gives_offset_distance() {
        let t = line_trace();
        // displace every record 300 m east
        let displaced: Vec<Record> = t
            .records()
            .iter()
            .map(|r| {
                let proj = LocalProjection::new(r.point());
                r.with_point(proj.to_geo(300.0, 0.0))
            })
            .collect();
        let t2 = Trace::new(UserId::new(1), displaced).unwrap();
        let std = spatio_temporal_distortion(&t, &t2);
        assert!((std - 300.0).abs() < 1.0, "std = {std}");
    }

    #[test]
    fn interpolates_between_records() {
        // original has records at t=0 and t=100; obfuscated record at
        // t=50 exactly at the midpoint -> zero distortion
        let orig =
            Trace::new(UserId::new(1), vec![rec(46.0, 6.0, 0), rec(46.2, 6.0, 100)]).unwrap();
        let obf = Trace::new(UserId::new(1), vec![rec(46.1, 6.0, 50)]).unwrap();
        let std = spatio_temporal_distortion(&orig, &obf);
        assert!(std < 1.0, "std = {std}");
    }

    #[test]
    fn subtrace_timestamps_clamp() {
        // obfuscated record after original's end projects to last point
        let orig =
            Trace::new(UserId::new(1), vec![rec(46.0, 6.0, 0), rec(46.1, 6.0, 100)]).unwrap();
        let obf = Trace::new(UserId::new(1), vec![rec(46.1, 6.0, 10_000)]).unwrap();
        assert!(spatio_temporal_distortion(&orig, &obf) < 1.0);
    }

    #[test]
    fn more_records_in_obfuscated_is_fine() {
        // TRL-style 3x duplication: STD is an average, not a sum
        let t = line_trace();
        let tripled: Vec<Record> = t.records().iter().flat_map(|r| [*r, *r, *r]).collect();
        let t3 = Trace::new(UserId::new(1), tripled).unwrap();
        assert!(spatio_temporal_distortion(&t, &t3) < 1e-9);
    }

    #[test]
    fn band_classification_boundaries() {
        assert_eq!(DistortionBand::classify(0.0), DistortionBand::Low);
        assert_eq!(DistortionBand::classify(499.9), DistortionBand::Low);
        assert_eq!(DistortionBand::classify(500.0), DistortionBand::Medium);
        assert_eq!(DistortionBand::classify(999.9), DistortionBand::Medium);
        assert_eq!(DistortionBand::classify(1_000.0), DistortionBand::High);
        assert_eq!(DistortionBand::classify(4_999.9), DistortionBand::High);
        assert_eq!(
            DistortionBand::classify(5_000.0),
            DistortionBand::ExtremelyHigh
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn band_rejects_nan() {
        DistortionBand::classify(f64::NAN);
    }

    #[test]
    fn bands_ordered_best_to_worst() {
        let all = DistortionBand::all();
        for pair in all.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn labels_match_paper_figure9() {
        assert!(DistortionBand::Low.label().contains("500"));
        assert!(DistortionBand::ExtremelyHigh.to_string().contains("5000"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, Timestamp, UserId};
    use proptest::prelude::*;

    /// Traces with strictly increasing timestamps — co-timestamped
    /// records make the temporal projection ambiguous, so `STD(T, T) = 0`
    /// only holds for injective time axes.
    fn arb_trace() -> impl Strategy<Value = Trace> {
        proptest::collection::vec((1i64..2_000, -0.2f64..0.2, -0.2f64..0.2), 1..60).prop_map(
            |tuples| {
                let mut t_acc = 0i64;
                let records: Vec<Record> = tuples
                    .into_iter()
                    .map(|(dt, dlat, dlng)| {
                        t_acc += dt;
                        Record::new(
                            GeoPoint::new(46.0 + dlat, 6.0 + dlng).unwrap(),
                            Timestamp::from_unix(t_acc),
                        )
                    })
                    .collect();
                Trace::new(UserId::new(1), records).unwrap()
            },
        )
    }

    proptest! {
        #[test]
        fn std_nonnegative(a in arb_trace(), b in arb_trace()) {
            prop_assert!(spatio_temporal_distortion(&a, &b) >= 0.0);
        }

        #[test]
        fn std_self_zero(a in arb_trace()) {
            prop_assert!(spatio_temporal_distortion(&a, &a) < 1e-9);
        }

        #[test]
        fn std_bounded_by_max_pairwise_distance(a in arb_trace(), b in arb_trace()) {
            // projections stay inside a's bbox, so STD can't exceed the
            // max distance from any b-record to a's bbox corners.
            let std = spatio_temporal_distortion(&a, &b);
            let abb = a.bounding_box();
            let corners = [
                GeoPoint::new(abb.min_lat(), abb.min_lng()).unwrap(),
                GeoPoint::new(abb.min_lat(), abb.max_lng()).unwrap(),
                GeoPoint::new(abb.max_lat(), abb.min_lng()).unwrap(),
                GeoPoint::new(abb.max_lat(), abb.max_lng()).unwrap(),
            ];
            let max_d = b
                .points()
                .map(|p| {
                    corners
                        .iter()
                        .map(|c| p.haversine_distance(c))
                        .fold(0.0f64, f64::max)
                })
                .fold(0.0f64, f64::max);
            prop_assert!(std <= max_d + 1.0);
        }
    }
}
