//! Utility and privacy metrics for the MooD workspace.
//!
//! * [`spatio_temporal_distortion`] — the paper's utility metric `STD`
//!   (Eq. 8): the average distance between each obfuscated record and its
//!   temporal projection into the original trace. Lower is better.
//! * [`DistortionBand`] — the four utility bands of Figure 9
//!   (< 500 m, < 1 km, < 5 km, ≥ 5 km).
//! * [`DataLoss`] — record-level data-loss accounting (Eq. 7): the share
//!   of records that must be erased because no protection resists the
//!   attacks.
//! * [`CountQueryStats`] — cell-count utility for crowd-sensing style
//!   analyses (traffic counts, noise maps): how well a protected dataset
//!   preserves per-cell record counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count_query;
mod data_loss;
mod std_metric;

pub use count_query::CountQueryStats;
pub use data_loss::DataLoss;
pub use std_metric::{spatio_temporal_distortion, DistortionBand};
