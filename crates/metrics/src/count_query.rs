use serde::{Deserialize, Serialize};

use std::collections::BTreeMap;

use mood_geo::{CellId, Grid};
use mood_trace::Dataset;

/// Cell-count utility of a protected dataset for count-query analyses.
///
/// The paper motivates fine-grained protection with crowd-sensing count
/// queries ("for traffic congestion analysis ... the length of each
/// sub-trace is not important to count the presence of users in
/// particular places", §3.4). This metric quantifies how well the
/// protected dataset preserves per-cell record counts:
///
/// * `mean_absolute_error` — mean |original − protected| count over the
///   union of occupied cells;
/// * `cell_recall` / `cell_precision` / `cell_f1` — set overlap between
///   occupied cells;
/// * `weighted_jaccard` — Σ min(o, p) / Σ max(o, p) over cells, a mass-
///   sensitive overlap in `[0, 1]` (1 = identical count maps).
///
/// # Examples
///
/// ```
/// use mood_geo::{BoundingBox, Grid};
/// use mood_metrics::CountQueryStats;
/// use mood_synth::presets;
///
/// let ds = presets::privamov_like().scaled(0.1).generate();
/// let grid = Grid::new(ds.bounding_box().unwrap(), 800.0)?;
/// let stats = CountQueryStats::compare(&grid, &ds, &ds);
/// assert_eq!(stats.mean_absolute_error, 0.0);
/// assert_eq!(stats.weighted_jaccard, 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountQueryStats {
    /// Mean absolute per-cell count error.
    pub mean_absolute_error: f64,
    /// Share of originally occupied cells still occupied after protection.
    pub cell_recall: f64,
    /// Share of protected-occupied cells that were originally occupied.
    pub cell_precision: f64,
    /// Harmonic mean of recall and precision.
    pub cell_f1: f64,
    /// Σ min / Σ max of per-cell counts, in `[0, 1]`.
    pub weighted_jaccard: f64,
}

impl CountQueryStats {
    /// Compares per-cell record counts of `protected` against `original`
    /// over `grid`.
    pub fn compare(grid: &Grid, original: &Dataset, protected: &Dataset) -> Self {
        let o = cell_counts(grid, original);
        let p = cell_counts(grid, protected);

        let mut abs_err = 0.0f64;
        let mut min_sum = 0.0f64;
        let mut max_sum = 0.0f64;
        let mut union = 0usize;
        let mut inter = 0usize;
        let keys: std::collections::BTreeSet<CellId> = o.keys().chain(p.keys()).copied().collect();
        for k in &keys {
            let ov = o.get(k).copied().unwrap_or(0.0);
            let pv = p.get(k).copied().unwrap_or(0.0);
            abs_err += (ov - pv).abs();
            min_sum += ov.min(pv);
            max_sum += ov.max(pv);
            union += 1;
            if ov > 0.0 && pv > 0.0 {
                inter += 1;
            }
        }
        let recall = if o.is_empty() {
            1.0
        } else {
            inter as f64 / o.len() as f64
        };
        let precision = if p.is_empty() {
            1.0
        } else {
            inter as f64 / p.len() as f64
        };
        let f1 = if recall + precision == 0.0 {
            0.0
        } else {
            2.0 * recall * precision / (recall + precision)
        };
        CountQueryStats {
            mean_absolute_error: if union == 0 {
                0.0
            } else {
                abs_err / union as f64
            },
            cell_recall: recall,
            cell_precision: precision,
            cell_f1: f1,
            weighted_jaccard: if max_sum == 0.0 {
                1.0
            } else {
                min_sum / max_sum
            },
        }
    }
}

fn cell_counts(grid: &Grid, ds: &Dataset) -> BTreeMap<CellId, f64> {
    let mut counts = BTreeMap::new();
    for trace in ds.iter() {
        for r in trace.records() {
            *counts.entry(grid.cell_of(&r.point())).or_insert(0.0) += 1.0;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::{BoundingBox, GeoPoint};
    use mood_trace::{Record, Timestamp, Trace, UserId};

    fn grid() -> Grid {
        Grid::new(BoundingBox::new(46.1, 46.3, 6.0, 6.3).unwrap(), 800.0).unwrap()
    }

    fn dataset(points: &[(f64, f64)]) -> Dataset {
        let records: Vec<Record> = points
            .iter()
            .enumerate()
            .map(|(i, &(lat, lng))| {
                Record::new(
                    GeoPoint::new(lat, lng).unwrap(),
                    Timestamp::from_unix(i as i64 * 60),
                )
            })
            .collect();
        Dataset::from_traces([Trace::new(UserId::new(1), records).unwrap()]).unwrap()
    }

    #[test]
    fn identical_datasets_are_perfect() {
        let ds = dataset(&[(46.15, 6.05), (46.25, 6.25), (46.25, 6.25)]);
        let s = CountQueryStats::compare(&grid(), &ds, &ds);
        assert_eq!(s.mean_absolute_error, 0.0);
        assert_eq!(s.cell_f1, 1.0);
        assert_eq!(s.weighted_jaccard, 1.0);
    }

    #[test]
    fn disjoint_datasets_score_zero_overlap() {
        let a = dataset(&[(46.15, 6.05)]);
        let b = dataset(&[(46.25, 6.25)]);
        let s = CountQueryStats::compare(&grid(), &a, &b);
        assert_eq!(s.cell_f1, 0.0);
        assert_eq!(s.weighted_jaccard, 0.0);
        assert!(s.mean_absolute_error > 0.0);
    }

    #[test]
    fn empty_protected_dataset() {
        let a = dataset(&[(46.15, 6.05), (46.25, 6.25)]);
        let empty = Dataset::new();
        let s = CountQueryStats::compare(&grid(), &a, &empty);
        assert_eq!(s.cell_recall, 0.0);
        // no protected cells at all -> precision degenerates to 1
        assert_eq!(s.cell_precision, 1.0);
        assert_eq!(s.weighted_jaccard, 0.0);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let a = dataset(&[(46.15, 6.05), (46.25, 6.25)]);
        let b = dataset(&[(46.15, 6.05), (46.12, 6.27)]);
        let s = CountQueryStats::compare(&grid(), &a, &b);
        assert!(s.cell_f1 > 0.0 && s.cell_f1 < 1.0);
        assert!(s.weighted_jaccard > 0.0 && s.weighted_jaccard < 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = dataset(&[(46.15, 6.05)]);
        let s = CountQueryStats::compare(&grid(), &ds, &ds);
        let json = serde_json::to_string(&s).unwrap();
        let back: CountQueryStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
