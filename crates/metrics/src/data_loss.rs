use serde::{Deserialize, Serialize};

/// Record-level data-loss accounting (paper Eq. 7).
///
/// The paper defines data loss over a dataset `D` as the share of records
/// belonging to *non-protected* traces — the data that must be erased
/// before publication to prevent re-identification:
///
/// ```text
/// data_loss(D, Λ, A) = |D_NP|_r / |D|_r
/// ```
///
/// `DataLoss` accumulates the two counters and exposes the ratio.
///
/// # Examples
///
/// ```
/// use mood_metrics::DataLoss;
///
/// let mut loss = DataLoss::new();
/// loss.add_kept(900);
/// loss.add_lost(100);
/// assert!((loss.ratio() - 0.1).abs() < 1e-12);
/// assert_eq!(loss.total_records(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DataLoss {
    kept: usize,
    lost: usize,
}

impl DataLoss {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` protected (published) records.
    pub fn add_kept(&mut self, n: usize) {
        self.kept += n;
    }

    /// Records `n` erased records (non-protected data).
    pub fn add_lost(&mut self, n: usize) {
        self.lost += n;
    }

    /// Number of published records.
    pub fn kept_records(&self) -> usize {
        self.kept
    }

    /// Number of erased records (`|D_NP|_r`).
    pub fn lost_records(&self) -> usize {
        self.lost
    }

    /// Total records considered (`|D|_r`).
    pub fn total_records(&self) -> usize {
        self.kept + self.lost
    }

    /// The data-loss ratio in `[0, 1]`; 0 for an empty account.
    pub fn ratio(&self) -> f64 {
        let total = self.total_records();
        if total == 0 {
            0.0
        } else {
            self.lost as f64 / total as f64
        }
    }

    /// The data-loss ratio as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &DataLoss) {
        self.kept += other.kept;
        self.lost += other.lost;
    }
}

impl std::fmt::Display for DataLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}% lost ({} of {} records)",
            self.percent(),
            self.lost,
            self.total_records()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_account_is_zero() {
        let loss = DataLoss::new();
        assert_eq!(loss.ratio(), 0.0);
        assert_eq!(loss.percent(), 0.0);
        assert_eq!(loss.total_records(), 0);
    }

    #[test]
    fn full_loss() {
        let mut loss = DataLoss::new();
        loss.add_lost(42);
        assert_eq!(loss.ratio(), 1.0);
        assert_eq!(loss.kept_records(), 0);
    }

    #[test]
    fn no_loss() {
        let mut loss = DataLoss::new();
        loss.add_kept(42);
        assert_eq!(loss.ratio(), 0.0);
    }

    #[test]
    fn accumulates() {
        let mut loss = DataLoss::new();
        loss.add_kept(30);
        loss.add_lost(10);
        loss.add_kept(30);
        loss.add_lost(30);
        assert_eq!(loss.total_records(), 100);
        assert!((loss.ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = DataLoss::new();
        a.add_kept(10);
        a.add_lost(5);
        let mut b = DataLoss::new();
        b.add_kept(20);
        b.add_lost(15);
        a.merge(&b);
        assert_eq!(a.kept_records(), 30);
        assert_eq!(a.lost_records(), 20);
    }

    #[test]
    fn display_shows_percent_and_counts() {
        let mut loss = DataLoss::new();
        loss.add_kept(90);
        loss.add_lost(10);
        let s = loss.to_string();
        assert!(s.contains("10.00%"));
        assert!(s.contains("10 of 100"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut loss = DataLoss::new();
        loss.add_kept(7);
        loss.add_lost(3);
        let json = serde_json::to_string(&loss).unwrap();
        let back: DataLoss = serde_json::from_str(&json).unwrap();
        assert_eq!(loss, back);
    }
}
