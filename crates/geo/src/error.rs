use std::fmt;

/// Error type for geographic operations.
///
/// Every validating constructor in this crate returns `GeoError` on bad
/// input instead of panicking, so callers can surface configuration errors
/// (for example a mis-typed bounding box in an experiment preset) cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside the [-90, 90] degree range, or not finite.
    InvalidLatitude(f64),
    /// Longitude outside the [-180, 180] degree range, or not finite.
    InvalidLongitude(f64),
    /// A bounding box whose minimum exceeds its maximum on some axis.
    InvalidBoundingBox {
        /// Requested minimum latitude.
        min_lat: f64,
        /// Requested maximum latitude.
        max_lat: f64,
        /// Requested minimum longitude.
        min_lng: f64,
        /// Requested maximum longitude.
        max_lng: f64,
    },
    /// A grid cell size that is zero, negative or not finite.
    InvalidCellSize(f64),
    /// A distance argument that is negative or not finite.
    InvalidDistance(f64),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} is outside [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} is outside [-180, 180] or not finite")
            }
            GeoError::InvalidBoundingBox {
                min_lat,
                max_lat,
                min_lng,
                max_lng,
            } => write!(
                f,
                "invalid bounding box: lat [{min_lat}, {max_lat}], lng [{min_lng}, {max_lng}]"
            ),
            GeoError::InvalidCellSize(v) => {
                write!(f, "cell size {v} must be positive and finite")
            }
            GeoError::InvalidDistance(v) => {
                write!(f, "distance {v} must be non-negative and finite")
            }
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            GeoError::InvalidLatitude(99.0),
            GeoError::InvalidLongitude(-200.0),
            GeoError::InvalidBoundingBox {
                min_lat: 1.0,
                max_lat: 0.0,
                min_lng: 0.0,
                max_lng: 1.0,
            },
            GeoError::InvalidCellSize(0.0),
            GeoError::InvalidDistance(-1.0),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
