use serde::{Deserialize, Serialize};

use crate::{GeoError, Result, EARTH_RADIUS_M};

/// A validated WGS-84 geographic point (latitude, longitude) in degrees.
///
/// The constructor rejects non-finite values and out-of-range coordinates,
/// so every `GeoPoint` in the system is known-good — downstream code can do
/// metric geometry without re-validating.
///
/// # Examples
///
/// ```
/// use mood_geo::GeoPoint;
///
/// let geneva = GeoPoint::new(46.2044, 6.1432)?;
/// assert!(geneva.lat() > 46.0);
/// # Ok::<(), mood_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lng: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] when `lat ∉ [-90, 90]` or is
    /// not finite, and [`GeoError::InvalidLongitude`] when
    /// `lng ∉ [-180, 180]` or is not finite.
    pub fn new(lat: f64, lng: f64) -> Result<Self> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lng.is_finite() || !(-180.0..=180.0).contains(&lng) {
            return Err(GeoError::InvalidLongitude(lng));
        }
        Ok(Self { lat, lng })
    }

    /// Latitude in degrees, guaranteed inside `[-90, 90]`.
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees, guaranteed inside `[-180, 180]`.
    pub fn lng(&self) -> f64 {
        self.lng
    }

    /// Great-circle distance to `other` in meters using the haversine
    /// formula, accurate to ~0.5 % everywhere on the sphere.
    ///
    /// ```
    /// use mood_geo::GeoPoint;
    /// let a = GeoPoint::new(0.0, 0.0)?;
    /// let b = GeoPoint::new(0.0, 1.0)?;
    /// // one degree of longitude at the equator is ~111.2 km
    /// assert!((a.haversine_distance(&b) - 111_195.0).abs() < 100.0);
    /// # Ok::<(), mood_geo::GeoError>(())
    /// ```
    pub fn haversine_distance(&self, other: &GeoPoint) -> f64 {
        let (lat1, lng1) = (self.lat.to_radians(), self.lng.to_radians());
        let (lat2, lng2) = (other.lat.to_radians(), other.lng.to_radians());
        let dlat = lat2 - lat1;
        let dlng = lng2 - lng1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Fast equirectangular approximation of the distance to `other` in
    /// meters. Within a city-sized region (tens of kilometers) the error
    /// versus haversine is well under 0.1 %, and it is ~3x cheaper — this
    /// is the distance used in the attack inner loops.
    pub fn approx_distance(&self, other: &GeoPoint) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dx = (other.lng - self.lng).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_M * (dx * dx + dy * dy).sqrt()
    }

    /// Initial bearing from `self` to `other` in degrees, normalized to
    /// `[0, 360)`. North is 0°, east is 90°.
    pub fn bearing_to(&self, other: &GeoPoint) -> f64 {
        let (lat1, lng1) = (self.lat.to_radians(), self.lng.to_radians());
        let (lat2, lng2) = (other.lat.to_radians(), other.lng.to_radians());
        let dlng = lng2 - lng1;
        let y = dlng.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlng.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_m` meters from `self` on
    /// the great circle with initial `bearing_deg` degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDistance`] when `distance_m` is negative
    /// or not finite. The resulting point is re-normalized so it is always
    /// valid.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> Result<GeoPoint> {
        if !distance_m.is_finite() || distance_m < 0.0 {
            return Err(GeoError::InvalidDistance(distance_m));
        }
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lng1 = self.lng.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lng2 = lng1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        let lat_deg = lat2.to_degrees().clamp(-90.0, 90.0);
        let mut lng_deg = lng2.to_degrees();
        // normalize longitude into [-180, 180]
        while lng_deg > 180.0 {
            lng_deg -= 360.0;
        }
        while lng_deg < -180.0 {
            lng_deg += 360.0;
        }
        GeoPoint::new(lat_deg, lng_deg)
    }

    /// Midpoint between `self` and `other` along the great circle.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        let lat1 = self.lat.to_radians();
        let lng1 = self.lng.to_radians();
        let lat2 = other.lat.to_radians();
        let dlng = (other.lng - self.lng).to_radians();
        let bx = lat2.cos() * dlng.cos();
        let by = lat2.cos() * dlng.sin();
        let lat3 = (lat1.sin() + lat2.sin()).atan2(((lat1.cos() + bx).powi(2) + by * by).sqrt());
        let lng3 = lng1 + by.atan2(lat1.cos() + bx);
        let mut lng_deg = lng3.to_degrees();
        while lng_deg > 180.0 {
            lng_deg -= 360.0;
        }
        while lng_deg < -180.0 {
            lng_deg += 360.0;
        }
        // The midpoint of two valid points is always valid after
        // normalization, so this cannot fail.
        GeoPoint::new(lat3.to_degrees().clamp(-90.0, 90.0), lng_deg)
            .expect("midpoint of valid points is valid")
    }

    /// Linear interpolation between `self` (at `f = 0`) and `other`
    /// (at `f = 1`) in coordinate space; adequate for the short segments
    /// that occur between consecutive GPS records.
    ///
    /// `f` is clamped to `[0, 1]`.
    pub fn lerp(&self, other: &GeoPoint, f: f64) -> GeoPoint {
        let f = f.clamp(0.0, 1.0);
        let lat = self.lat + (other.lat - self.lat) * f;
        // Interpolate longitude along the short way around the antimeridian.
        let mut dlng = other.lng - self.lng;
        if dlng > 180.0 {
            dlng -= 360.0;
        } else if dlng < -180.0 {
            dlng += 360.0;
        }
        let mut lng = self.lng + dlng * f;
        if lng > 180.0 {
            lng -= 360.0;
        } else if lng < -180.0 {
            lng += 360.0;
        }
        GeoPoint::new(lat.clamp(-90.0, 90.0), lng).expect("interpolation of valid points is valid")
    }

    /// Centroid (arithmetic mean of coordinates) of a non-empty set of
    /// points. Returns `None` for an empty iterator.
    ///
    /// Suitable for the city-scale clusters POI extraction produces; not
    /// for points spanning the antimeridian.
    pub fn centroid<'a, I>(points: I) -> Option<GeoPoint>
    where
        I: IntoIterator<Item = &'a GeoPoint>,
    {
        let mut lat_sum = 0.0;
        let mut lng_sum = 0.0;
        let mut n = 0usize;
        for p in points {
            lat_sum += p.lat;
            lng_sum += p.lng;
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let nf = n as f64;
        Some(GeoPoint::new(lat_sum / nf, lng_sum / nf).expect("mean of valid coordinates is valid"))
    }
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lng: f64) -> GeoPoint {
        GeoPoint::new(lat, lng).unwrap()
    }

    #[test]
    fn rejects_bad_latitude() {
        assert!(matches!(
            GeoPoint::new(91.0, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(f64::NAN, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(f64::INFINITY, 0.0),
            Err(GeoError::InvalidLatitude(_))
        ));
    }

    #[test]
    fn rejects_bad_longitude() {
        assert!(matches!(
            GeoPoint::new(0.0, -180.5),
            Err(GeoError::InvalidLongitude(_))
        ));
        assert!(matches!(
            GeoPoint::new(0.0, f64::NAN),
            Err(GeoError::InvalidLongitude(_))
        ));
    }

    #[test]
    fn accepts_boundary_values() {
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert!(GeoPoint::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn haversine_known_distance() {
        // Lyon -> Paris is about 391.5 km.
        let lyon = p(45.7640, 4.8357);
        let paris = p(48.8566, 2.3522);
        let d = lyon.haversine_distance(&paris);
        assert!((d - 391_500.0).abs() < 5_000.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let a = p(46.2, 6.1);
        assert_eq!(a.haversine_distance(&a), 0.0);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = p(45.76, 4.83);
        let b = p(45.75, 4.85);
        let d1 = a.haversine_distance(&b);
        let d2 = b.haversine_distance(&a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn approx_distance_close_to_haversine_at_city_scale() {
        let a = p(37.7749, -122.4194); // SF downtown
        let b = p(37.8044, -122.2712); // Oakland
        let h = a.haversine_distance(&b);
        let e = a.approx_distance(&b);
        assert!((h - e).abs() / h < 1e-3, "haversine {h} vs approx {e}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = p(0.0, 0.0);
        assert!((origin.bearing_to(&p(1.0, 0.0)) - 0.0).abs() < 1e-6); // north
        assert!((origin.bearing_to(&p(0.0, 1.0)) - 90.0).abs() < 1e-6); // east
        assert!((origin.bearing_to(&p(-1.0, 0.0)) - 180.0).abs() < 1e-6); // south
        assert!((origin.bearing_to(&p(0.0, -1.0)) - 270.0).abs() < 1e-6); // west
    }

    #[test]
    fn destination_roundtrip_distance() {
        let start = p(46.2044, 6.1432);
        for bearing in [0.0, 45.0, 133.7, 270.0] {
            let end = start.destination(bearing, 5_000.0).unwrap();
            let d = start.haversine_distance(&end);
            assert!((d - 5_000.0).abs() < 1.0, "bearing {bearing}: {d}");
        }
    }

    #[test]
    fn destination_rejects_negative_distance() {
        let start = p(46.0, 6.0);
        assert!(matches!(
            start.destination(0.0, -10.0),
            Err(GeoError::InvalidDistance(_))
        ));
    }

    #[test]
    fn destination_zero_distance_is_identity() {
        let start = p(46.0, 6.0);
        let end = start.destination(123.0, 0.0).unwrap();
        assert!(start.haversine_distance(&end) < 1e-6);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = p(45.0, 4.0);
        let b = p(46.0, 5.0);
        let m = a.midpoint(&b);
        let da = a.haversine_distance(&m);
        let db = b.haversine_distance(&m);
        assert!((da - db).abs() < 1.0, "da={da} db={db}");
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = p(45.0, 4.0);
        let b = p(46.0, 5.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat() - 45.5).abs() < 1e-9);
        assert!((mid.lng() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn lerp_clamps_fraction() {
        let a = p(45.0, 4.0);
        let b = p(46.0, 5.0);
        assert_eq!(a.lerp(&b, -3.0), a);
        assert_eq!(a.lerp(&b, 7.0), b);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(GeoPoint::centroid(std::iter::empty()).is_none());
    }

    #[test]
    fn centroid_of_symmetric_points_is_center() {
        let pts = [p(45.0, 4.0), p(47.0, 6.0)];
        let c = GeoPoint::centroid(pts.iter()).unwrap();
        assert!((c.lat() - 46.0).abs() < 1e-9);
        assert!((c.lng() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_has_six_decimals() {
        let s = p(45.0, 4.0).to_string();
        assert_eq!(s, "(45.000000, 4.000000)");
    }

    #[test]
    fn serde_roundtrip() {
        let a = p(45.5, 4.25);
        let json = serde_json::to_string(&a).unwrap();
        let back: GeoPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = GeoPoint> {
        // Stay away from the poles where longitude degenerates.
        (-80.0f64..80.0, -179.0f64..179.0).prop_map(|(lat, lng)| GeoPoint::new(lat, lng).unwrap())
    }

    proptest! {
        #[test]
        fn distance_nonnegative(a in arb_point(), b in arb_point()) {
            prop_assert!(a.haversine_distance(&b) >= 0.0);
        }

        #[test]
        fn distance_symmetric(a in arb_point(), b in arb_point()) {
            let d1 = a.haversine_distance(&b);
            let d2 = b.haversine_distance(&a);
            prop_assert!((d1 - d2).abs() <= 1e-6 * (1.0 + d1));
        }

        #[test]
        fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
            let ab = a.haversine_distance(&b);
            let bc = b.haversine_distance(&c);
            let ac = a.haversine_distance(&c);
            prop_assert!(ac <= ab + bc + 1e-6);
        }

        #[test]
        fn destination_travels_requested_distance(
            start in arb_point(),
            bearing in 0.0f64..360.0,
            dist in 0.0f64..50_000.0,
        ) {
            let end = start.destination(bearing, dist).unwrap();
            let measured = start.haversine_distance(&end);
            prop_assert!((measured - dist).abs() < 1.0 + dist * 1e-6,
                "asked {dist} got {measured}");
        }

        #[test]
        fn lerp_stays_between_latitudes(a in arb_point(), b in arb_point(), f in 0.0f64..1.0) {
            let m = a.lerp(&b, f);
            let lo = a.lat().min(b.lat()) - 1e-9;
            let hi = a.lat().max(b.lat()) + 1e-9;
            prop_assert!(m.lat() >= lo && m.lat() <= hi);
        }
    }
}
