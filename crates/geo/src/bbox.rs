use serde::{Deserialize, Serialize};

use crate::{GeoError, GeoPoint, Result};

/// An axis-aligned geographic bounding box.
///
/// Bounding boxes define the extent of a city model in `mood-synth` and the
/// extent of [`Grid`](crate::Grid)s used by heatmap profiles. They must not
/// cross the antimeridian (none of the paper's four cities do).
///
/// # Examples
///
/// ```
/// use mood_geo::{BoundingBox, GeoPoint};
///
/// let geneva = BoundingBox::new(46.15, 46.26, 6.05, 6.22)?;
/// let center = geneva.center();
/// assert!(geneva.contains(&center));
/// # Ok::<(), mood_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lng: f64,
    max_lng: f64,
}

impl BoundingBox {
    /// Creates a bounding box from its latitude and longitude extents.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidBoundingBox`] when a minimum exceeds its
    /// maximum, and latitude/longitude errors when either corner is not a
    /// valid coordinate.
    pub fn new(min_lat: f64, max_lat: f64, min_lng: f64, max_lng: f64) -> Result<Self> {
        // Validate corners first so the error pinpoints the bad coordinate.
        GeoPoint::new(min_lat, min_lng)?;
        GeoPoint::new(max_lat, max_lng)?;
        if min_lat > max_lat || min_lng > max_lng {
            return Err(GeoError::InvalidBoundingBox {
                min_lat,
                max_lat,
                min_lng,
                max_lng,
            });
        }
        Ok(Self {
            min_lat,
            max_lat,
            min_lng,
            max_lng,
        })
    }

    /// Smallest box containing every point of a non-empty iterator;
    /// `None` when the iterator is empty.
    pub fn from_points<'a, I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a GeoPoint>,
    {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Self {
            min_lat: first.lat(),
            max_lat: first.lat(),
            min_lng: first.lng(),
            max_lng: first.lng(),
        };
        for p in it {
            b.min_lat = b.min_lat.min(p.lat());
            b.max_lat = b.max_lat.max(p.lat());
            b.min_lng = b.min_lng.min(p.lng());
            b.max_lng = b.max_lng.max(p.lng());
        }
        Some(b)
    }

    /// Minimum latitude (southern edge) in degrees.
    pub fn min_lat(&self) -> f64 {
        self.min_lat
    }

    /// Maximum latitude (northern edge) in degrees.
    pub fn max_lat(&self) -> f64 {
        self.max_lat
    }

    /// Minimum longitude (western edge) in degrees.
    pub fn min_lng(&self) -> f64 {
        self.min_lng
    }

    /// Maximum longitude (eastern edge) in degrees.
    pub fn max_lng(&self) -> f64 {
        self.max_lng
    }

    /// `true` when `p` lies inside the box (edges inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat() >= self.min_lat
            && p.lat() <= self.max_lat
            && p.lng() >= self.min_lng
            && p.lng() <= self.max_lng
    }

    /// Geometric center of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lng + self.max_lng) / 2.0,
        )
        .expect("center of valid box is valid")
    }

    /// Box grown by `margin_m` meters on every side, clamped to valid
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDistance`] when `margin_m` is negative or
    /// not finite.
    pub fn expanded(&self, margin_m: f64) -> Result<Self> {
        if !margin_m.is_finite() || margin_m < 0.0 {
            return Err(GeoError::InvalidDistance(margin_m));
        }
        let dlat = margin_m / 111_320.0; // meters per degree latitude
        let mean_lat = ((self.min_lat + self.max_lat) / 2.0).to_radians();
        let dlng = margin_m / (111_320.0 * mean_lat.cos().max(1e-6));
        Ok(Self {
            min_lat: (self.min_lat - dlat).max(-90.0),
            max_lat: (self.max_lat + dlat).min(90.0),
            min_lng: (self.min_lng - dlng).max(-180.0),
            max_lng: (self.max_lng + dlng).min(180.0),
        })
    }

    /// North-south extent of the box in meters.
    pub fn height_m(&self) -> f64 {
        let south = GeoPoint::new(self.min_lat, self.min_lng).expect("corner valid");
        let north = GeoPoint::new(self.max_lat, self.min_lng).expect("corner valid");
        south.haversine_distance(&north)
    }

    /// East-west extent of the box in meters, measured at its mid-latitude.
    pub fn width_m(&self) -> f64 {
        let mid = (self.min_lat + self.max_lat) / 2.0;
        let west = GeoPoint::new(mid, self.min_lng).expect("corner valid");
        let east = GeoPoint::new(mid, self.max_lng).expect("corner valid");
        west.haversine_distance(&east)
    }

    /// The point at fractional coordinates `(fy, fx) ∈ [0,1]²` inside the
    /// box, with `(0, 0)` the south-west corner. Fractions are clamped.
    pub fn point_at_fraction(&self, fy: f64, fx: f64) -> GeoPoint {
        let fy = fy.clamp(0.0, 1.0);
        let fx = fx.clamp(0.0, 1.0);
        GeoPoint::new(
            self.min_lat + (self.max_lat - self.min_lat) * fy,
            self.min_lng + (self.max_lng - self.min_lng) * fx,
        )
        .expect("interpolated point inside valid box is valid")
    }

    /// Clamps an arbitrary point into the box.
    pub fn clamp_point(&self, p: &GeoPoint) -> GeoPoint {
        GeoPoint::new(
            p.lat().clamp(self.min_lat, self.max_lat),
            p.lng().clamp(self.min_lng, self.max_lng),
        )
        .expect("clamped point is valid")
    }
}

impl std::fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4}..{:.4}] x [{:.4}..{:.4}]",
            self.min_lat, self.max_lat, self.min_lng, self.max_lng
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_box() -> BoundingBox {
        BoundingBox::new(46.15, 46.26, 6.05, 6.22).unwrap()
    }

    #[test]
    fn rejects_inverted_extents() {
        assert!(matches!(
            BoundingBox::new(46.3, 46.2, 6.0, 6.1),
            Err(GeoError::InvalidBoundingBox { .. })
        ));
        assert!(matches!(
            BoundingBox::new(46.1, 46.2, 6.2, 6.1),
            Err(GeoError::InvalidBoundingBox { .. })
        ));
    }

    #[test]
    fn rejects_invalid_corner() {
        assert!(BoundingBox::new(-95.0, 46.2, 6.0, 6.1).is_err());
        assert!(BoundingBox::new(46.1, 46.2, 6.0, 200.0).is_err());
    }

    #[test]
    fn degenerate_box_is_allowed() {
        let b = BoundingBox::new(46.0, 46.0, 6.0, 6.0).unwrap();
        assert!(b.contains(&GeoPoint::new(46.0, 6.0).unwrap()));
    }

    #[test]
    fn contains_center_and_corners() {
        let b = sample_box();
        assert!(b.contains(&b.center()));
        assert!(b.contains(&GeoPoint::new(46.15, 6.05).unwrap()));
        assert!(b.contains(&GeoPoint::new(46.26, 6.22).unwrap()));
        assert!(!b.contains(&GeoPoint::new(46.30, 6.10).unwrap()));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            GeoPoint::new(46.0, 6.0).unwrap(),
            GeoPoint::new(46.5, 6.3).unwrap(),
            GeoPoint::new(46.2, 5.9).unwrap(),
        ];
        let b = BoundingBox::from_points(pts.iter()).unwrap();
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min_lng(), 5.9);
        assert_eq!(b.max_lat(), 46.5);
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn expanded_contains_original() {
        let b = sample_box();
        let e = b.expanded(1_000.0).unwrap();
        assert!(e.contains(&GeoPoint::new(b.min_lat(), b.min_lng()).unwrap()));
        assert!(e.min_lat() < b.min_lat());
        assert!(e.max_lng() > b.max_lng());
    }

    #[test]
    fn expanded_rejects_negative_margin() {
        assert!(sample_box().expanded(-5.0).is_err());
    }

    #[test]
    fn extent_meters_sane() {
        let b = sample_box();
        // ~12 km tall, ~13 km wide for the Geneva box
        assert!((b.height_m() - 12_200.0).abs() < 500.0, "{}", b.height_m());
        assert!(b.width_m() > 8_000.0 && b.width_m() < 16_000.0);
    }

    #[test]
    fn point_at_fraction_corners() {
        let b = sample_box();
        let sw = b.point_at_fraction(0.0, 0.0);
        let ne = b.point_at_fraction(1.0, 1.0);
        assert_eq!(sw.lat(), b.min_lat());
        assert_eq!(ne.lng(), b.max_lng());
    }

    #[test]
    fn clamp_point_moves_outside_inside() {
        let b = sample_box();
        let far = GeoPoint::new(50.0, 7.0).unwrap();
        let clamped = b.clamp_point(&far);
        assert!(b.contains(&clamped));
        assert_eq!(clamped.lat(), b.max_lat());
    }

    #[test]
    fn serde_roundtrip() {
        let b = sample_box();
        let json = serde_json::to_string(&b).unwrap();
        let back: BoundingBox = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_box() -> impl Strategy<Value = BoundingBox> {
        (
            (-60.0f64..60.0),
            (0.01f64..2.0),
            (-170.0f64..170.0),
            (0.01f64..2.0),
        )
            .prop_map(|(lat0, dlat, lng0, dlng)| {
                BoundingBox::new(lat0, lat0 + dlat, lng0, lng0 + dlng).unwrap()
            })
    }

    proptest! {
        #[test]
        fn fraction_points_are_contained(
            b in arb_box(),
            fy in 0.0f64..1.0,
            fx in 0.0f64..1.0,
        ) {
            prop_assert!(b.contains(&b.point_at_fraction(fy, fx)));
        }

        #[test]
        fn clamped_points_are_contained(b in arb_box(), lat in -80.0f64..80.0, lng in -179.0f64..179.0) {
            let p = GeoPoint::new(lat, lng).unwrap();
            prop_assert!(b.contains(&b.clamp_point(&p)));
        }

        #[test]
        fn center_is_contained(b in arb_box()) {
            prop_assert!(b.contains(&b.center()));
        }
    }
}
