use serde::{Deserialize, Serialize};

use crate::{BoundingBox, GeoError, GeoPoint, Result};

/// Identifier of a cell inside a [`Grid`]: `(row, col)` with row 0 the
/// southernmost row and col 0 the westernmost column.
///
/// `CellId` is ordered row-major so cells can key `BTreeMap`s and sort
/// deterministically across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// Row index, increasing northward from 0.
    pub row: u32,
    /// Column index, increasing eastward from 0.
    pub col: u32,
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// A uniform metric grid over a bounding box.
///
/// The grid divides its box into cells of approximately `cell_size_m`
/// meters on each side (the paper's AP-attack and HMC both use 800 m
/// cells). Points outside the box are clamped to the border cells, so
/// `cell_of` is total — heatmaps never lose records.
///
/// # Examples
///
/// ```
/// use mood_geo::{BoundingBox, Grid};
///
/// let bbox = BoundingBox::new(46.15, 46.26, 6.05, 6.22)?;
/// let grid = Grid::new(bbox, 800.0)?;
/// assert!(grid.rows() >= 15 && grid.cols() >= 15);
/// let c = grid.cell_of(&bbox.center());
/// assert!(grid.cell_center(c).haversine_distance(&bbox.center()) < 800.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "GridSpec", into = "GridSpec")]
pub struct Grid {
    bbox: BoundingBox,
    cell_size_m: f64,
    rows: u32,
    cols: u32,
    lat_step: f64,
    lng_step: f64,
}

impl Grid {
    /// Creates a grid over `bbox` with square cells of roughly
    /// `cell_size_m` meters. A degenerate box still produces a 1x1 grid.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidCellSize`] when `cell_size_m` is zero,
    /// negative or not finite.
    pub fn new(bbox: BoundingBox, cell_size_m: f64) -> Result<Self> {
        if !cell_size_m.is_finite() || cell_size_m <= 0.0 {
            return Err(GeoError::InvalidCellSize(cell_size_m));
        }
        let rows = (bbox.height_m() / cell_size_m).ceil().max(1.0) as u32;
        let cols = (bbox.width_m() / cell_size_m).ceil().max(1.0) as u32;
        let lat_step = (bbox.max_lat() - bbox.min_lat()) / rows as f64;
        let lng_step = (bbox.max_lng() - bbox.min_lng()) / cols as f64;
        Ok(Self {
            bbox,
            cell_size_m,
            rows,
            cols,
            lat_step,
            lng_step,
        })
    }

    /// The box this grid covers.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Requested cell edge length in meters.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_size_m
    }

    /// Number of rows (south to north).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (west to east).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// The cell containing `p`. Points outside the box are clamped to the
    /// nearest border cell, making this function total.
    pub fn cell_of(&self, p: &GeoPoint) -> CellId {
        let fy = if self.lat_step > 0.0 {
            (p.lat() - self.bbox.min_lat()) / self.lat_step
        } else {
            0.0
        };
        let fx = if self.lng_step > 0.0 {
            (p.lng() - self.bbox.min_lng()) / self.lng_step
        } else {
            0.0
        };
        let row = (fy.floor().max(0.0) as u32).min(self.rows - 1);
        let col = (fx.floor().max(0.0) as u32).min(self.cols - 1);
        CellId { row, col }
    }

    /// Center point of `cell`. Out-of-range indices are clamped to the
    /// grid border, mirroring [`Grid::cell_of`].
    pub fn cell_center(&self, cell: CellId) -> GeoPoint {
        let row = cell.row.min(self.rows - 1) as f64;
        let col = cell.col.min(self.cols - 1) as f64;
        GeoPoint::new(
            self.bbox.min_lat() + (row + 0.5) * self.lat_step,
            self.bbox.min_lng() + (col + 0.5) * self.lng_step,
        )
        .expect("cell center inside valid box is valid")
    }

    /// The point at fractional offsets `(fy, fx) ∈ [0,1]²` inside `cell`,
    /// with `(0,0)` its south-west corner. Used by HMC to re-materialize a
    /// record inside a target cell while preserving its in-cell offset.
    pub fn point_in_cell(&self, cell: CellId, fy: f64, fx: f64) -> GeoPoint {
        let row = cell.row.min(self.rows - 1) as f64;
        let col = cell.col.min(self.cols - 1) as f64;
        let fy = fy.clamp(0.0, 1.0);
        let fx = fx.clamp(0.0, 1.0);
        GeoPoint::new(
            self.bbox.min_lat() + (row + fy) * self.lat_step,
            self.bbox.min_lng() + (col + fx) * self.lng_step,
        )
        .expect("point inside valid box is valid")
    }

    /// Fractional offsets of `p` inside its own cell; the inverse of
    /// [`Grid::point_in_cell`] for in-box points.
    pub fn fraction_in_cell(&self, p: &GeoPoint) -> (f64, f64) {
        let cell = self.cell_of(p);
        let base_lat = self.bbox.min_lat() + cell.row as f64 * self.lat_step;
        let base_lng = self.bbox.min_lng() + cell.col as f64 * self.lng_step;
        let fy = if self.lat_step > 0.0 {
            ((p.lat() - base_lat) / self.lat_step).clamp(0.0, 1.0)
        } else {
            0.5
        };
        let fx = if self.lng_step > 0.0 {
            ((p.lng() - base_lng) / self.lng_step).clamp(0.0, 1.0)
        } else {
            0.5
        };
        (fy, fx)
    }

    /// The (up to 8) neighbouring cells of `cell` that exist in the grid.
    pub fn neighbors(&self, cell: CellId) -> Vec<CellId> {
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let r = cell.row as i64 + dr;
                let c = cell.col as i64 + dc;
                if r >= 0 && c >= 0 && (r as u32) < self.rows && (c as u32) < self.cols {
                    out.push(CellId {
                        row: r as u32,
                        col: c as u32,
                    });
                }
            }
        }
        out
    }

    /// Approximate center-to-center distance between two cells in meters.
    pub fn cell_distance_m(&self, a: CellId, b: CellId) -> f64 {
        self.cell_center(a).approx_distance(&self.cell_center(b))
    }
}

/// Serialized form of [`Grid`]: only the defining parameters are stored;
/// derived fields (rows, steps) are recomputed on deserialization so the
/// round-trip is bit-exact.
#[derive(Serialize, Deserialize)]
struct GridSpec {
    bbox: BoundingBox,
    cell_size_m: f64,
}

impl From<Grid> for GridSpec {
    fn from(g: Grid) -> Self {
        GridSpec {
            bbox: g.bbox,
            cell_size_m: g.cell_size_m,
        }
    }
}

impl TryFrom<GridSpec> for Grid {
    type Error = GeoError;

    fn try_from(spec: GridSpec) -> Result<Self> {
        Grid::new(spec.bbox, spec.cell_size_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geneva_grid() -> Grid {
        let bbox = BoundingBox::new(46.15, 46.26, 6.05, 6.22).unwrap();
        Grid::new(bbox, 800.0).unwrap()
    }

    #[test]
    fn rejects_bad_cell_size() {
        let bbox = BoundingBox::new(46.15, 46.26, 6.05, 6.22).unwrap();
        assert!(matches!(
            Grid::new(bbox, 0.0),
            Err(GeoError::InvalidCellSize(_))
        ));
        assert!(Grid::new(bbox, -5.0).is_err());
        assert!(Grid::new(bbox, f64::NAN).is_err());
    }

    #[test]
    fn dimensions_match_extent() {
        let g = geneva_grid();
        // Geneva box is ~12.2 km x ~13.1 km -> 16 x 17 cells of 800 m
        assert!(g.rows() >= 15 && g.rows() <= 17, "rows {}", g.rows());
        assert!(g.cols() >= 15 && g.cols() <= 18, "cols {}", g.cols());
        assert_eq!(g.cell_count(), g.rows() as u64 * g.cols() as u64);
    }

    #[test]
    fn degenerate_box_gives_single_cell() {
        let bbox = BoundingBox::new(46.0, 46.0, 6.0, 6.0).unwrap();
        let g = Grid::new(bbox, 800.0).unwrap();
        assert_eq!(g.cell_count(), 1);
        let p = GeoPoint::new(46.0, 6.0).unwrap();
        assert_eq!(g.cell_of(&p), CellId { row: 0, col: 0 });
    }

    #[test]
    fn cell_of_corners() {
        let g = geneva_grid();
        let sw = GeoPoint::new(g.bbox().min_lat(), g.bbox().min_lng()).unwrap();
        let ne = GeoPoint::new(g.bbox().max_lat(), g.bbox().max_lng()).unwrap();
        assert_eq!(g.cell_of(&sw), CellId { row: 0, col: 0 });
        let top = g.cell_of(&ne);
        assert_eq!(top.row, g.rows() - 1);
        assert_eq!(top.col, g.cols() - 1);
    }

    #[test]
    fn outside_points_clamp_to_border() {
        let g = geneva_grid();
        let far_north = GeoPoint::new(80.0, 6.1).unwrap();
        assert_eq!(g.cell_of(&far_north).row, g.rows() - 1);
        let far_west = GeoPoint::new(46.2, -170.0).unwrap();
        assert_eq!(g.cell_of(&far_west).col, 0);
    }

    #[test]
    fn cell_center_within_cell() {
        let g = geneva_grid();
        for (row, col) in [(0, 0), (3, 5), (15, 16)] {
            let cell = CellId { row, col };
            let center = g.cell_center(cell);
            assert_eq!(
                g.cell_of(&center),
                CellId {
                    row: row.min(g.rows() - 1),
                    col: col.min(g.cols() - 1)
                }
            );
        }
    }

    #[test]
    fn point_in_cell_fraction_roundtrip() {
        let g = geneva_grid();
        let p = GeoPoint::new(46.2031, 6.1269).unwrap();
        let cell = g.cell_of(&p);
        let (fy, fx) = g.fraction_in_cell(&p);
        let back = g.point_in_cell(cell, fy, fx);
        assert!(p.haversine_distance(&back) < 0.5, "residual too large");
    }

    #[test]
    fn neighbors_interior_cell_has_eight() {
        let g = geneva_grid();
        let n = g.neighbors(CellId { row: 5, col: 5 });
        assert_eq!(n.len(), 8);
    }

    #[test]
    fn neighbors_corner_cell_has_three() {
        let g = geneva_grid();
        let n = g.neighbors(CellId { row: 0, col: 0 });
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn adjacent_cell_distance_approx_cell_size() {
        let g = geneva_grid();
        let d = g.cell_distance_m(CellId { row: 4, col: 4 }, CellId { row: 4, col: 5 });
        assert!((d - g.cell_size_m()).abs() < 120.0, "{d}");
    }

    #[test]
    fn cellid_orders_row_major() {
        let a = CellId { row: 0, col: 9 };
        let b = CellId { row: 1, col: 0 };
        assert!(a < b);
    }

    #[test]
    fn serde_roundtrip() {
        let g = geneva_grid();
        let json = serde_json::to_string(&g).unwrap();
        let back: Grid = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn every_inbox_point_maps_to_valid_cell(
            fy in 0.0f64..1.0,
            fx in 0.0f64..1.0,
            cell_size in 100.0f64..3_000.0,
        ) {
            let bbox = BoundingBox::new(46.15, 46.26, 6.05, 6.22).unwrap();
            let g = Grid::new(bbox, cell_size).unwrap();
            let p = bbox.point_at_fraction(fy, fx);
            let cell = g.cell_of(&p);
            prop_assert!(cell.row < g.rows());
            prop_assert!(cell.col < g.cols());
            // the cell center is within one cell diagonal of the point
            let d = g.cell_center(cell).haversine_distance(&p);
            prop_assert!(d <= cell_size * 1.5, "distance {d} cell {cell_size}");
        }

        #[test]
        fn fraction_roundtrip(fy in 0.001f64..0.999, fx in 0.001f64..0.999) {
            let bbox = BoundingBox::new(46.15, 46.26, 6.05, 6.22).unwrap();
            let g = Grid::new(bbox, 800.0).unwrap();
            let p = bbox.point_at_fraction(fy, fx);
            let cell = g.cell_of(&p);
            let (gy, gx) = g.fraction_in_cell(&p);
            let back = g.point_in_cell(cell, gy, gx);
            prop_assert!(p.haversine_distance(&back) < 1.0);
        }
    }
}
