use serde::{Deserialize, Serialize};

use crate::{GeoPoint, Result, EARTH_RADIUS_M};

/// A local tangent-plane (east-north) projection around a reference point.
///
/// Protection mechanisms such as Geo-I add *metric* noise: "displace this
/// record by 240 m at bearing 73°". Doing that arithmetic directly on
/// latitude/longitude is error-prone, so [`LocalProjection`] converts
/// between geographic coordinates and a local metric frame centered on a
/// reference point. Within city-scale extents (< 100 km) the planar
/// approximation error is negligible relative to GPS noise.
///
/// # Examples
///
/// ```
/// use mood_geo::{GeoPoint, LocalProjection};
///
/// let center = GeoPoint::new(45.76, 4.83)?;
/// let proj = LocalProjection::new(center);
/// let (x, y) = proj.to_local(&center);
/// assert!(x.abs() < 1e-9 && y.abs() < 1e-9);
///
/// // 1 km east then back:
/// let east = proj.to_geo(1_000.0, 0.0);
/// assert!((center.haversine_distance(&east) - 1_000.0).abs() < 2.0);
/// # Ok::<(), mood_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat: f64,
}

impl LocalProjection {
    /// Creates a projection with `origin` mapped to local `(0, 0)`.
    pub fn new(origin: GeoPoint) -> Self {
        Self {
            origin,
            cos_lat: origin.lat().to_radians().cos(),
        }
    }

    /// Reference point of the projection.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects `p` into the local frame; returns `(x_east_m, y_north_m)`.
    pub fn to_local(&self, p: &GeoPoint) -> (f64, f64) {
        let x = (p.lng() - self.origin.lng()).to_radians() * self.cos_lat * EARTH_RADIUS_M;
        let y = (p.lat() - self.origin.lat()).to_radians() * EARTH_RADIUS_M;
        (x, y)
    }

    /// Inverse projection: local `(x_east_m, y_north_m)` back to WGS-84.
    ///
    /// The result is clamped to valid coordinates; for city-scale offsets
    /// clamping never triggers.
    pub fn to_geo(&self, x_east_m: f64, y_north_m: f64) -> GeoPoint {
        let lat = self.origin.lat() + (y_north_m / EARTH_RADIUS_M).to_degrees();
        let lng = self.origin.lng()
            + (x_east_m / (EARTH_RADIUS_M * self.cos_lat.max(1e-12))).to_degrees();
        let mut lng = lng;
        while lng > 180.0 {
            lng -= 360.0;
        }
        while lng < -180.0 {
            lng += 360.0;
        }
        GeoPoint::new(lat.clamp(-90.0, 90.0), lng).expect("clamped projected point is valid")
    }

    /// Displaces `p` by `distance_m` meters in direction `bearing_deg`
    /// (0° = north, 90° = east) through the local frame.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::GeoError::InvalidDistance`] for negative or
    /// non-finite distances.
    pub fn displace(&self, p: &GeoPoint, bearing_deg: f64, distance_m: f64) -> Result<GeoPoint> {
        if !distance_m.is_finite() || distance_m < 0.0 {
            return Err(crate::GeoError::InvalidDistance(distance_m));
        }
        let (x, y) = self.to_local(p);
        let theta = bearing_deg.to_radians();
        Ok(self.to_geo(x + distance_m * theta.sin(), y + distance_m * theta.cos()))
    }

    /// Euclidean distance between two points measured in the local frame.
    /// Matches haversine to well under 0.1 % at city scale.
    pub fn local_distance(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let (ax, ay) = self.to_local(a);
        let (bx, by) = self.to_local(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(45.7640, 4.8357).unwrap()
    }

    #[test]
    fn origin_maps_to_zero() {
        let proj = LocalProjection::new(origin());
        let (x, y) = proj.to_local(&origin());
        assert!(x.abs() < 1e-9);
        assert!(y.abs() < 1e-9);
    }

    #[test]
    fn roundtrip_geo_local_geo() {
        let proj = LocalProjection::new(origin());
        let p = GeoPoint::new(45.78, 4.90).unwrap();
        let (x, y) = proj.to_local(&p);
        let back = proj.to_geo(x, y);
        assert!(p.haversine_distance(&back) < 0.01, "residual too large");
    }

    #[test]
    fn north_displacement_increases_latitude() {
        let proj = LocalProjection::new(origin());
        let moved = proj.displace(&origin(), 0.0, 1_000.0).unwrap();
        assert!(moved.lat() > origin().lat());
        assert!((moved.lng() - origin().lng()).abs() < 1e-9);
        let d = origin().haversine_distance(&moved);
        assert!((d - 1_000.0).abs() < 2.0, "{d}");
    }

    #[test]
    fn east_displacement_increases_longitude() {
        let proj = LocalProjection::new(origin());
        let moved = proj.displace(&origin(), 90.0, 1_000.0).unwrap();
        assert!(moved.lng() > origin().lng());
        let d = origin().haversine_distance(&moved);
        assert!((d - 1_000.0).abs() < 2.0, "{d}");
    }

    #[test]
    fn displace_rejects_bad_distance() {
        let proj = LocalProjection::new(origin());
        assert!(proj.displace(&origin(), 0.0, -1.0).is_err());
        assert!(proj.displace(&origin(), 0.0, f64::NAN).is_err());
    }

    #[test]
    fn local_distance_matches_haversine() {
        let proj = LocalProjection::new(origin());
        let a = GeoPoint::new(45.75, 4.82).unwrap();
        let b = GeoPoint::new(45.79, 4.88).unwrap();
        let h = a.haversine_distance(&b);
        let l = proj.local_distance(&a, &b);
        assert!((h - l).abs() / h < 2e-3, "h={h} l={l}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_within_city(
            olat in -60.0f64..60.0,
            olng in -170.0f64..170.0,
            dx in -20_000.0f64..20_000.0,
            dy in -20_000.0f64..20_000.0,
        ) {
            let origin = GeoPoint::new(olat, olng).unwrap();
            let proj = LocalProjection::new(origin);
            let p = proj.to_geo(dx, dy);
            let (x, y) = proj.to_local(&p);
            prop_assert!((x - dx).abs() < 0.5, "x {x} vs {dx}");
            prop_assert!((y - dy).abs() < 0.5, "y {y} vs {dy}");
        }

        #[test]
        fn displacement_distance_is_exact_in_local_frame(
            bearing in 0.0f64..360.0,
            dist in 0.0f64..10_000.0,
        ) {
            let origin = GeoPoint::new(46.0, 6.0).unwrap();
            let proj = LocalProjection::new(origin);
            let moved = proj.displace(&origin, bearing, dist).unwrap();
            let measured = proj.local_distance(&origin, &moved);
            prop_assert!((measured - dist).abs() < 0.5);
        }
    }
}
