//! Geographic primitives for the MooD mobility-privacy workspace.
//!
//! This crate provides the small, dependency-free geodesy layer every other
//! crate in the workspace builds on:
//!
//! * [`GeoPoint`] — a validated WGS-84 latitude/longitude pair with
//!   haversine and equirectangular distances, bearings and destination
//!   points;
//! * [`BoundingBox`] — axis-aligned lat/lng boxes with containment,
//!   expansion and sampling helpers;
//! * [`LocalProjection`] — a local east-north (ENU-style) tangent-plane
//!   projection used to do metric geometry (noise, trilateration) around a
//!   reference point;
//! * [`Grid`] — a uniform metric grid over a bounding box, the substrate of
//!   heatmap profiles and the HMC protection mechanism.
//!
//! All distances are in **meters**, all angles in **degrees** unless stated
//! otherwise.
//!
//! # Examples
//!
//! ```
//! use mood_geo::{GeoPoint, Grid, BoundingBox};
//!
//! let lyon = GeoPoint::new(45.7640, 4.8357).unwrap();
//! let paris = GeoPoint::new(48.8566, 2.3522).unwrap();
//! let d = lyon.haversine_distance(&paris);
//! assert!((d - 391_500.0).abs() < 5_000.0); // ~391.5 km
//!
//! let bbox = BoundingBox::new(45.5, 46.0, 4.6, 5.1).unwrap();
//! let grid = Grid::new(bbox, 800.0).unwrap();
//! let cell = grid.cell_of(&lyon);
//! assert!(grid.cell_center(cell).haversine_distance(&lyon) < 800.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod error;
mod grid;
mod point;
mod projection;

pub use bbox::BoundingBox;
pub use error::GeoError;
pub use grid::{CellId, Grid};
pub use point::GeoPoint;
pub use projection::LocalProjection;

/// Mean Earth radius in meters (IUGG value), used by all spherical formulas.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Convenient result alias for fallible geographic operations.
pub type Result<T> = std::result::Result<T, GeoError>;
