use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mood_exec::{for_each_index_with, Executor, SequentialExecutor};
use mood_trace::{Dataset, Trace, TraceStore, UserId};

use crate::{Attack, AttackScratch, ProfileStore, TrainedAttack};

/// A set of trained attacks — the virtual adversary MooD defends against
/// (paper §4.4 uses m = 3 attacks at once).
///
/// # Examples
///
/// ```
/// use mood_attacks::{ApAttack, PitAttack, PoiAttack, Attack, AttackSuite};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let suite = AttackSuite::train(
///     &[
///         &PoiAttack::paper_default() as &dyn Attack,
///         &PitAttack::paper_default(),
///         &ApAttack::paper_default(),
///     ],
///     &train,
/// );
/// assert_eq!(suite.len(), 3);
/// let victim = test.iter().next().unwrap();
/// let _ = suite.first_reidentifying(victim, victim.user());
/// ```
pub struct AttackSuite {
    attacks: Vec<Box<dyn TrainedAttack>>,
}

impl AttackSuite {
    /// Trains every attack on the same background knowledge.
    ///
    /// The attacks share one private [`ProfileStore`] for the pass, so
    /// models common to several attacks (POI-Attack and PIT-Attack both
    /// extract the same POI profiles under the paper's extractor) are
    /// built once — byte-identical to independent training by the
    /// store's verified-hit contract.
    ///
    /// # Panics
    ///
    /// Panics when `attacks` is empty or `background` is empty.
    pub fn train(attacks: &[&dyn Attack], background: &Dataset) -> Self {
        Self::train_with_store(attacks, background, &ProfileStore::new())
    }

    /// [`AttackSuite::train`] through a caller-owned [`ProfileStore`]:
    /// profile sets already interned for this background are reused, so
    /// a second suite/tenant over the same dataset trains with **zero**
    /// additional profile builds (the store's counters prove it).
    ///
    /// # Panics
    ///
    /// Panics when `attacks` is empty or `background` is empty.
    pub fn train_with_store(
        attacks: &[&dyn Attack],
        background: &Dataset,
        store: &ProfileStore,
    ) -> Self {
        assert!(
            !attacks.is_empty(),
            "attack suite needs at least one attack"
        );
        Self {
            attacks: attacks
                .iter()
                .map(|a| a.train_with(background, store))
                .collect(),
        }
    }

    /// Wraps already-trained attacks.
    pub fn from_trained(attacks: Vec<Box<dyn TrainedAttack>>) -> Self {
        assert!(
            !attacks.is_empty(),
            "attack suite needs at least one attack"
        );
        Self { attacks }
    }

    /// The trained attacks.
    pub fn attacks(&self) -> &[Box<dyn TrainedAttack>] {
        &self.attacks
    }

    /// Number of attacks in the suite.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// `false`: suites are never empty (checked at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The name of the first attack that re-identifies `trace` as
    /// `true_user`, or `None` when every attack fails — i.e. the trace is
    /// protected in the sense of the paper's Eq. 5/6.
    ///
    /// Attacks run in order and evaluation short-circuits on the first
    /// success (matching Algorithm 1's `while Ak(T') != U` loop).
    pub fn first_reidentifying(&self, trace: &Trace, true_user: UserId) -> Option<&'static str> {
        self.attacks
            .iter()
            .find(|a| a.re_identifies(trace, true_user))
            .map(|a| a.name())
    }

    /// `true` when no attack in the suite links `trace` to `true_user`.
    pub fn protects(&self, trace: &Trace, true_user: UserId) -> bool {
        self.first_reidentifying(trace, true_user).is_none()
    }

    /// [`AttackSuite::first_reidentifying`] on a per-worker scratch
    /// arena: every attack runs its scratch-aware inference
    /// ([`TrainedAttack::reidentify_with`]), sharing the scratch's
    /// rasterization cache and feature buffers. Same order, same
    /// short-circuit, and — by the `reidentify_with` contract — exactly
    /// the same verdict as the allocating form.
    pub fn first_reidentifying_with(
        &self,
        trace: &Trace,
        true_user: UserId,
        scratch: &mut AttackScratch,
    ) -> Option<&'static str> {
        let verdict = self
            .attacks
            .iter()
            .find(|a| a.reidentify_with(trace, true_user, scratch))
            .map(|a| a.name());
        scratch.mark_used();
        verdict
    }

    /// [`AttackSuite::protects`] on a per-worker scratch arena — the
    /// candidate hot path's verdict.
    pub fn protects_with(
        &self,
        trace: &Trace,
        true_user: UserId,
        scratch: &mut AttackScratch,
    ) -> bool {
        self.first_reidentifying_with(trace, true_user, scratch)
            .is_none()
    }

    /// Batched [`AttackSuite::protects_with`] over a candidate slab:
    /// writes one verdict per trace into `protected` (cleared first), in
    /// trace order.
    ///
    /// Evaluation is **attack-major** with skip-once-hit: each attack
    /// streams its trained profile arrays over the whole slab
    /// ([`TrainedAttack::score_batch`]'s regime), and a candidate
    /// already re-identified by an earlier attack is skipped by later
    /// ones. That performs *exactly* the candidate-major short-circuit's
    /// set of inference calls — candidate `i` reaches attack `k` iff no
    /// attack before `k` re-identified it — in a different order, and
    /// since every scratch cache is comparison-verified, call order
    /// cannot change any verdict: element `i` equals
    /// `protects_with(&traces[i], true_user, scratch)`.
    pub fn protects_batch_with(
        &self,
        traces: &[Trace],
        true_user: UserId,
        scratch: &mut AttackScratch,
        protected: &mut Vec<bool>,
    ) {
        protected.clear();
        protected.resize(traces.len(), true);
        for attack in &self.attacks {
            for (trace, verdict) in traces.iter().zip(protected.iter_mut()) {
                if *verdict && attack.reidentify_with(trace, true_user, scratch) {
                    *verdict = false;
                }
            }
        }
        scratch.mark_used();
    }

    /// [`AttackSuite::protects`], with the attacks evaluated on
    /// concurrent scoped threads.
    ///
    /// The verdict is the union over attacks, so it is identical to the
    /// sequential one — only wall-clock changes. The first attack runs
    /// on the calling thread while the rest are spawned; a successful
    /// re-identification flips a shared flag that not-yet-started
    /// attacks check so they can skip their work. This trades the
    /// sequential short-circuit for latency: prefer plain
    /// [`AttackSuite::protects`] when calls are already fanned out
    /// across users (the batch pipeline's regime), and this method when
    /// single-trace latency matters more than total work.
    pub fn protects_concurrent(&self, trace: &Trace, true_user: UserId) -> bool {
        use std::sync::atomic::{AtomicBool, Ordering};

        if self.attacks.len() <= 1 {
            return self.protects(trace, true_user);
        }
        let hit = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (first, rest) = self.attacks.split_first().expect("suites are never empty");
            for attack in rest {
                let hit = &hit;
                scope.spawn(move || {
                    if hit.load(Ordering::Relaxed) {
                        return;
                    }
                    if attack.re_identifies(trace, true_user) {
                        hit.store(true, Ordering::Relaxed);
                    }
                });
            }
            if first.re_identifies(trace, true_user) {
                hit.store(true, Ordering::Relaxed);
            }
        });
        !hit.load(Ordering::Relaxed)
    }

    /// Evaluates a whole (possibly obfuscated) dataset: each trace is
    /// attacked under its recorded user as ground truth.
    ///
    /// Runs inline on the calling thread; [`AttackSuite::evaluate_with`]
    /// fans the traces out over an executor and produces the identical
    /// result.
    pub fn evaluate(&self, dataset: &Dataset) -> DatasetEvaluation {
        self.evaluate_with(dataset, &SequentialExecutor)
    }

    /// [`AttackSuite::evaluate`], with traces fanned out over
    /// `executor` — the inner loop of every benchmark figure, made
    /// index-parallel.
    ///
    /// Each worker slot keeps a private accumulator (per-attack hit
    /// counts plus the submission indices of re-identified traces), so
    /// the hot loop takes no locks and allocates nothing per trace;
    /// accumulators are merged afterwards **by submission index**,
    /// which makes the result — including the order of
    /// [`DatasetEvaluation::non_protected_users`] — byte-identical to
    /// the sequential reference for every backend and thread count.
    pub fn evaluate_with(&self, dataset: &Dataset, executor: &dyn Executor) -> DatasetEvaluation {
        let traces: Vec<&Trace> = dataset.iter().collect();
        self.evaluate_indexed(
            dataset.user_count(),
            dataset.record_count(),
            |i| traces[i],
            executor,
        )
    }

    /// [`AttackSuite::evaluate_with`] over a compressed
    /// [`TraceStore`]: workers decode each trace through the store's
    /// byte-budgeted cache on demand, so the decoded working set stays
    /// bounded however large the corpus is. The result — including the
    /// order of [`DatasetEvaluation::non_protected_users`] — is
    /// byte-identical to evaluating the decoded form in memory, for
    /// every backend and thread count (decoding is pure, so cache
    /// timing cannot leak into verdicts).
    ///
    /// # Panics
    ///
    /// Panics when the store is unfinished.
    pub fn evaluate_store_with(
        &self,
        store: &TraceStore,
        executor: &dyn Executor,
    ) -> DatasetEvaluation {
        let users = store.user_ids();
        self.evaluate_indexed(
            store.user_count(),
            store.record_count(),
            |i| store.trace(users[i]),
            executor,
        )
    }

    /// The shared evaluation core: `n` traces fetched by `get` (either
    /// borrowed from a dataset or `Arc`s from a store's decode cache),
    /// fanned out over `executor`, merged by submission index.
    fn evaluate_indexed<H, G>(
        &self,
        users_total: usize,
        records_total: usize,
        get: G,
        executor: &dyn Executor,
    ) -> DatasetEvaluation
    where
        H: std::ops::Deref<Target = Trace>,
        G: Fn(usize) -> H + Sync,
    {
        /// One worker's private tallies — per-attack hit counts and
        /// `(submission index, user, records)` of re-identified traces —
        /// plus its attack scratch, so per-trace features build into
        /// reusable buffers across the whole evaluation.
        struct WorkerAcc {
            per_attack: Vec<usize>,
            hits: Vec<(usize, UserId, usize)>,
            scratch: AttackScratch,
        }

        let n = users_total;
        // Per-worker capacity covers a balanced share; a worker that
        // ends up with more (stealing) grows amortized. The merged
        // vectors below are the ones preallocated for the full count.
        let worker_capacity = n.div_ceil(executor.max_threads().max(1));
        let accs = for_each_index_with(
            executor,
            n,
            || WorkerAcc {
                per_attack: vec![0; self.attacks.len()],
                hits: Vec::with_capacity(worker_capacity),
                scratch: AttackScratch::new(),
            },
            |acc, i| {
                let trace = get(i);
                let mut hit = false;
                for (k, a) in self.attacks.iter().enumerate() {
                    if a.reidentify_with(&trace, trace.user(), &mut acc.scratch) {
                        acc.per_attack[k] += 1;
                        hit = true;
                    }
                }
                if hit {
                    acc.hits.push((i, trace.user(), trace.len()));
                }
            },
        );

        // Deterministic merge: counts are order-free sums; hits are
        // re-ordered by submission index, i.e. dataset iteration order.
        let mut per_attack_counts = vec![0usize; self.attacks.len()];
        let mut hits: Vec<(usize, UserId, usize)> = Vec::with_capacity(n);
        for acc in accs {
            for (total, count) in per_attack_counts.iter_mut().zip(&acc.per_attack) {
                *total += count;
            }
            hits.extend(acc.hits);
        }
        hits.sort_unstable_by_key(|&(i, _, _)| i);

        let mut non_protected = Vec::with_capacity(hits.len());
        let mut lost_records = 0usize;
        for &(_, user, records) in &hits {
            non_protected.push(user);
            lost_records += records;
        }
        // Summed (not overwritten) per name, so attacks sharing a name
        // pool their counts exactly like the sequential loop did.
        let mut per_attack: BTreeMap<String, usize> = BTreeMap::new();
        for a in &self.attacks {
            per_attack.insert(a.name().to_string(), 0);
        }
        for (a, count) in self.attacks.iter().zip(per_attack_counts) {
            *per_attack.get_mut(a.name()).expect("pre-seeded") += count;
        }
        DatasetEvaluation {
            users_total,
            records_total,
            non_protected_users: non_protected,
            lost_records,
            re_identified_per_attack: per_attack,
        }
    }
}

/// Result of running an [`AttackSuite`] over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEvaluation {
    /// Users in the evaluated dataset.
    pub users_total: usize,
    /// Records in the evaluated dataset.
    pub records_total: usize,
    /// Users re-identified by **at least one** attack (the paper's
    /// non-protected users).
    pub non_protected_users: Vec<UserId>,
    /// Records belonging to non-protected users (`|D_NP|_r`, Eq. 7).
    pub lost_records: usize,
    /// Per-attack re-identification counts (an attack may re-identify a
    /// user another attack misses).
    pub re_identified_per_attack: BTreeMap<String, usize>,
}

impl DatasetEvaluation {
    /// Number of non-protected users.
    pub fn non_protected_count(&self) -> usize {
        self.non_protected_users.len()
    }

    /// Share of non-protected users in `[0, 1]`.
    pub fn non_protected_ratio(&self) -> f64 {
        if self.users_total == 0 {
            0.0
        } else {
            self.non_protected_users.len() as f64 / self.users_total as f64
        }
    }

    /// Data-loss ratio (Eq. 7): records of non-protected users over total
    /// records.
    pub fn data_loss_ratio(&self) -> f64 {
        if self.records_total == 0 {
            0.0
        } else {
            self.lost_records as f64 / self.records_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApAttack, PitAttack, PoiAttack};
    use mood_geo::GeoPoint;
    use mood_trace::{Record, TimeDelta, Timestamp};

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    fn dwell_trace(user: u64, lat: f64, lng: f64, t0: i64) -> Trace {
        let records: Vec<Record> = (0..48).map(|i| rec(lat, lng, t0 + i * 600)).collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn background() -> Dataset {
        Dataset::from_traces([
            dwell_trace(1, 46.16, 6.06, 0),
            dwell_trace(2, 46.25, 6.20, 0),
        ])
        .unwrap()
    }

    fn full_suite(bg: &Dataset) -> AttackSuite {
        AttackSuite::train(
            &[
                &PoiAttack::paper_default() as &dyn Attack,
                &PitAttack::paper_default(),
                &ApAttack::paper_default(),
            ],
            bg,
        )
    }

    #[test]
    fn suite_trains_all_attacks() {
        let suite = full_suite(&background());
        assert_eq!(suite.len(), 3);
        let names: Vec<&str> = suite.attacks().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["POI-Attack", "PIT-Attack", "AP-Attack"]);
    }

    #[test]
    fn first_reidentifying_returns_attack_name() {
        let suite = full_suite(&background());
        let anon = dwell_trace(1, 46.1601, 6.0601, 1_000_000);
        let name = suite.first_reidentifying(&anon, UserId::new(1));
        assert!(name.is_some());
        assert!(!suite.protects(&anon, UserId::new(1)));
    }

    #[test]
    fn protects_when_trace_matches_other_user() {
        let suite = full_suite(&background());
        // user 1's trace placed at user 2's home: every attack points at 2
        let anon = dwell_trace(1, 46.2501, 6.2001, 1_000_000);
        assert!(suite.protects(&anon, UserId::new(1)));
    }

    #[test]
    fn evaluate_counts_users_and_records() {
        let suite = full_suite(&background());
        let test = Dataset::from_traces([
            dwell_trace(1, 46.1601, 6.0601, 1_000_000), // re-identified
            dwell_trace(2, 46.1601, 6.0601, 1_000_000), // points at user 1 -> protected
        ])
        .unwrap();
        let eval = suite.evaluate(&test);
        assert_eq!(eval.users_total, 2);
        assert_eq!(eval.non_protected_count(), 1);
        assert_eq!(eval.non_protected_users, vec![UserId::new(1)]);
        assert_eq!(eval.lost_records, 48);
        assert!((eval.data_loss_ratio() - 0.5).abs() < 1e-12);
        assert!((eval.non_protected_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one attack")]
    fn empty_suite_rejected() {
        AttackSuite::train(&[], &background());
    }

    #[test]
    fn parallel_evaluation_is_byte_identical_to_sequential() {
        use mood_exec::ExecutorKind;
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.2).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let suite = full_suite(&train);
        let reference = suite.evaluate(&test);
        for kind in ExecutorKind::all() {
            for threads in [1usize, 2, 8] {
                let executor = kind.build(threads);
                let eval = suite.evaluate_with(&test, executor.as_ref());
                assert_eq!(eval, reference, "{kind} x{threads} diverged");
                // order of non-protected users is part of the contract
                assert_eq!(eval.non_protected_users, reference.non_protected_users);
            }
        }
    }

    #[test]
    fn store_backed_evaluation_is_byte_identical() {
        use mood_exec::ExecutorKind;
        use mood_synth::presets;
        use mood_trace::StoreConfig;
        let ds = presets::privamov_like().scaled(0.2).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let suite = full_suite(&train);
        let reference = suite.evaluate(&test);
        // A budget fitting only ~2 decoded traces: eviction churn is
        // constant, verdicts must not care.
        let max_trace_bytes = test
            .iter()
            .map(|t| t.len() * std::mem::size_of::<Record>())
            .max()
            .unwrap();
        let config = StoreConfig::default()
            .with_seal_records(64)
            .with_chunk_records(256)
            .with_cache_budget(2 * max_trace_bytes);
        let store = mood_trace::TraceStore::from_dataset(&test, config);
        for kind in ExecutorKind::all() {
            for threads in [1usize, 2, 8] {
                let executor = kind.build(threads);
                let eval = suite.evaluate_store_with(&store, executor.as_ref());
                assert_eq!(eval, reference, "{kind} x{threads} store eval diverged");
            }
        }
        let stats = store.stats();
        assert!(stats.resident_bytes <= stats.budget_bytes);
        assert!(stats.evictions > 0, "budget never forced an eviction");
    }

    #[test]
    fn scratch_verdicts_match_predict_verdicts_exactly() {
        use crate::AttackScratch;
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.2).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let suite = full_suite(&train);
        let users: Vec<UserId> = train.iter().map(|t| t.user()).collect();

        // Raw traces, a jittered variant (standing in for an obfuscated
        // candidate) and an abstention-inducing moving trace, all scored
        // on ONE warm scratch: every verdict must equal the predict path.
        let mut victims: Vec<Trace> = test.iter().cloned().collect();
        for t in test.iter().take(3) {
            let jittered: Vec<Record> = t
                .records()
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let p = r.point();
                    let d = if i % 2 == 0 { 0.004 } else { -0.004 };
                    r.with_point(mood_geo::GeoPoint::new(p.lat() + d, p.lng() - d).unwrap())
                })
                .collect();
            victims.push(Trace::new(t.user(), jittered).unwrap());
        }
        let moving: Vec<Record> = (0..40)
            .map(|i| rec(45.9 + i as f64 * 0.01, 6.0, i * 600))
            .collect();
        victims.push(Trace::new(UserId::new(77), moving).unwrap());

        let mut scratch = AttackScratch::new();
        for trace in &victims {
            for attack in suite.attacks() {
                for &user in &users {
                    assert_eq!(
                        attack.reidentify_with(trace, user, &mut scratch),
                        attack.re_identifies(trace, user),
                        "{} diverged on trace of {} vs user {user}",
                        attack.name(),
                        trace.user(),
                    );
                }
            }
            assert_eq!(
                suite.first_reidentifying_with(trace, trace.user(), &mut scratch),
                suite.first_reidentifying(trace, trace.user()),
            );
        }
        assert!(scratch.is_warm());
        // whenever PIT scored a trace POI had already profiled, the
        // shared extraction must have been reused, not recomputed
        assert!(
            scratch.profile_cache_hits() > 0,
            "PIT never reused POI's stay extraction"
        );
        assert!(scratch.profile_cache_misses() > 0);
    }

    #[test]
    fn score_batch_equals_per_candidate_scoring() {
        use crate::AttackScratch;
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.2).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let suite = full_suite(&train);

        // A slab per user: their raw trace plus jittered variants
        // (standing in for LPPM candidates), scored as one batch.
        for trace in test.iter().take(4) {
            let mut slab: Vec<Trace> = vec![trace.clone()];
            for (v, d) in [(1, 0.003), (2, -0.006), (3, 0.02)] {
                let jittered: Vec<Record> = trace
                    .records()
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let p = r.point();
                        let sign = if (i + v) % 2 == 0 { d } else { -d };
                        r.with_point(GeoPoint::new(p.lat() + sign, p.lng() - sign).unwrap())
                    })
                    .collect();
                slab.push(Trace::new(trace.user(), jittered).unwrap());
            }

            let mut batch_scratch = AttackScratch::new();
            let mut verdicts = Vec::new();
            for attack in suite.attacks() {
                attack.score_batch(&slab, trace.user(), &mut batch_scratch, &mut verdicts);
                assert_eq!(verdicts.len(), slab.len());
                let mut per_candidate = AttackScratch::new();
                for (candidate, &verdict) in slab.iter().zip(&verdicts) {
                    assert_eq!(
                        verdict,
                        attack.reidentify_with(candidate, trace.user(), &mut per_candidate),
                        "{} batch verdict diverged",
                        attack.name()
                    );
                }
            }

            // Suite-level slab: attack-major with skip-once-hit must
            // equal the per-candidate short-circuit walk.
            let mut protected = Vec::new();
            suite.protects_batch_with(&slab, trace.user(), &mut batch_scratch, &mut protected);
            let mut per_candidate = AttackScratch::new();
            for (candidate, &p) in slab.iter().zip(&protected) {
                assert_eq!(
                    p,
                    suite.protects_with(candidate, trace.user(), &mut per_candidate),
                    "suite batch verdict diverged"
                );
            }
        }
    }

    #[test]
    fn multi_attack_union_is_at_least_single_attack() {
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.2).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let ap_only = AttackSuite::train(&[&ApAttack::paper_default() as &dyn Attack], &train);
        let all = full_suite(&train);
        let single = ap_only.evaluate(&test).non_protected_count();
        let multi = all.evaluate(&test).non_protected_count();
        assert!(multi >= single, "union {multi} < single {single}");
    }
}
