//! User re-identification attacks (paper §2.2 and §4.1.1).
//!
//! A re-identification attack works in two phases: a **training phase**
//! building a mobility profile per known user from background knowledge
//! `H`, and an **attack phase** matching an anonymous (possibly
//! obfuscated) trace against the learned profiles:
//!
//! ```text
//! A : (R² × R⁺)* → U,   T ↦ A(T, H) = u
//! ```
//!
//! Three state-of-the-art attacks are implemented, matching the paper's
//! §4.1.1 configuration:
//!
//! * [`PoiAttack`] (Primault et al. 2014) — profiles are POI sets;
//!   similarity is geographic distance between POIs (200 m clusters, 1 h
//!   dwell);
//! * [`PitAttack`] (Gambs et al. 2014) — profiles are Mobility Markov
//!   Chains compared by the *stats-prox* distance (stationary +
//!   proximity);
//! * [`ApAttack`] (Maouche et al. 2017) — profiles are heatmaps over
//!   800 m cells compared by Topsoe divergence; the strongest known
//!   attack.
//!
//! The [`Attack`]/[`TrainedAttack`] traits let MooD treat attacks as
//! plug-ins; [`AttackSuite`] trains a set of them at once and answers the
//! question the engine asks: *does at least one attack re-identify this
//! trace?*
//!
//! # Examples
//!
//! ```
//! use mood_attacks::{ApAttack, Attack, AttackSuite};
//! use mood_synth::presets;
//! use mood_trace::TimeDelta;
//!
//! let ds = presets::privamov_like().scaled(0.15).generate();
//! let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
//! let suite = AttackSuite::train(&[&ApAttack::paper_default()], &train);
//! let trace = test.iter().next().unwrap();
//! // raw traces of distinct users are usually re-identified
//! let prediction = suite.attacks()[0].predict(trace);
//! assert!(prediction.predicted.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ap_attack;
mod evaluation;
mod pit_attack;
mod poi_attack;
mod prediction;
mod scratch;
mod store;

pub use ap_attack::ApAttack;
pub use evaluation::{AttackSuite, DatasetEvaluation};
pub use pit_attack::PitAttack;
pub use poi_attack::PoiAttack;
pub use prediction::Prediction;
pub use scratch::AttackScratch;
pub use store::{ChainSet, HeatmapSet, PoiProfileSet, ProfileStore, StoreCounters};

use mood_trace::{Dataset, Trace};

/// An untrained re-identification attack: configuration plus the
/// knowledge of how to build profiles.
pub trait Attack {
    /// Short attack name ("AP-Attack", "POI-Attack", "PIT-Attack").
    fn name(&self) -> &'static str;

    /// Trains the attack on background knowledge (the adversary's
    /// non-obfuscated past traces, one per known user).
    ///
    /// # Panics
    ///
    /// Implementations panic when `background` is empty — an attack with
    /// no candidates is a configuration error.
    fn train(&self, background: &Dataset) -> Box<dyn TrainedAttack>;

    /// [`Attack::train`] through a shared [`ProfileStore`]: profile sets
    /// already interned for `(background, this attack's parameters)` are
    /// reused instead of rebuilt, so suites, tenants and engine
    /// templates over the same background knowledge train once.
    ///
    /// The contract is strict training equivalence: the trained attack
    /// must be byte-identical (verdicts *and* profiles) to what
    /// [`Attack::train`] produces — store hits are full-compare verified,
    /// never fingerprint-trusted. The default implementation ignores the
    /// store, so third-party attacks stay correct without opting in.
    fn train_with(&self, background: &Dataset, store: &ProfileStore) -> Box<dyn TrainedAttack> {
        let _ = store;
        self.train(background)
    }
}

/// A trained attack, ready to re-identify anonymous traces.
pub trait TrainedAttack: Send + Sync {
    /// Short attack name, same as the untrained attack's.
    fn name(&self) -> &'static str;

    /// Matches an anonymous trace against the learned profiles.
    ///
    /// Returns [`Prediction::none`] when no profile can be built from the
    /// trace (e.g. no POIs) — the attack abstains, which counts as a
    /// failed re-identification.
    fn predict(&self, trace: &Trace) -> Prediction;

    /// `true` when the attack links `trace` back to `true_user`.
    /// (MooD knows the ground truth, paper §4.4.)
    fn re_identifies(&self, trace: &Trace, true_user: mood_trace::UserId) -> bool {
        self.predict(trace).predicted == Some(true_user)
    }

    /// Scratch-aware [`TrainedAttack::re_identifies`]: the verdict hot
    /// path, building per-trace features into the caller's reusable
    /// per-worker buffers instead of fresh allocations, and free to
    /// prune profile matching with *exact* best-bound early exits.
    ///
    /// The contract is strict verdict equivalence: for every `(trace,
    /// true_user)` this must return exactly what `re_identifies`
    /// returns — the scratch changes how features are computed, never
    /// what they evaluate to (see [`AttackScratch`] for the full
    /// determinism obligations). The default implementation falls back
    /// to `re_identifies`, so third-party attacks stay correct without
    /// opting in.
    fn reidentify_with(
        &self,
        trace: &Trace,
        true_user: mood_trace::UserId,
        scratch: &mut AttackScratch,
    ) -> bool {
        let _ = scratch;
        self.re_identifies(trace, true_user)
    }

    /// Batched [`TrainedAttack::reidentify_with`] over a candidate slab:
    /// appends one verdict per trace to `verdicts` (cleared first), in
    /// trace order. Streaming a whole slab against the attack's trained
    /// profiles keeps the profile-side SoA arrays hot across candidates
    /// and amortizes per-attack dispatch; the contract is strict verdict
    /// equivalence — element `i` must equal
    /// `reidentify_with(&traces[i], true_user, scratch)` called in
    /// order, which the default implementation is verbatim.
    fn score_batch(
        &self,
        traces: &[Trace],
        true_user: mood_trace::UserId,
        scratch: &mut AttackScratch,
        verdicts: &mut Vec<bool>,
    ) {
        verdicts.clear();
        verdicts.reserve(traces.len());
        for trace in traces {
            verdicts.push(self.reidentify_with(trace, true_user, scratch));
        }
    }
}
