use std::sync::Arc;

use mood_models::{kernels, CentroidSoa, PoiExtractor, PoiProfile};
use mood_trace::{Dataset, Trace, UserId};

use crate::{Attack, AttackScratch, PoiProfileSet, Prediction, ProfileStore, TrainedAttack};

/// POI-Attack (Primault et al. 2014, the paper's \[27\]): profiles are POI
/// sets; the similarity between an anonymous profile and a candidate is
/// the weighted mean geographic distance from each anonymous POI to the
/// candidate's nearest POI.
///
/// Configuration follows the paper (§4.1.1): POIs are extracted with a
/// 200 m cluster diameter and a 1 h minimum dwell.
///
/// The attack **abstains** on traces from which no POI can be extracted
/// (constantly moving or heavily obfuscated traces) — abstention counts
/// as a failed re-identification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoiAttack {
    extractor: PoiExtractor,
}

impl PoiAttack {
    /// Creates a POI-Attack with a custom extractor.
    pub fn new(extractor: PoiExtractor) -> Self {
        Self { extractor }
    }

    /// The paper's configuration: 200 m diameter, 1 h dwell.
    pub fn paper_default() -> Self {
        Self::new(PoiExtractor::paper_default())
    }

    /// The POI extractor in use.
    pub fn extractor(&self) -> &PoiExtractor {
        &self.extractor
    }
}

impl Attack for PoiAttack {
    fn name(&self) -> &'static str {
        "POI-Attack"
    }

    fn train(&self, background: &Dataset) -> Box<dyn TrainedAttack> {
        assert!(!background.is_empty(), "background knowledge is empty");
        // One-shot build of the same set a ProfileStore would intern.
        Box::new(TrainedPoiAttack {
            extractor: self.extractor,
            profiles: Arc::new(PoiProfileSet::build(background, &self.extractor)),
        })
    }

    fn train_with(&self, background: &Dataset, store: &ProfileStore) -> Box<dyn TrainedAttack> {
        assert!(!background.is_empty(), "background knowledge is empty");
        Box::new(TrainedPoiAttack {
            extractor: self.extractor,
            profiles: store.poi_profiles(background, &self.extractor),
        })
    }
}

struct TrainedPoiAttack {
    extractor: PoiExtractor,
    profiles: Arc<PoiProfileSet>,
}

/// Weighted mean distance from each POI of `anon` to the nearest POI of
/// `candidate`; infinite when the candidate has no POIs. This is the
/// scalar reference walk — the hot path scores through the bit-identical
/// SoA kernel ([`kernels::weighted_nearest_bounded`]), and the
/// scratch-vs-predict parity tests gate the two against each other.
fn profile_distance(anon: &PoiProfile, candidate: &PoiProfile) -> f64 {
    if candidate.is_empty() {
        return f64::INFINITY;
    }
    let weights = anon.weights();
    let mut sum = 0.0;
    for (poi, w) in anon.pois().iter().zip(weights.iter()) {
        let nearest = candidate
            .pois()
            .iter()
            .map(|c| poi.centroid.approx_distance(&c.centroid))
            .fold(f64::INFINITY, f64::min);
        sum += w * nearest;
    }
    sum
}

impl TrainedAttack for TrainedPoiAttack {
    fn name(&self) -> &'static str {
        "POI-Attack"
    }

    fn predict(&self, trace: &Trace) -> Prediction {
        let anon = self.extractor.extract_profile(trace);
        if anon.is_empty() {
            return Prediction::none();
        }
        let scores: Vec<(UserId, f64)> = self
            .profiles
            .iter()
            .map(|(user, profile, _)| (user, profile_distance(&anon, profile)))
            .collect();
        Prediction::from_scores(scores)
    }

    /// Scratch path: stays, the anonymous profile and its weights come
    /// from the worker's buffers (the profile via the shared POI/PIT
    /// cache), and candidate matching streams the trained profiles' SoA
    /// centroid arrays through the two-phase nearest kernel, pruning
    /// with the running best distance (verdict equivalence with
    /// `predict` is [`crate::scratch::bounded_argmin`]'s contract; the
    /// kernel is bit-identical to the scalar walk by
    /// `mood_models::kernels`' proptests).
    fn reidentify_with(
        &self,
        trace: &Trace,
        true_user: UserId,
        scratch: &mut AttackScratch,
    ) -> bool {
        let AttackScratch { poi, weights, .. } = scratch;
        let profile = poi.profile_for(&self.extractor, trace);
        if profile.is_empty() {
            return false; // predict abstains
        }
        profile.weights_into(weights);
        let candidates = self
            .profiles
            .iter()
            .map(|(user, _, centroids)| (user, centroids));
        let winner =
            crate::scratch::bounded_argmin(candidates, |centroids: &CentroidSoa, bound| {
                kernels::weighted_nearest_bounded(profile.pois(), weights, centroids, bound, 1.0)
            });
        winner == Some(true_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, Timestamp};

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    /// A user dwelling at (lat, lng) for `hours`, records every 10 min.
    fn dwell_trace(user: u64, lat: f64, lng: f64, hours: i64, t0: i64) -> Trace {
        let records: Vec<Record> = (0..hours * 6)
            .map(|i| rec(lat, lng, t0 + i * 600))
            .collect();
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn background() -> Dataset {
        Dataset::from_traces([
            dwell_trace(1, 46.16, 6.06, 8, 0),
            dwell_trace(2, 46.25, 6.20, 8, 0),
        ])
        .unwrap()
    }

    #[test]
    fn matches_by_poi_location() {
        let trained = PoiAttack::paper_default().train(&background());
        let anon = dwell_trace(99, 46.1601, 6.0601, 4, 500_000);
        let p = trained.predict(&anon);
        assert_eq!(p.predicted, Some(UserId::new(1)));
    }

    #[test]
    fn abstains_without_pois() {
        let trained = PoiAttack::paper_default().train(&background());
        // constantly moving trace: no dwell -> no POI
        let records: Vec<Record> = (0..30)
            .map(|i| rec(46.0 + i as f64 * 0.005, 6.0, i * 600))
            .collect();
        let anon = Trace::new(UserId::new(99), records).unwrap();
        assert_eq!(trained.predict(&anon), Prediction::none());
    }

    #[test]
    fn candidate_without_pois_gets_infinite_distance() {
        // user 3 constantly moves -> empty profile
        let moving: Vec<Record> = (0..30)
            .map(|i| rec(46.0 + i as f64 * 0.005, 6.0, i * 600))
            .collect();
        let mut bg = background();
        bg.insert(Trace::new(UserId::new(3), moving).unwrap())
            .unwrap();
        let trained = PoiAttack::paper_default().train(&bg);
        let anon = dwell_trace(99, 46.1601, 6.0601, 4, 500_000);
        let p = trained.predict(&anon);
        assert_eq!(p.predicted, Some(UserId::new(1)));
        let score3 = p.scores.iter().find(|(u, _)| *u == UserId::new(3)).unwrap();
        assert_eq!(score3.1, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "background knowledge is empty")]
    fn train_rejects_empty_background() {
        PoiAttack::paper_default().train(&Dataset::new());
    }

    #[test]
    fn weighted_distance_prefers_heavier_pois() {
        // anon user spends most time near user 1's place and a little
        // near user 2's -> weights should pull toward user 1
        let mut records = Vec::new();
        for i in 0..40 {
            records.push(rec(46.1602, 6.0602, i * 600)); // ~6.6 h
        }
        for i in 0..8 {
            records.push(rec(46.2502, 6.2002, 40 * 600 + i * 600)); // ~1.3 h
        }
        let anon = Trace::new(UserId::new(99), records).unwrap();
        let trained = PoiAttack::paper_default().train(&background());
        assert_eq!(trained.predict(&anon).predicted, Some(UserId::new(1)));
    }
}
