use serde::{Deserialize, Serialize};

use mood_trace::UserId;

/// The outcome of matching one anonymous trace against learned profiles.
///
/// Besides the arg-min `predicted` user, the full per-candidate distance
/// vector is exposed (sorted ascending) so callers can inspect margins,
/// top-k accuracy or ties without re-running the attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The re-identified user, or `None` when the attack abstained
    /// (could not build a profile from the trace).
    pub predicted: Option<UserId>,
    /// `(candidate, distance)` pairs sorted by ascending distance;
    /// empty when the attack abstained.
    pub scores: Vec<(UserId, f64)>,
}

impl Prediction {
    /// An abstention: the attack could not profile the trace.
    pub fn none() -> Self {
        Self {
            predicted: None,
            scores: Vec::new(),
        }
    }

    /// Builds a prediction from unsorted candidate distances; the
    /// candidate with the smallest finite distance wins (ties broken by
    /// user ID for determinism). Abstains when every distance is
    /// non-finite.
    pub fn from_scores(mut scores: Vec<(UserId, f64)>) -> Self {
        scores.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let predicted = scores.iter().find(|(_, d)| d.is_finite()).map(|(u, _)| *u);
        Self { predicted, scores }
    }

    /// `true` when the prediction names `user`.
    pub fn is(&self, user: UserId) -> bool {
        self.predicted == Some(user)
    }

    /// Rank of `user` in the score vector (0 = closest), or `None` when
    /// the user was not scored.
    pub fn rank_of(&self, user: UserId) -> Option<usize> {
        self.scores.iter().position(|(u, _)| *u == user)
    }

    /// Distance margin between the best and second-best candidates;
    /// `None` with fewer than two finite scores. Small margins indicate
    /// shaky re-identifications.
    pub fn margin(&self) -> Option<f64> {
        let mut finite = self.scores.iter().filter(|(_, d)| d.is_finite());
        let best = finite.next()?;
        let second = finite.next()?;
        Some(second.1 - best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(id: u64) -> UserId {
        UserId::new(id)
    }

    #[test]
    fn from_scores_picks_min() {
        let p = Prediction::from_scores(vec![(u(1), 5.0), (u(2), 2.0), (u(3), 9.0)]);
        assert_eq!(p.predicted, Some(u(2)));
        assert_eq!(p.scores[0].0, u(2));
        assert!(p.is(u(2)));
        assert!(!p.is(u(1)));
    }

    #[test]
    fn ties_break_by_user_id() {
        let p = Prediction::from_scores(vec![(u(9), 1.0), (u(3), 1.0)]);
        assert_eq!(p.predicted, Some(u(3)));
    }

    #[test]
    fn infinite_scores_are_skipped() {
        let p = Prediction::from_scores(vec![(u(1), f64::INFINITY), (u(2), 3.0)]);
        assert_eq!(p.predicted, Some(u(2)));
    }

    #[test]
    fn all_infinite_abstains() {
        let p = Prediction::from_scores(vec![(u(1), f64::INFINITY), (u(2), f64::INFINITY)]);
        assert_eq!(p.predicted, None);
    }

    #[test]
    fn none_is_empty() {
        let p = Prediction::none();
        assert_eq!(p.predicted, None);
        assert!(p.scores.is_empty());
        assert_eq!(p.margin(), None);
    }

    #[test]
    fn rank_and_margin() {
        let p = Prediction::from_scores(vec![(u(1), 5.0), (u(2), 2.0), (u(3), 9.0)]);
        assert_eq!(p.rank_of(u(2)), Some(0));
        assert_eq!(p.rank_of(u(3)), Some(2));
        assert_eq!(p.rank_of(u(7)), None);
        assert!((p.margin().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Prediction::from_scores(vec![(u(1), 5.0), (u(2), 2.0)]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Prediction = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_scores() -> impl Strategy<Value = Vec<(UserId, f64)>> {
        proptest::collection::vec((0u64..50, 0.0f64..1e6), 1..40).prop_map(|v| {
            // unique users, keep first occurrence
            let mut seen = std::collections::HashSet::new();
            v.into_iter()
                .filter(|(id, _)| seen.insert(*id))
                .map(|(id, d)| (UserId::new(id), d))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn winner_has_minimal_distance(scores in arb_scores()) {
            let min = scores
                .iter()
                .map(|(_, d)| *d)
                .fold(f64::INFINITY, f64::min);
            let p = Prediction::from_scores(scores);
            let winner = p.predicted.expect("finite scores exist");
            let d = p.scores.iter().find(|(u, _)| *u == winner).unwrap().1;
            prop_assert!((d - min).abs() < 1e-12);
        }

        #[test]
        fn scores_sorted_ascending(scores in arb_scores()) {
            let p = Prediction::from_scores(scores);
            for pair in p.scores.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].1);
            }
        }

        #[test]
        fn margin_nonnegative(scores in arb_scores()) {
            let p = Prediction::from_scores(scores);
            if let Some(m) = p.margin() {
                prop_assert!(m >= 0.0);
            }
        }

        #[test]
        fn every_candidate_is_ranked(scores in arb_scores()) {
            let users: Vec<UserId> = scores.iter().map(|(u, _)| *u).collect();
            let p = Prediction::from_scores(scores);
            for u in users {
                prop_assert!(p.rank_of(u).is_some());
            }
        }
    }
}
