use std::sync::Arc;

use mood_models::{kernels, CentroidSoa, MarkovChain, PoiExtractor};
use mood_trace::{Dataset, Trace, UserId};

use crate::{
    Attack, AttackScratch, ChainSet, PoiProfileSet, Prediction, ProfileStore, TrainedAttack,
};

/// PIT-Attack (Gambs et al. 2014, the paper's \[16\]): profiles are
/// Mobility Markov Chains; chains are compared with the **stats-prox**
/// distance, the average of a *stationary* distance and a *proximity*
/// distance (the combination the original paper found most effective).
///
/// Our stats-prox rendition (documented in DESIGN.md):
///
/// * **stationary** — Σᵢ π_a(i) · d(state_aᵢ, nearest state of b): the
///   expected geographic distance from where the anonymous chain spends
///   its time to the candidate's closest place, weighted by the
///   anonymous chain's stationary distribution;
/// * **proximity** — rank-weighted distance between same-rank states of
///   the two chains (states are ordered by weight): Σₖ d(aₖ, bₖ)/(k+1)
///   normalised by Σₖ 1/(k+1), over the common top-5 ranks.
///
/// Both terms are in meters; stats-prox is their mean. The attack
/// abstains when the anonymous trace yields an empty chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PitAttack {
    extractor: PoiExtractor,
    top_k: usize,
}

impl PitAttack {
    /// Creates a PIT-Attack with a custom POI extractor and proximity
    /// depth (`top_k` ranked states compared).
    ///
    /// # Panics
    ///
    /// Panics when `top_k` is zero.
    pub fn new(extractor: PoiExtractor, top_k: usize) -> Self {
        assert!(top_k > 0, "top_k must be positive");
        Self { extractor, top_k }
    }

    /// The paper's configuration: 200 m POI diameter, 1 h dwell, top-5
    /// proximity.
    pub fn paper_default() -> Self {
        Self::new(PoiExtractor::paper_default(), 5)
    }
}

impl Attack for PitAttack {
    fn name(&self) -> &'static str {
        "PIT-Attack"
    }

    fn train(&self, background: &Dataset) -> Box<dyn TrainedAttack> {
        assert!(!background.is_empty(), "background knowledge is empty");
        // One-shot build of the same sets a ProfileStore would intern:
        // profiles extracted once, chains derived from them.
        let profiles = PoiProfileSet::build(background, &self.extractor);
        Box::new(TrainedPitAttack {
            extractor: self.extractor,
            top_k: self.top_k,
            profiles: Arc::new(ChainSet::derive(&profiles)),
        })
    }

    fn train_with(&self, background: &Dataset, store: &ProfileStore) -> Box<dyn TrainedAttack> {
        assert!(!background.is_empty(), "background knowledge is empty");
        Box::new(TrainedPitAttack {
            extractor: self.extractor,
            top_k: self.top_k,
            profiles: store.markov_chains(background, &self.extractor),
        })
    }
}

struct TrainedPitAttack {
    extractor: PoiExtractor,
    top_k: usize,
    profiles: Arc<ChainSet>,
}

/// Reference form of the stationary term; the scoring path inlines it
/// in [`stats_prox_bounded`] so pruning can check after each term.
#[cfg(test)]
fn stationary_distance(anon: &MarkovChain, cand: &MarkovChain) -> f64 {
    let pi = anon.stationary();
    let mut sum = 0.0;
    for (i, a_state) in anon.states().iter().enumerate() {
        let nearest = cand
            .states()
            .iter()
            .map(|c| a_state.centroid.approx_distance(&c.centroid))
            .fold(f64::INFINITY, f64::min);
        sum += pi[i] * nearest;
    }
    sum
}

fn proximity_distance(anon: &MarkovChain, cand: &MarkovChain, top_k: usize) -> f64 {
    let depth = top_k.min(anon.state_count()).min(cand.state_count());
    if depth == 0 {
        return f64::INFINITY;
    }
    let mut sum = 0.0;
    let mut norm = 0.0;
    for k in 0..depth {
        let w = 1.0 / (k as f64 + 1.0);
        sum += w * anon.states()[k]
            .centroid
            .approx_distance(&cand.states()[k].centroid);
        norm += w;
    }
    sum / norm
}

/// The scalar reference stats-prox — the hot path scores through the
/// bit-identical SoA kernel ([`stats_prox_bounded_soa`]), and the
/// scratch-vs-predict parity tests gate the two against each other.
fn stats_prox(anon: &MarkovChain, cand: &MarkovChain, top_k: usize) -> f64 {
    if cand.is_empty() {
        return f64::INFINITY;
    }
    let pi = anon.stationary();
    let mut sum = 0.0;
    for (i, a_state) in anon.states().iter().enumerate() {
        let nearest = cand
            .states()
            .iter()
            .map(|c| a_state.centroid.approx_distance(&c.centroid))
            .fold(f64::INFINITY, f64::min);
        sum += pi[i] * nearest;
    }
    0.5 * sum + 0.5 * proximity_distance(anon, cand, top_k)
}

/// [`stats_prox`] with optional best-bound pruning on the stationary
/// half, which streams the candidate's SoA state centroids through the
/// two-phase nearest kernel: its terms (`π_i × nearest distance`) are
/// non-negative, so the partial sum is monotone and `0.5 × partial`
/// already exceeding `bound` proves the full stats-prox (which only
/// adds the non-negative proximity half) would too — pruning is exact,
/// and a returned score is bit-identical to the unbounded scalar
/// computation (the kernel's contract, pinned by `mood_models::kernels`
/// proptests).
fn stats_prox_bounded_soa(
    anon: &MarkovChain,
    cand: &MarkovChain,
    cand_centroids: &CentroidSoa,
    top_k: usize,
    bound: Option<f64>,
) -> Option<f64> {
    if cand.is_empty() {
        return Some(f64::INFINITY);
    }
    let pi = anon.stationary();
    let sum = kernels::weighted_nearest_bounded(anon.states(), pi, cand_centroids, bound, 0.5)?;
    Some(0.5 * sum + 0.5 * proximity_distance(anon, cand, top_k))
}

impl TrainedAttack for TrainedPitAttack {
    fn name(&self) -> &'static str {
        "PIT-Attack"
    }

    fn predict(&self, trace: &Trace) -> Prediction {
        let profile = self.extractor.extract_profile(trace);
        let anon = MarkovChain::from_profile(&profile);
        if anon.is_empty() {
            return Prediction::none();
        }
        let scores: Vec<(UserId, f64)> = self
            .profiles
            .iter()
            .map(|(user, cand, _)| (user, stats_prox(&anon, cand, self.top_k)))
            .collect();
        Prediction::from_scores(scores)
    }

    /// Scratch path: stays, the anonymous profile (via the shared
    /// POI/PIT cache) and its Markov chain are rebuilt into the
    /// worker's buffers, and the candidate scan prunes on the
    /// stationary half (verdict equivalence with `predict` is
    /// [`crate::scratch::bounded_argmin`]'s contract).
    fn reidentify_with(
        &self,
        trace: &Trace,
        true_user: UserId,
        scratch: &mut AttackScratch,
    ) -> bool {
        let AttackScratch { poi, chain, .. } = scratch;
        let profile = poi.profile_for(&self.extractor, trace);
        chain.rebuild_from_profile(profile);
        if chain.is_empty() {
            return false; // predict abstains
        }
        let candidates = self
            .profiles
            .iter()
            .map(|(user, cand, centroids)| (user, (cand, centroids)));
        let winner = crate::scratch::bounded_argmin(
            candidates,
            |(cand, centroids): (&MarkovChain, &CentroidSoa), bound| {
                stats_prox_bounded_soa(chain, cand, centroids, self.top_k, bound)
            },
        );
        winner == Some(true_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, Timestamp};

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    /// Alternating 2 h blocks between `a` and `b` -> two-state MMC.
    fn commuter(user: u64, a: (f64, f64), b: (f64, f64), t0: i64) -> Trace {
        let mut records = Vec::new();
        for block in 0..8i64 {
            let (lat, lng) = if block % 2 == 0 { a } else { b };
            for i in 0..12 {
                records.push(rec(lat, lng, t0 + block * 7200 + i * 600));
            }
        }
        Trace::new(UserId::new(user), records).unwrap()
    }

    fn background() -> Dataset {
        Dataset::from_traces([
            commuter(1, (46.16, 6.06), (46.18, 6.09), 0),
            commuter(2, (46.25, 6.20), (46.23, 6.17), 0),
        ])
        .unwrap()
    }

    #[test]
    fn matches_same_commute_pattern() {
        let trained = PitAttack::paper_default().train(&background());
        let anon = commuter(99, (46.1601, 6.0601), (46.1801, 6.0901), 1_000_000);
        assert_eq!(trained.predict(&anon).predicted, Some(UserId::new(1)));
    }

    #[test]
    fn abstains_without_chain() {
        let trained = PitAttack::paper_default().train(&background());
        let moving: Vec<Record> = (0..30)
            .map(|i| rec(46.0 + i as f64 * 0.005, 6.0, i * 600))
            .collect();
        let anon = Trace::new(UserId::new(99), moving).unwrap();
        assert_eq!(trained.predict(&anon), Prediction::none());
    }

    #[test]
    fn stationary_distance_zero_for_same_places() {
        let e = PoiExtractor::paper_default();
        let t = commuter(1, (46.16, 6.06), (46.18, 6.09), 0);
        let mmc = MarkovChain::from_profile(&e.extract_profile(&t));
        assert!(stationary_distance(&mmc, &mmc) < 1.0);
        assert!(proximity_distance(&mmc, &mmc, 5) < 1.0);
    }

    #[test]
    fn stats_prox_orders_candidates_geographically() {
        let e = PoiExtractor::paper_default();
        let anon = MarkovChain::from_profile(&e.extract_profile(&commuter(
            9,
            (46.16, 6.06),
            (46.18, 6.09),
            0,
        )));
        let near = MarkovChain::from_profile(&e.extract_profile(&commuter(
            1,
            (46.161, 6.061),
            (46.181, 6.091),
            0,
        )));
        let far = MarkovChain::from_profile(&e.extract_profile(&commuter(
            2,
            (46.25, 6.20),
            (46.23, 6.17),
            0,
        )));
        assert!(stats_prox(&anon, &near, 5) < stats_prox(&anon, &far, 5));
    }

    #[test]
    fn empty_candidate_is_infinite() {
        let e = PoiExtractor::paper_default();
        let anon = MarkovChain::from_profile(&e.extract_profile(&commuter(
            9,
            (46.16, 6.06),
            (46.18, 6.09),
            0,
        )));
        let empty = MarkovChain::from_profile(&mood_models::PoiProfile::from_stays(&[], 200.0));
        assert_eq!(stats_prox(&anon, &empty, 5), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "top_k must be positive")]
    fn rejects_zero_top_k() {
        PitAttack::new(PoiExtractor::paper_default(), 0);
    }

    #[test]
    #[should_panic(expected = "background knowledge is empty")]
    fn train_rejects_empty_background() {
        PitAttack::paper_default().train(&Dataset::new());
    }
}
