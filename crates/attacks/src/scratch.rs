//! Per-worker scratch state for attack inference — the allocation-free
//! counterpart of [`crate::TrainedAttack::predict`].
//!
//! Candidate search scores every LPPM candidate against the full attack
//! suite (K × m inference calls per user), and each call re-derives the
//! same kind of per-trace features: a heatmap for AP-Attack, POI
//! clusters for POI-Attack, a Mobility Markov Chain for PIT-Attack.
//! [`AttackScratch`] owns one reusable buffer per feature so a worker
//! builds them in place instead of allocating per candidate, plus a
//! shared [`TraceRaster`] so a trace's grid cell-sequence is computed
//! once and reused by every grid-based consumer (AP-Attack today, HMC's
//! `protect_into` fast path upstream, future grid attacks).
//!
//! # Contract (for attack implementors)
//!
//! * **Per-worker exclusivity** — a scratch is handed `&mut` to exactly
//!   one worker at a time (the executor's worker-slot guarantee); it is
//!   never shared concurrently and needs no synchronization.
//! * **Determinism** — `reidentify_with` must return exactly what
//!   `re_identifies` would: the scratch may change *how* features are
//!   computed (buffer reuse, pruning with exact bounds, verified
//!   caches), never *what* they evaluate to. Every backend × thread
//!   count must stay byte-identical to the sequential reference.
//! * **No carry-over semantics** — contents are an optimization only; a
//!   fresh scratch must produce the same verdicts as a warm one.

use mood_models::{MarkovChain, PoiExtractor, PoiProfile, Stay, TraceRaster};
use mood_trace::{Record, Trace, UserId};

/// The pruned profile-matching scan shared by every native
/// `reidentify_with`: walks `profiles` — which **must** yield users in
/// ascending order (`BTreeMap` iteration, or a profile set's sorted
/// `users` slice) — scoring each via `score(profile, running_best)`, a
/// callback that may return `None` to signal "provably above the bound"
/// (exact pruning), and returns the winner.
///
/// **Verdict equivalence with `Prediction::from_scores`** (proven here
/// once, relied on by all three attacks): `from_scores` sorts by
/// `(distance, user)` and picks the first finite entry, i.e. the
/// minimal finite distance with ties broken by the smallest user. This
/// scan visits users in ascending order and replaces the best only on a
/// **strictly** smaller score, so an equal later score keeps the
/// earlier (smaller) user — the same tiebreak — and non-finite scores
/// are skipped just as `from_scores` never selects them. Pruned
/// profiles (`score` returned `None` under a bound) provably exceed the
/// running best, so they could never win. Keep the strict `<`: relaxing
/// it to `<=` silently breaks parity.
pub(crate) fn bounded_argmin<P>(
    profiles: impl IntoIterator<Item = (UserId, P)>,
    mut score: impl FnMut(P, Option<f64>) -> Option<f64>,
) -> Option<UserId> {
    let mut best: Option<(UserId, f64)> = None;
    for (user, profile) in profiles {
        if let Some(d) = score(profile, best.map(|(_, b)| b)) {
            if d.is_finite() && best.is_none_or(|(_, b)| d < b) {
                best = Some((user, d));
            }
        }
    }
    best.map(|(user, _)| user)
}

/// A one-entry **verified** `(extractor, trace) → POI profile` cache:
/// POI-Attack and PIT-Attack run back to back on the same trace with
/// the same paper-default extractor, and stay extraction — a distance
/// computation per record — dominates both. Like [`TraceRaster`], a hit
/// is only taken after comparing the stored trace records exactly
/// (plus the extractor parameters), so cached and fresh inference are
/// bit-identical; the comparison costs three `f64` equality checks per
/// record versus extraction's centroid/distance arithmetic.
#[derive(Default)]
pub(crate) struct ProfileCache {
    extractor: Option<PoiExtractor>,
    user: Option<UserId>,
    records: Vec<Record>,
    pub(crate) stays: Vec<Stay>,
    pub(crate) profile: PoiProfile,
    hits: u64,
    misses: u64,
}

impl ProfileCache {
    /// The POI profile of `trace` under `extractor`: served from the
    /// cached entry when it matches exactly, re-extracted into the
    /// reusable buffers otherwise.
    pub(crate) fn profile_for(&mut self, extractor: &PoiExtractor, trace: &Trace) -> &PoiProfile {
        if self.extractor.as_ref() == Some(extractor)
            && self.user == Some(trace.user())
            && self.records.as_slice() == trace.records()
        {
            self.hits += 1;
            return &self.profile;
        }
        self.misses += 1;
        self.extractor = Some(*extractor);
        self.user = Some(trace.user());
        self.records.clear();
        self.records.extend_from_slice(trace.records());
        extractor.extract_stays_into(trace, &mut self.stays);
        self.profile
            .rebuild_from_stays(&self.stays, extractor.diameter_m());
        &self.profile
    }
}

/// Reusable per-worker buffers for scratch-aware attack inference.
///
/// Constructed empty ([`AttackScratch::new`]) and warmed up by the first
/// inference call; engines recycle scratches across candidates, batches
/// and users via their scratch pools.
#[derive(Default)]
pub struct AttackScratch {
    /// Shared `(grid, trace) → cells` cache (exact, verified hits).
    pub(crate) raster: TraceRaster,
    /// AP-Attack's anonymous-trace heatmap buffer.
    pub(crate) heatmap: mood_models::Heatmap,
    /// Shared POI/PIT stay-extraction + profile cache.
    pub(crate) poi: ProfileCache,
    /// POI-Attack's profile-weight buffer.
    pub(crate) weights: Vec<f64>,
    /// PIT-Attack's Markov-chain buffer.
    pub(crate) chain: MarkovChain,
    /// Whether any inference ran on this scratch yet (the engine's
    /// `attack_scratch_reuses` observable counts warm starts).
    used: bool,
}

impl AttackScratch {
    /// A fresh, cold scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared rasterization cache, for callers that want to pre-warm
    /// it (e.g. an LPPM's `protect_into_with` rasterizing the same trace
    /// the suite scores next).
    pub fn raster_mut(&mut self) -> &mut TraceRaster {
        &mut self.raster
    }

    /// `true` once at least one inference call used this scratch — i.e.
    /// the next call starts from warmed-up buffers.
    pub fn is_warm(&self) -> bool {
        self.used
    }

    /// Marks the scratch as used (called by the suite after inference).
    pub(crate) fn mark_used(&mut self) {
        self.used = true;
    }

    /// Drains the rasterization-cache hit/miss counters for aggregation
    /// into shared metrics; returns `(hits, misses)`.
    pub fn take_raster_counters(&mut self) -> (u64, u64) {
        self.raster.take_counters()
    }

    /// POI-profile-cache hits so far (PIT reusing POI's extraction of
    /// the same trace, verified exactly).
    pub fn profile_cache_hits(&self) -> u64 {
        self.poi.hits
    }

    /// POI-profile-cache misses so far (fresh extractions).
    pub fn profile_cache_misses(&self) -> u64 {
        self.poi.misses
    }
}
