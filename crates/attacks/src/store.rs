//! A shared, verified training layer: one profile build per `(dataset,
//! model parameters)`, reused by every suite, tenant and engine template
//! that trains over the same background knowledge.
//!
//! Training is the other half of the verdict-path cost: every
//! [`crate::AttackSuite::train`] used to rebuild the same heatmaps, POI
//! profiles and Markov chains per attack and per suite — a second
//! suite/tenant over the same background paid the full training pass
//! again, and POI-Attack and PIT-Attack each re-extracted identical stay
//! clusters. [`ProfileStore`] interns trained profile *sets* behind
//! `Arc`s, keyed by the background dataset and the exact model
//! parameters, so a build happens once and every consumer shares it.
//!
//! # Exactness contract
//!
//! Like every cache on the verdict path ([`mood_models::TraceRaster`],
//! the scratch `ProfileCache`), hits are **verified**: the dataset key
//! is a fingerprint used only as a fast reject — a hit is taken only
//! after a full `Dataset` equality compare, so two different datasets
//! can never alias and store-trained suites are byte-identical to
//! independently trained ones (gated by tests below and the cold ≡ warm
//! determinism suite).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mood_geo::Grid;
use mood_models::{CentroidSoa, Heatmap, MarkovChain, PoiExtractor, PoiProfile};
use mood_trace::{Dataset, UserId};

/// Per-user AP-Attack heatmaps over one grid, in ascending-user order.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSet {
    grid: Grid,
    users: Vec<UserId>,
    heatmaps: Vec<Heatmap>,
}

impl HeatmapSet {
    /// Builds per-user heatmaps exactly as AP-Attack training always
    /// has: the background bounding box widened by 2 km (obfuscated
    /// traces wander outside the raw extent), one heatmap per user.
    pub fn build(background: &Dataset, cell_size_m: f64) -> Self {
        let bbox = background
            .bounding_box()
            .expect("non-empty dataset has a bounding box")
            .expanded(2_000.0)
            .expect("non-negative margin");
        let grid = Grid::new(bbox, cell_size_m).expect("validated cell size");
        let mut users = Vec::with_capacity(background.user_count());
        let mut heatmaps = Vec::with_capacity(background.user_count());
        for trace in background.iter() {
            users.push(trace.user());
            heatmaps.push(Heatmap::from_trace(&grid, trace));
        }
        Self {
            grid,
            users,
            heatmaps,
        }
    }

    /// The grid the heatmaps are binned over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Profiles in ascending-user order.
    pub fn heatmaps(&self) -> &[Heatmap] {
        &self.heatmaps
    }

    /// Users, ascending, parallel to [`HeatmapSet::heatmaps`].
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Number of profiled users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether no user is profiled.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// `(user, heatmap)` pairs in ascending-user order — the exact
    /// iteration order of the `BTreeMap` scans this set replaced.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &Heatmap)> + '_ {
        self.users.iter().copied().zip(self.heatmaps.iter())
    }
}

/// Per-user POI profiles plus the SoA centroid sidecars the verdict
/// kernels stream, in ascending-user order.
#[derive(Debug, Clone, PartialEq)]
pub struct PoiProfileSet {
    users: Vec<UserId>,
    profiles: Vec<PoiProfile>,
    centroids: Vec<CentroidSoa>,
}

impl PoiProfileSet {
    /// Extracts one POI profile per user, exactly as POI-Attack training
    /// always has, and splits each profile's centroids into SoA form.
    pub fn build(background: &Dataset, extractor: &PoiExtractor) -> Self {
        let mut users = Vec::with_capacity(background.user_count());
        let mut profiles = Vec::with_capacity(background.user_count());
        let mut centroids = Vec::with_capacity(background.user_count());
        for trace in background.iter() {
            let profile = extractor.extract_profile(trace);
            users.push(trace.user());
            centroids.push(CentroidSoa::from_pois(profile.pois()));
            profiles.push(profile);
        }
        Self {
            users,
            profiles,
            centroids,
        }
    }

    /// Profiles in ascending-user order.
    pub fn profiles(&self) -> &[PoiProfile] {
        &self.profiles
    }

    /// Users, ascending, parallel to [`PoiProfileSet::profiles`].
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Number of profiled users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether no user is profiled.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// `(user, profile, SoA centroids)` triples in ascending-user order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &PoiProfile, &CentroidSoa)> + '_ {
        self.users
            .iter()
            .copied()
            .zip(self.profiles.iter())
            .zip(self.centroids.iter())
            .map(|((u, p), c)| (u, p, c))
    }
}

/// Per-user Mobility Markov Chains plus SoA centroid sidecars (state
/// order), in ascending-user order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSet {
    users: Vec<UserId>,
    chains: Vec<MarkovChain>,
    centroids: Vec<CentroidSoa>,
}

impl ChainSet {
    /// Derives one Markov chain per user from already-extracted POI
    /// profiles — the chains are a pure function of the profiles, so
    /// deriving from a shared [`PoiProfileSet`] is byte-identical to
    /// PIT-Attack's original extract-then-chain training.
    pub fn derive(profiles: &PoiProfileSet) -> Self {
        let mut users = Vec::with_capacity(profiles.len());
        let mut chains = Vec::with_capacity(profiles.len());
        let mut centroids = Vec::with_capacity(profiles.len());
        for (user, profile, _) in profiles.iter() {
            let chain = MarkovChain::from_profile(profile);
            users.push(user);
            centroids.push(CentroidSoa::from_pois(chain.states()));
            chains.push(chain);
        }
        Self {
            users,
            chains,
            centroids,
        }
    }

    /// Chains in ascending-user order.
    pub fn chains(&self) -> &[MarkovChain] {
        &self.chains
    }

    /// Users, ascending, parallel to [`ChainSet::chains`].
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Number of profiled users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether no user is profiled.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// `(user, chain, SoA state centroids)` triples in ascending-user
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &MarkovChain, &CentroidSoa)> + '_ {
        self.users
            .iter()
            .copied()
            .zip(self.chains.iter())
            .zip(self.centroids.iter())
            .map(|((u, ch), c)| (u, ch, c))
    }
}

/// Counters of a [`ProfileStore`]'s activity, for engine observables
/// and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Profile-set requests served from an interned entry.
    pub hits: u64,
    /// Profile-set requests that had to build.
    pub misses: u64,
    /// Individual per-user profiles built (heatmaps + POI profiles +
    /// chains). Flat across a warm retrain — the "second tenant trains
    /// for free" guarantee.
    pub profile_builds: u64,
}

/// Interned, `Arc`-shared trained profile sets keyed by `(background
/// dataset, model parameters)` — hits verified by full dataset compare.
///
/// # Examples
///
/// ```
/// use mood_attacks::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack, ProfileStore};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (train, _) = ds.split_chronological(TimeDelta::from_days(15));
/// let (poi, pit, ap) = (
///     PoiAttack::paper_default(),
///     PitAttack::paper_default(),
///     ApAttack::paper_default(),
/// );
/// let attacks: Vec<&dyn Attack> = vec![&poi, &pit, &ap];
/// let store = ProfileStore::new();
/// let first = AttackSuite::train_with_store(&attacks, &train, &store);
/// let built = store.counters().profile_builds;
/// let second = AttackSuite::train_with_store(&attacks, &train, &store);
/// // the second tenant shares every profile — zero additional builds
/// assert_eq!(store.counters().profile_builds, built);
/// assert_eq!(first.len(), second.len());
/// ```
#[derive(Default)]
pub struct ProfileStore {
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    profile_builds: AtomicU64,
}

#[derive(Default)]
struct StoreInner {
    /// Interned datasets: `(fingerprint, full copy)`. The fingerprint is
    /// a fast reject only; interning compares the full dataset.
    datasets: Vec<(u64, Arc<Dataset>)>,
    /// `(dataset index, cell size bits) → heatmaps`.
    heatmaps: Vec<(usize, u64, Arc<HeatmapSet>)>,
    /// `(dataset index, extractor) → POI profiles`.
    pois: Vec<(usize, PoiExtractor, Arc<PoiProfileSet>)>,
    /// `(dataset index, extractor) → Markov chains`.
    chains: Vec<(usize, PoiExtractor, Arc<ChainSet>)>,
}

impl StoreInner {
    /// Index of `background` in the interned list, adding it when new.
    /// A fingerprint match alone is never trusted: the stored dataset
    /// must compare equal record-for-record.
    fn dataset_index(&mut self, background: &Dataset) -> usize {
        let fp = dataset_fingerprint(background);
        for (i, (stored_fp, stored)) in self.datasets.iter().enumerate() {
            if *stored_fp == fp && **stored == *background {
                return i;
            }
        }
        self.datasets.push((fp, Arc::new(background.clone())));
        self.datasets.len() - 1
    }
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-user heatmap set for `(background, cell_size_m)`: shared
    /// when already built, built exactly once otherwise.
    pub fn heatmaps(&self, background: &Dataset, cell_size_m: f64) -> Arc<HeatmapSet> {
        let mut inner = self.inner.lock().expect("profile store lock");
        let ds = inner.dataset_index(background);
        let key = cell_size_m.to_bits();
        if let Some((_, _, set)) = inner
            .heatmaps
            .iter()
            .find(|(d, k, _)| *d == ds && *k == key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(set);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(HeatmapSet::build(background, cell_size_m));
        self.profile_builds
            .fetch_add(set.len() as u64, Ordering::Relaxed);
        inner.heatmaps.push((ds, key, Arc::clone(&set)));
        set
    }

    /// The per-user POI profile set for `(background, extractor)`:
    /// shared when already built, built exactly once otherwise.
    pub fn poi_profiles(
        &self,
        background: &Dataset,
        extractor: &PoiExtractor,
    ) -> Arc<PoiProfileSet> {
        let mut inner = self.inner.lock().expect("profile store lock");
        let ds = inner.dataset_index(background);
        self.poi_profiles_locked(&mut inner, ds, background, extractor)
    }

    fn poi_profiles_locked(
        &self,
        inner: &mut StoreInner,
        ds: usize,
        background: &Dataset,
        extractor: &PoiExtractor,
    ) -> Arc<PoiProfileSet> {
        if let Some((_, _, set)) = inner
            .pois
            .iter()
            .find(|(d, e, _)| *d == ds && e == extractor)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(set);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(PoiProfileSet::build(background, extractor));
        self.profile_builds
            .fetch_add(set.len() as u64, Ordering::Relaxed);
        inner.pois.push((ds, *extractor, Arc::clone(&set)));
        set
    }

    /// The per-user Markov chain set for `(background, extractor)`:
    /// shared when already built, otherwise derived from the (also
    /// shared) POI profile set — so a POI + PIT suite extracts stays
    /// once, not twice.
    pub fn markov_chains(&self, background: &Dataset, extractor: &PoiExtractor) -> Arc<ChainSet> {
        let mut inner = self.inner.lock().expect("profile store lock");
        let ds = inner.dataset_index(background);
        if let Some((_, _, set)) = inner
            .chains
            .iter()
            .find(|(d, e, _)| *d == ds && e == extractor)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(set);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let profiles = self.poi_profiles_locked(&mut inner, ds, background, extractor);
        let set = Arc::new(ChainSet::derive(&profiles));
        self.profile_builds
            .fetch_add(set.len() as u64, Ordering::Relaxed);
        inner.chains.push((ds, *extractor, Arc::clone(&set)));
        set
    }

    /// A snapshot of the hit/miss/build counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            profile_builds: self.profile_builds.load(Ordering::Relaxed),
        }
    }
}

/// Order-sensitive 64-bit fingerprint of a dataset's full content
/// (users, record coordinates and timestamps, bit-exact) — a fast
/// reject for dataset interning, never trusted without the full
/// compare.
fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut h = 0x4d6f_6f44_5374_6f72 ^ dataset.record_count() as u64; // "MooDStor"
    for trace in dataset.iter() {
        h = mix64(h ^ trace.user().as_u64());
        for record in trace.records() {
            h = mix64(h ^ record.point().lat().to_bits());
            h = mix64(h ^ record.point().lng().to_bits());
            h = mix64(h ^ record.time().as_unix() as u64);
        }
    }
    h
}

/// SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack};
    use mood_synth::presets;
    use mood_trace::TimeDelta;

    fn worlds() -> (Dataset, Dataset) {
        presets::privamov_like()
            .scaled(0.15)
            .generate()
            .split_chronological(TimeDelta::from_days(15))
    }

    fn paper_attacks() -> (PoiAttack, PitAttack, ApAttack) {
        (
            PoiAttack::paper_default(),
            PitAttack::paper_default(),
            ApAttack::paper_default(),
        )
    }

    /// Store-built profile sets must be byte-identical (serialized) to
    /// profiles built directly with the primitive model constructors —
    /// the serialization half of the cold ≡ warm gate.
    #[test]
    fn store_profiles_serialize_identically_to_direct_builds() {
        let (bg, _) = worlds();
        let store = ProfileStore::new();
        let extractor = PoiExtractor::paper_default();

        // Warm the store twice: the SECOND fetch (a verified hit) is
        // the one that must still match the direct build.
        for _ in 0..2 {
            let hm = store.heatmaps(&bg, 800.0);
            let direct: Vec<Heatmap> = bg
                .iter()
                .map(|t| Heatmap::from_trace(hm.grid(), t))
                .collect();
            assert_eq!(
                serde_json::to_string(hm.heatmaps()).unwrap(),
                serde_json::to_string(&direct).unwrap(),
            );

            let pois = store.poi_profiles(&bg, &extractor);
            let direct: Vec<PoiProfile> = bg.iter().map(|t| extractor.extract_profile(t)).collect();
            assert_eq!(
                serde_json::to_string(pois.profiles()).unwrap(),
                serde_json::to_string(&direct).unwrap(),
            );

            let chains = store.markov_chains(&bg, &extractor);
            let direct: Vec<MarkovChain> = bg
                .iter()
                .map(|t| MarkovChain::from_profile(&extractor.extract_profile(t)))
                .collect();
            assert_eq!(
                serde_json::to_string(chains.chains()).unwrap(),
                serde_json::to_string(&direct).unwrap(),
            );
        }
        // heatmaps: 1 miss + 1 hit; pois: 1 miss + 1 hit; chains: 1
        // miss (profiles reused: +1 poi hit) + 1 hit.
        let c = store.counters();
        assert_eq!(c.misses, 3);
        assert_eq!(c.hits, 4);
    }

    /// The headline guarantee: a second suite/tenant over the same
    /// dataset performs **zero** additional profile builds, and its
    /// verdicts are identical to a cold, storeless suite's.
    #[test]
    fn second_tenant_trains_for_free_and_verdicts_match_cold_training() {
        let (bg, test) = worlds();
        let (poi, pit, ap) = paper_attacks();
        let attacks: Vec<&dyn Attack> = vec![&poi, &pit, &ap];

        let cold = AttackSuite::train(&attacks, &bg);

        let store = ProfileStore::new();
        let first = AttackSuite::train_with_store(&attacks, &bg, &store);
        let after_first = store.counters();
        assert!(after_first.profile_builds > 0);
        // POI and PIT share one POI-profile extraction pass even within
        // the first suite.
        assert!(after_first.hits >= 1, "PIT did not reuse POI's profiles");

        let second = AttackSuite::train_with_store(&attacks, &bg, &store);
        let after_second = store.counters();
        assert_eq!(
            after_second.profile_builds, after_first.profile_builds,
            "second tenant rebuilt profiles"
        );
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);

        // Verdict byte-identity across all three training paths.
        let reference = cold.evaluate(&test);
        assert_eq!(first.evaluate(&test), reference);
        assert_eq!(second.evaluate(&test), reference);
        for trace in test.iter() {
            assert_eq!(
                second.first_reidentifying(trace, trace.user()),
                cold.first_reidentifying(trace, trace.user()),
            );
        }
    }

    /// A different dataset must never alias an interned one, even
    /// though interning starts from a fingerprint.
    #[test]
    fn different_datasets_never_share_entries() {
        let (bg, _) = worlds();
        let mut other_spec = presets::privamov_like().scaled(0.15);
        other_spec.seed ^= 0x777;
        let other = other_spec
            .generate()
            .split_chronological(TimeDelta::from_days(15))
            .0;
        assert_ne!(bg, other);
        let store = ProfileStore::new();
        let a = store.heatmaps(&bg, 800.0);
        let b = store.heatmaps(&other, 800.0);
        assert_eq!(store.counters().misses, 2);
        assert_eq!(store.counters().hits, 0);
        assert!(!Arc::ptr_eq(&a, &b));
    }

    /// Different model parameters over the same dataset are distinct
    /// entries; the dataset itself is interned once.
    #[test]
    fn distinct_parameters_are_distinct_entries() {
        let (bg, _) = worlds();
        let store = ProfileStore::new();
        let a = store.heatmaps(&bg, 800.0);
        let b = store.heatmaps(&bg, 400.0);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.grid(), b.grid());
        let e1 = PoiExtractor::paper_default();
        let e2 = PoiExtractor::new(100.0, TimeDelta::from_hours(1));
        assert!(!Arc::ptr_eq(
            &store.poi_profiles(&bg, &e1),
            &store.poi_profiles(&bg, &e2)
        ));
        assert_eq!(store.counters().hits, 0);
    }
}
