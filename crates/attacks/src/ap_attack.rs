use std::sync::Arc;

use mood_models::Heatmap;
use mood_trace::{Dataset, Trace, UserId};

use crate::{Attack, AttackScratch, HeatmapSet, Prediction, ProfileStore, TrainedAttack};

/// AP-Attack (Maouche et al. 2017, the paper's \[22\]): heatmap profiles
/// over a uniform grid, compared with the Topsoe divergence.
///
/// The paper calls AP-Attack "the most powerful attack currently known"
/// and uses it alone in the single-attack experiment (Fig. 6). Its one
/// parameter is the grid cell size, 800 m by default (§4.1.1).
///
/// # Examples
///
/// ```
/// use mood_attacks::{ApAttack, Attack, TrainedAttack};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let trained = ApAttack::paper_default().train(&train);
/// let victim = test.iter().next().unwrap();
/// let prediction = trained.predict(victim);
/// assert!(!prediction.scores.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApAttack {
    cell_size_m: f64,
}

impl ApAttack {
    /// Creates an AP-Attack with the given heatmap cell size.
    ///
    /// # Panics
    ///
    /// Panics when `cell_size_m` is not strictly positive and finite.
    pub fn new(cell_size_m: f64) -> Self {
        assert!(
            cell_size_m.is_finite() && cell_size_m > 0.0,
            "cell size must be positive"
        );
        Self { cell_size_m }
    }

    /// The paper's configuration: 800 m cells.
    pub fn paper_default() -> Self {
        Self::new(800.0)
    }

    /// Configured cell size in meters.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_size_m
    }
}

impl Attack for ApAttack {
    fn name(&self) -> &'static str {
        "AP-Attack"
    }

    fn train(&self, background: &Dataset) -> Box<dyn TrainedAttack> {
        assert!(!background.is_empty(), "background knowledge is empty");
        // One-shot build of the same set a ProfileStore would intern
        // (grid widened 2 km so obfuscated traces land in real cells
        // instead of piling up on the border — see `HeatmapSet::build`).
        Box::new(TrainedApAttack {
            profiles: Arc::new(HeatmapSet::build(background, self.cell_size_m)),
        })
    }

    fn train_with(&self, background: &Dataset, store: &ProfileStore) -> Box<dyn TrainedAttack> {
        assert!(!background.is_empty(), "background knowledge is empty");
        Box::new(TrainedApAttack {
            profiles: store.heatmaps(background, self.cell_size_m),
        })
    }
}

struct TrainedApAttack {
    profiles: Arc<HeatmapSet>,
}

impl TrainedAttack for TrainedApAttack {
    fn name(&self) -> &'static str {
        "AP-Attack"
    }

    fn predict(&self, trace: &Trace) -> Prediction {
        let anon = Heatmap::from_trace(self.profiles.grid(), trace);
        if anon.is_empty() {
            return Prediction::none();
        }
        let scores: Vec<(UserId, f64)> = self
            .profiles
            .iter()
            .map(|(user, profile)| {
                let d = anon.topsoe(profile).unwrap_or(f64::INFINITY);
                (user, d)
            })
            .collect();
        Prediction::from_scores(scores)
    }

    /// Scratch path: the cell-sequence comes from the shared raster
    /// cache, the heatmap is rebuilt into the worker's buffer, and
    /// profile matching prunes with the running best Topsoe score
    /// (Topsoe partial sums are monotone — see
    /// `divergence::topsoe_sorted_bounded` — so exceeding the running
    /// best proves the full score would too; verdict equivalence with
    /// `predict` is [`crate::scratch::bounded_argmin`]'s contract).
    fn reidentify_with(
        &self,
        trace: &Trace,
        true_user: UserId,
        scratch: &mut AttackScratch,
    ) -> bool {
        let AttackScratch {
            raster, heatmap, ..
        } = scratch;
        let cells = raster.cells(self.profiles.grid(), trace);
        heatmap.rebuild_from_cells(cells);
        if heatmap.is_empty() {
            return false; // predict abstains
        }
        let winner = crate::scratch::bounded_argmin(self.profiles.iter(), |profile, bound| {
            heatmap.topsoe_bounded(profile, bound.unwrap_or(f64::INFINITY))
        });
        winner == Some(true_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_geo::GeoPoint;
    use mood_trace::{Record, TimeDelta, Timestamp};

    fn rec(lat: f64, lng: f64, t: i64) -> Record {
        Record::new(GeoPoint::new(lat, lng).unwrap(), Timestamp::from_unix(t))
    }

    /// Background with two users in clearly different neighbourhoods.
    fn two_user_background() -> Dataset {
        let a: Vec<Record> = (0..50).map(|i| rec(46.16, 6.06, i * 600)).collect();
        let b: Vec<Record> = (0..50).map(|i| rec(46.25, 6.20, i * 600)).collect();
        Dataset::from_traces([
            Trace::new(UserId::new(1), a).unwrap(),
            Trace::new(UserId::new(2), b).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn matches_user_by_neighbourhood() {
        let trained = ApAttack::paper_default().train(&two_user_background());
        let anon = Trace::new(
            UserId::new(99),
            (0..20)
                .map(|i| rec(46.161, 6.061, 100_000 + i * 600))
                .collect(),
        )
        .unwrap();
        let p = trained.predict(&anon);
        assert_eq!(p.predicted, Some(UserId::new(1)));
        // margin should be decisive (disjoint neighbourhoods)
        assert!(p.margin().unwrap() > 0.5);
    }

    #[test]
    fn re_identifies_helper_checks_ground_truth() {
        let trained = ApAttack::paper_default().train(&two_user_background());
        let anon = Trace::new(
            UserId::new(2),
            (0..20)
                .map(|i| rec(46.251, 6.201, 100_000 + i * 600))
                .collect(),
        )
        .unwrap();
        assert!(trained.re_identifies(&anon, UserId::new(2)));
        assert!(!trained.re_identifies(&anon, UserId::new(1)));
    }

    #[test]
    #[should_panic(expected = "background knowledge is empty")]
    fn train_rejects_empty_background() {
        ApAttack::paper_default().train(&Dataset::new());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn rejects_bad_cell_size() {
        ApAttack::new(0.0);
    }

    #[test]
    fn scores_cover_every_candidate() {
        let trained = ApAttack::paper_default().train(&two_user_background());
        let anon = Trace::new(
            UserId::new(99),
            vec![rec(46.2, 6.1, 0), rec(46.2, 6.1, 600)],
        )
        .unwrap();
        assert_eq!(trained.predict(&anon).scores.len(), 2);
    }

    #[test]
    fn works_on_synthetic_residents() {
        use mood_synth::presets;
        let ds = presets::privamov_like().scaled(0.2).generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let trained = ApAttack::paper_default().train(&train);
        // distinct users (low ids) should mostly be re-identified
        let mut hits = 0;
        let mut total = 0;
        for trace in test.iter().take(5) {
            total += 1;
            if trained.re_identifies(trace, trace.user()) {
                hits += 1;
            }
        }
        assert!(hits * 2 >= total, "AP re-identified only {hits}/{total}");
    }
}
