//! Micro-benchmarks of the building blocks: geodesy, profile models,
//! attacks and LPPMs. These are the inner loops of every experiment, so
//! regressions here multiply into the figure-generation times.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::{ApAttack, Attack, PitAttack, PoiAttack};
use mood_geo::{GeoPoint, Grid};
use mood_lppm::{GeoI, Hmc, Lppm, Trl};
use mood_metrics::spatio_temporal_distortion;
use mood_models::{Heatmap, PoiExtractor};
use mood_synth::presets;
use mood_trace::{Dataset, TimeDelta, Trace};

fn world() -> (Dataset, Dataset) {
    let ds = presets::privamov_like().scaled(0.2).generate();
    ds.split_chronological(TimeDelta::from_days(15))
}

fn bench_geo(c: &mut Criterion) {
    let a = GeoPoint::new(45.76, 4.83).unwrap();
    let b = GeoPoint::new(45.78, 4.88).unwrap();
    c.bench_function("geo_haversine", |bench| {
        bench.iter(|| std::hint::black_box(a.haversine_distance(&b)))
    });
    c.bench_function("geo_approx_distance", |bench| {
        bench.iter(|| std::hint::black_box(a.approx_distance(&b)))
    });
    let grid = Grid::new(
        mood_geo::BoundingBox::new(45.70, 45.81, 4.78, 4.93).unwrap(),
        800.0,
    )
    .unwrap();
    c.bench_function("grid_cell_of", |bench| {
        bench.iter(|| std::hint::black_box(grid.cell_of(&a)))
    });
}

fn bench_models(c: &mut Criterion) {
    let (train, _) = world();
    let trace: &Trace = train.iter().next().unwrap();
    let grid = Grid::new(train.bounding_box().unwrap(), 800.0).unwrap();
    c.bench_function("poi_extraction_per_trace", |b| {
        let extractor = PoiExtractor::paper_default();
        b.iter(|| std::hint::black_box(extractor.extract_profile(trace)))
    });
    c.bench_function("heatmap_build_per_trace", |b| {
        b.iter(|| std::hint::black_box(Heatmap::from_trace(&grid, trace)))
    });
    let hm1 = Heatmap::from_trace(&grid, trace);
    let hm2 = Heatmap::from_trace(&grid, train.iter().nth(1).unwrap());
    c.bench_function("heatmap_topsoe", |b| {
        b.iter(|| std::hint::black_box(hm1.topsoe(&hm2)))
    });
}

fn bench_attacks(c: &mut Criterion) {
    let (train, test) = world();
    let victim = test.iter().next().unwrap();
    let ap = ApAttack::paper_default().train(&train);
    let poi = PoiAttack::paper_default().train(&train);
    let pit = PitAttack::paper_default().train(&train);
    c.bench_function("ap_attack_predict", |b| {
        b.iter(|| std::hint::black_box(ap.predict(victim)))
    });
    c.bench_function("poi_attack_predict", |b| {
        b.iter(|| std::hint::black_box(poi.predict(victim)))
    });
    c.bench_function("pit_attack_predict", |b| {
        b.iter(|| std::hint::black_box(pit.predict(victim)))
    });
}

fn bench_lppms(c: &mut Criterion) {
    let (train, test) = world();
    let victim = test.iter().next().unwrap();
    let geoi = GeoI::paper_default();
    let trl = Trl::paper_default();
    let hmc = Hmc::paper_default(&train);
    c.bench_function("geoi_protect_per_trace", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(geoi.protect(victim, &mut rng))
        })
    });
    c.bench_function("trl_protect_per_trace", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(trl.protect(victim, &mut rng))
        })
    });
    c.bench_function("hmc_protect_per_trace", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(hmc.protect(victim, &mut rng))
        })
    });
    let mut rng = StdRng::seed_from_u64(2);
    let protected = geoi.protect(victim, &mut rng);
    c.bench_function("std_metric_per_trace", |b| {
        b.iter(|| std::hint::black_box(spatio_temporal_distortion(victim, &protected)))
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_geo, bench_models, bench_attacks, bench_lppms
}
criterion_main!(components);
