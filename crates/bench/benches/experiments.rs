//! Criterion benches, one per paper table/figure: each measures the
//! wall-clock cost of regenerating the corresponding result on a
//! scaled-down workload (the full-scale numbers come from the `exp_*`
//! binaries; these benches track the *performance* of the pipeline).

use criterion::{criterion_group, criterion_main, Criterion};

use mood_bench::{run_figures, run_mood, Adversary, ExperimentContext};
use mood_synth::presets;
use mood_trace::TimeDelta;

/// Shared scaled-down context (privamov-like at 15 %) so each bench body
/// exercises the real pipeline end to end.
fn ctx() -> ExperimentContext {
    ExperimentContext::load(&presets::privamov_like(), 0.15)
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_dataset_generation", |b| {
        let spec = presets::mdc_like().scaled(0.1);
        b.iter(|| {
            let ds = spec.generate();
            std::hint::black_box(ds.split_chronological(TimeDelta::from_days(15)))
        });
    });
}

fn bench_fig2_3(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig2_nonprotected_users", |b| {
        // single-LPPM protect + multi-attack evaluation (the Fig.2/3 body)
        b.iter(|| {
            for lppm in ctx.lppms() {
                let protected = ctx.protect_all(lppm.as_ref());
                std::hint::black_box(ctx.suite_all.evaluate(&protected));
            }
        });
    });
}

fn bench_fig6(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig6_single_attack", |b| {
        b.iter(|| std::hint::black_box(run_figures(&ctx, Adversary::ApOnly, 1)));
    });
}

fn bench_fig7(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig7_multi_attack", |b| {
        b.iter(|| std::hint::black_box(run_figures(&ctx, Adversary::All, 1)));
    });
}

fn bench_fig8(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig8_fine_grained", |b| {
        // the fine-grained stats fall out of the MooD run
        b.iter(|| {
            let report = run_mood(&ctx, Adversary::All, 1);
            std::hint::black_box(report.fine_grained_stats())
        });
    });
}

fn bench_fig9(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig9_utility_bands", |b| {
        b.iter(|| {
            let report = run_mood(&ctx, Adversary::All, 1);
            std::hint::black_box(report.distortion_bands())
        });
    });
}

fn bench_fig10(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig10_data_loss", |b| {
        b.iter(|| {
            let report = run_mood(&ctx, Adversary::All, 1);
            std::hint::black_box(report.data_loss)
        });
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig2_3, bench_fig6, bench_fig7, bench_fig8, bench_fig9, bench_fig10
}
criterion_main!(experiments);
