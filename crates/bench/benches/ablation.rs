//! Ablation benches: the cost of MooD's design choices (composition
//! depth, recursion floor δ) — the time side of the `exp_ablation`
//! binary's quality tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mood_bench::ExperimentContext;
use mood_core::{protect_dataset, MoodConfig, MoodEngine};
use mood_synth::presets;
use mood_trace::TimeDelta;

fn ctx() -> ExperimentContext {
    ExperimentContext::load(&presets::privamov_like(), 0.15)
}

fn bench_composition_depth(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("mood_composition_depth");
    group.sample_size(10);
    for cap in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let mut config = MoodConfig::paper_default();
            config.max_composition_len = cap;
            let engine = MoodEngine::new(ctx.suite_all.clone(), ctx.lppms().to_vec(), config);
            b.iter(|| std::hint::black_box(protect_dataset(&engine, &ctx.test, 1)));
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let ctx = ctx();
    let mut group = c.benchmark_group("mood_delta_floor");
    group.sample_size(10);
    for hours in [2i64, 4, 8] {
        group.bench_with_input(BenchmarkId::new("delta_h", hours), &hours, |b, &hours| {
            let mut config = MoodConfig::paper_default();
            config.delta = TimeDelta::from_hours(hours);
            let engine = MoodEngine::new(ctx.suite_all.clone(), ctx.lppms().to_vec(), config);
            b.iter(|| std::hint::black_box(protect_dataset(&engine, &ctx.test, 1)));
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_composition_depth, bench_delta);
criterion_main!(ablation);
