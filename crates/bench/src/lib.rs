//! Experiment harness reproducing every table and figure of the MooD
//! paper's evaluation (§4).
//!
//! Each `exp_*` binary regenerates one table or figure; this library
//! holds the shared machinery:
//!
//! * [`ExperimentContext`] — dataset generation, the 15/15-day
//!   chronological split, trained attack suites and the MooD engine;
//! * [`run_figures`] — the full per-dataset evaluation: every mechanism
//!   bar (no-LPPM, Geo-I, TRL, HMC, HybridLPPM, MooD) with non-protected
//!   user counts, data loss, and distortion bands;
//! * serializable result rows for EXPERIMENTS.md.
//!
//! Experiments accept a `scale` factor (1.0 = paper-scale synthetic
//! datasets; smaller for quick runs and CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mood_attacks::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack, ProfileStore};
use mood_core::{
    protect_dataset, EngineBuilder, HybridLppm, MoodConfig, MoodEngine, ProtectionReport,
};
use mood_lppm::{GeoI, Hmc, Lppm, Trl};
use mood_metrics::{spatio_temporal_distortion, DistortionBand};
use mood_synth::DatasetSpec;
use mood_trace::{Dataset, TimeDelta, Trace, UserId};

/// Which adversary the experiment simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Adversary {
    /// AP-Attack only (the paper's Fig. 6: "the most powerful attack").
    ApOnly,
    /// All three attacks at once (Fig. 7; a user is non-protected when
    /// at least one attack re-identifies them).
    All,
}

/// Everything one dataset's experiments need, built once.
pub struct ExperimentContext {
    /// The dataset spec that generated this context.
    pub spec: DatasetSpec,
    /// Background knowledge (first 15 days).
    pub train: Dataset,
    /// The data to protect and attack (last 15 days).
    pub test: Dataset,
    /// Suite with all three attacks.
    pub suite_all: Arc<AttackSuite>,
    /// Suite with AP-Attack only.
    pub suite_ap: Arc<AttackSuite>,
    /// The profile store both suites trained through: the AP-only suite
    /// reuses the all-attacks suite's heatmaps instead of rebuilding
    /// them, and every engine built from this context shares the one
    /// set of trained profiles.
    pub store: Arc<ProfileStore>,
    base_lppms: Arc<[Arc<dyn Lppm>]>,
}

impl ExperimentContext {
    /// Generates the dataset at `scale`, splits it chronologically and
    /// trains both attack suites through one shared [`ProfileStore`]
    /// (profiles built once, shared by handle).
    pub fn load(spec: &DatasetSpec, scale: f64) -> Self {
        let spec = if scale < 1.0 {
            spec.scaled(scale)
        } else {
            spec.clone()
        };
        let ds = spec.generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        let store = Arc::new(ProfileStore::new());
        let suite_all = Arc::new(AttackSuite::train_with_store(
            &[
                &PoiAttack::paper_default() as &dyn Attack,
                &PitAttack::paper_default(),
                &ApAttack::paper_default(),
            ],
            &train,
            &store,
        ));
        let suite_ap = Arc::new(AttackSuite::train_with_store(
            &[&ApAttack::paper_default() as &dyn Attack],
            &train,
            &store,
        ));
        let base_lppms: Arc<[Arc<dyn Lppm>]> = Arc::from([
            Arc::new(GeoI::paper_default()) as Arc<dyn Lppm>,
            Arc::new(Trl::paper_default()),
            Arc::new(Hmc::paper_default(&train)),
        ]);
        Self {
            spec,
            train,
            test,
            suite_all,
            suite_ap,
            store,
            base_lppms,
        }
    }

    /// The paper's base LPPM set `[Geo-I, TRL, HMC]` for this context.
    pub fn lppms(&self) -> &[Arc<dyn Lppm>] {
        &self.base_lppms
    }

    /// A MooD engine against the chosen adversary. The LPPM set is
    /// shared by handle — building engines for every adversary ×
    /// config combination never copies the mechanisms.
    pub fn engine(&self, adversary: Adversary) -> MoodEngine {
        let suite = match adversary {
            Adversary::ApOnly => self.suite_ap.clone(),
            Adversary::All => self.suite_all.clone(),
        };
        EngineBuilder::new(suite)
            .lppms_shared(Arc::clone(&self.base_lppms))
            .config(MoodConfig::paper_default())
            .profile_store(Arc::clone(&self.store))
            .build()
            .expect("paper defaults are valid")
    }

    /// The suite for the chosen adversary.
    pub fn suite(&self, adversary: Adversary) -> &AttackSuite {
        match adversary {
            Adversary::ApOnly => &self.suite_ap,
            Adversary::All => &self.suite_all,
        }
    }

    /// Applies `lppm` to every test trace with a deterministic per-user
    /// RNG and returns the protected dataset (original user IDs kept as
    /// ground truth).
    pub fn protect_all(&self, lppm: &dyn Lppm) -> Dataset {
        let traces: Vec<Trace> = self
            .test
            .iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(
                    0xBE11 ^ t.user().as_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                lppm.protect(t, &mut rng)
            })
            .collect();
        Dataset::from_traces(traces).expect("user ids preserved")
    }
}

/// Result of evaluating one mechanism bar on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismOutcome {
    /// Mechanism label ("no-LPPM", "Geo-I", "TRL", "HMC", "HybridLPPM",
    /// "MooD").
    pub mechanism: String,
    /// Users re-identified by the adversary (the figure bars).
    pub non_protected_users: usize,
    /// Data loss (Eq. 7) in percent — records of non-protected users
    /// (for MooD: records erased by fine-grained protection).
    pub data_loss_percent: f64,
    /// Distortion-band counts over protected users (Fig. 9); empty for
    /// the no-LPPM bar.
    pub bands: BTreeMap<String, usize>,
    /// Number of users with a distortion entry (band denominators).
    pub protected_users: usize,
}

/// All figure series for one dataset under one adversary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetFigures {
    /// Dataset name.
    pub dataset: String,
    /// Adversary used.
    pub adversary: Adversary,
    /// Users in the test split.
    pub users: usize,
    /// Records in the test split.
    pub records: usize,
    /// One outcome per mechanism, in the paper's bar order.
    pub mechanisms: Vec<MechanismOutcome>,
    /// Fine-grained per-user stats for the users MooD's composition
    /// search could not protect (Fig. 8).
    pub fine_grained: Vec<FineGrainedRow>,
}

/// One Fig. 8 bar: sub-trace protection for a residual user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineGrainedRow {
    /// The residual user.
    pub user: UserId,
    /// Sub-traces examined.
    pub sub_traces_total: usize,
    /// Sub-traces protected by the composition search.
    pub sub_traces_protected: usize,
    /// Percentage protected.
    pub protected_percent: f64,
}

impl DatasetFigures {
    /// The outcome row for `mechanism`, if present.
    pub fn mechanism(&self, mechanism: &str) -> Option<&MechanismOutcome> {
        self.mechanisms.iter().find(|m| m.mechanism == mechanism)
    }
}

fn band_counts(distortions: &[f64]) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for b in DistortionBand::all() {
        out.insert(format!("{b:?}"), 0);
    }
    for &d in distortions {
        *out.entry(format!("{:?}", DistortionBand::classify(d)))
            .or_insert(0) += 1;
    }
    out
}

/// Runs the complete per-dataset evaluation: every mechanism bar of
/// Figs. 2/3/6/7/9/10 plus the Fig. 8 fine-grained rows, under the given
/// adversary.
///
/// `threads` parallelizes MooD's per-user protection.
pub fn run_figures(
    ctx: &ExperimentContext,
    adversary: Adversary,
    threads: usize,
) -> DatasetFigures {
    let suite = ctx.suite(adversary);
    let mut mechanisms = Vec::new();

    // --- no-LPPM bar ---
    let eval = suite.evaluate(&ctx.test);
    mechanisms.push(MechanismOutcome {
        mechanism: "no-LPPM".into(),
        non_protected_users: eval.non_protected_count(),
        data_loss_percent: eval.data_loss_ratio() * 100.0,
        bands: BTreeMap::new(),
        protected_users: 0,
    });

    // --- single LPPM bars ---
    for lppm in ctx.lppms() {
        let protected = ctx.protect_all(lppm.as_ref());
        let eval = suite.evaluate(&protected);
        let non_protected: std::collections::BTreeSet<UserId> =
            eval.non_protected_users.iter().copied().collect();
        // data loss counts ORIGINAL records of non-protected users
        let lost: usize = ctx
            .test
            .iter()
            .filter(|t| non_protected.contains(&t.user()))
            .map(Trace::len)
            .sum();
        let distortions: Vec<f64> = ctx
            .test
            .iter()
            .filter(|t| !non_protected.contains(&t.user()))
            .map(|t| {
                let p = protected.get(t.user()).expect("same users");
                spatio_temporal_distortion(t, p)
            })
            .collect();
        mechanisms.push(MechanismOutcome {
            mechanism: lppm.name().to_string(),
            non_protected_users: eval.non_protected_count(),
            data_loss_percent: lost as f64 / ctx.test.record_count() as f64 * 100.0,
            protected_users: distortions.len(),
            bands: band_counts(&distortions),
        });
    }

    // --- HybridLPPM bar ---
    let engine = ctx.engine(adversary);
    let hybrid = HybridLppm::paper_default(&engine);
    let mut hybrid_lost = 0usize;
    let mut hybrid_unprotected = 0usize;
    let mut hybrid_distortions = Vec::new();
    for trace in ctx.test.iter() {
        match hybrid.protect_user(trace, suite) {
            Some(p) => hybrid_distortions.push(p.distortion_m),
            None => {
                hybrid_unprotected += 1;
                hybrid_lost += trace.len();
            }
        }
    }
    mechanisms.push(MechanismOutcome {
        mechanism: "HybridLPPM".into(),
        non_protected_users: hybrid_unprotected,
        data_loss_percent: hybrid_lost as f64 / ctx.test.record_count() as f64 * 100.0,
        protected_users: hybrid_distortions.len(),
        bands: band_counts(&hybrid_distortions),
    });

    // --- MooD bar ---
    let report = protect_dataset(&engine, &ctx.test, threads);
    let distortions: Vec<f64> = report.distortions.iter().map(|d| d.distortion_m).collect();
    mechanisms.push(MechanismOutcome {
        mechanism: "MooD".into(),
        non_protected_users: report.composition_unprotected().len(),
        data_loss_percent: report.data_loss.percent(),
        protected_users: distortions.len(),
        bands: band_counts(&distortions),
    });

    let fine_grained = report
        .fine_grained_stats()
        .into_iter()
        .map(|(user, s)| FineGrainedRow {
            user,
            sub_traces_total: s.sub_traces_total,
            sub_traces_protected: s.sub_traces_protected,
            protected_percent: s.protected_ratio() * 100.0,
        })
        .collect();

    DatasetFigures {
        dataset: ctx.spec.name.clone(),
        adversary,
        users: ctx.test.user_count(),
        records: ctx.test.record_count(),
        mechanisms,
        fine_grained,
    }
}

/// Runs MooD alone and returns the full protection report (used by the
/// Fig. 8/10 binaries and the examples).
pub fn run_mood(ctx: &ExperimentContext, adversary: Adversary, threads: usize) -> ProtectionReport {
    let engine = ctx.engine(adversary);
    protect_dataset(&engine, &ctx.test, threads)
}

/// Parses `--scale X` and `--threads N` style CLI arguments for the
/// experiment binaries (defaults: scale 1.0, threads = available
/// parallelism).
pub fn cli_options() -> (f64, usize) {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1.0f64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or(1.0);
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                threads = args[i + 1].parse().unwrap_or(threads);
                i += 2;
            }
            _ => i += 1,
        }
    }
    (scale.clamp(0.001, 1.0), threads.max(1))
}

/// Formats a figure bar table like the paper's per-dataset panels.
pub fn print_bars(figures: &DatasetFigures) {
    println!(
        "--- {} [{:?} adversary] ({} users, {} records) ---",
        figures.dataset, figures.adversary, figures.users, figures.records
    );
    println!(
        "{:<12} {:>14} {:>11}",
        "mechanism", "non-protected", "data-loss"
    );
    for m in &figures.mechanisms {
        println!(
            "{:<12} {:>10} ({:>3.0}%) {:>10.2}%",
            m.mechanism,
            m.non_protected_users,
            m.non_protected_users as f64 / figures.users as f64 * 100.0,
            m.data_loss_percent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_synth::presets;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::load(&presets::privamov_like(), 0.2)
    }

    #[test]
    fn context_splits_cleanly() {
        let ctx = tiny_ctx();
        assert!(ctx.train.user_count() > 0);
        assert_eq!(ctx.train.user_count(), ctx.test.user_count());
        // the split is per-user (each user's first 15 days): check the
        // chronology user by user
        for train_trace in ctx.train.iter() {
            let test_trace = ctx.test.get(train_trace.user()).expect("same users");
            assert!(train_trace.end_time() < test_trace.start_time());
        }
    }

    #[test]
    fn both_suites_train_through_one_store() {
        let ctx = tiny_ctx();
        let counters = ctx.store.counters();
        // Heatmaps, POI profiles and chains each built once; the chain
        // derivation re-fetches the POI profiles and the AP-only suite
        // re-fetches the heatmaps — hits, not rebuilds.
        assert_eq!(counters.misses, 3, "{counters:?}");
        assert_eq!(counters.hits, 2, "{counters:?}");
        // Engines built from the context surface the same counters.
        let engine = ctx.engine(Adversary::ApOnly);
        assert_eq!(engine.profile_store_counters(), counters);
    }

    #[test]
    fn figures_have_all_bars_in_order() {
        let ctx = tiny_ctx();
        let figures = run_figures(&ctx, Adversary::All, 2);
        let names: Vec<&str> = figures
            .mechanisms
            .iter()
            .map(|m| m.mechanism.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["no-LPPM", "Geo-I", "TRL", "HMC", "HybridLPPM", "MooD"]
        );
    }

    #[test]
    fn mood_bar_dominates_competitors() {
        let ctx = tiny_ctx();
        let figures = run_figures(&ctx, Adversary::All, 2);
        let mood = figures.mechanism("MooD").unwrap();
        for m in &figures.mechanisms {
            if m.mechanism != "MooD" {
                assert!(
                    mood.non_protected_users <= m.non_protected_users,
                    "MooD ({}) worse than {} ({})",
                    mood.non_protected_users,
                    m.mechanism,
                    m.non_protected_users
                );
                assert!(mood.data_loss_percent <= m.data_loss_percent + 1e-9);
            }
        }
    }

    #[test]
    fn ap_only_adversary_is_weaker_or_equal() {
        let ctx = tiny_ctx();
        let all = run_figures(&ctx, Adversary::All, 2);
        let ap = run_figures(&ctx, Adversary::ApOnly, 2);
        assert!(
            ap.mechanism("no-LPPM").unwrap().non_protected_users
                <= all.mechanism("no-LPPM").unwrap().non_protected_users
        );
    }

    #[test]
    fn serializable_results() {
        let ctx = tiny_ctx();
        let figures = run_figures(&ctx, Adversary::All, 2);
        let json = serde_json::to_string(&figures).unwrap();
        let back: DatasetFigures = serde_json::from_str(&json).unwrap();
        assert_eq!(figures, back);
    }
}
