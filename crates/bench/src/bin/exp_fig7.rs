//! Figure 7 — Resilience to **multiple** attacks (POI + PIT + AP):
//! number of non-protected users per mechanism, including MooD's
//! multi-LPPM composition.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_fig7 [--scale X] [--threads N]`

use mood_bench::{cli_options, print_bars, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("Figure 7: resilience to multiple attacks (POI + PIT + AP) — MooD vs. competitors");
    println!("(scale {scale})\n");
    let mut all = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let figures = run_figures(&ctx, Adversary::All, threads);
        print_bars(&figures);
        println!();
        all.push(figures);
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig7.json",
        serde_json::to_string_pretty(&all).expect("serializable"),
    )
    .ok();
    println!("paper reference (#non-protected, no-LPPM/Geo-I/TRL/HMC/Hybrid/MooD):");
    println!("  MDC 107/107/86/65/51/3 | Privamov 37/36/29/20/10/3 | Geolife 32/27/22/15/10/2 | Cabspotting 281/263/65/131/27/0");
}
