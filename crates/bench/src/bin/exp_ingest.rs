//! CSV-ingestion throughput: megabytes/second and records/second of
//! `io::read_csv` (full in-memory parse) vs `io::stream_csv` (streaming
//! parse straight into the compressed chunked `TraceStore`), plus the
//! store's compression ratio against the in-memory `Vec<Record>` form.
//!
//! Every streamed pass is asserted bit-identical to the in-memory parse
//! (`store.to_dataset() == dataset`) before its timing counts, and the
//! compression ratio is asserted ≤ 0.5 — the store must at least halve
//! the resident footprint to earn its keep.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_ingest
//!         [--scale X]`

use std::time::Instant;

use mood_bench::cli_options;
use mood_bench::perf::{write_json, IngestReport, IngestRow, INGEST_PATH};
use mood_synth::presets;
use mood_trace::{io as trace_io, Record, StoreConfig};

const MIN_ELAPSED_S: f64 = 1.0;
const MIN_ITERS: u32 = 3;

fn main() {
    let (scale, _threads) = cli_options();
    println!("=== CSV ingestion throughput (privamov-like, scale {scale}) ===");
    let spec = presets::privamov_like().scaled(scale);
    let dataset = spec.generate();
    let mut csv = Vec::new();
    trace_io::write_csv(&dataset, &mut csv).expect("serialize corpus");
    let records = dataset.record_count();
    let csv_mb = csv.len() as f64 / 1e6;
    println!(
        "{} users / {records} records, {:.1} MB of CSV\n",
        dataset.user_count(),
        csv_mb
    );

    let mut rows = Vec::new();

    // Mode 1: read_csv — the whole corpus lands in memory.
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        let parsed = trace_io::read_csv(&csv[..]).expect("parse");
        iters += 1;
        assert_eq!(parsed, dataset, "read_csv diverged from the source");
        if start.elapsed().as_secs_f64() >= MIN_ELAPSED_S && iters >= MIN_ITERS {
            break;
        }
    }
    let wall = start.elapsed().as_secs_f64() / f64::from(iters);
    let read_resident = records * std::mem::size_of::<Record>();
    print_row(
        &mut rows,
        "read_csv",
        records,
        csv.len(),
        wall,
        read_resident,
    );

    // Mode 2: stream_csv — bounded buffers, sealed compressed chunks.
    let config = StoreConfig::default();
    let warmup = trace_io::stream_csv(&csv[..], config).expect("stream");
    assert_eq!(
        warmup.to_dataset(),
        dataset,
        "stream_csv diverged from read_csv"
    );
    let start = Instant::now();
    let mut iters = 0u32;
    let store = loop {
        let store = trace_io::stream_csv(&csv[..], config).expect("stream");
        iters += 1;
        if start.elapsed().as_secs_f64() >= MIN_ELAPSED_S && iters >= MIN_ITERS {
            break store;
        }
    };
    let wall = start.elapsed().as_secs_f64() / f64::from(iters);
    let stats = store.stats();
    // Peak footprint of the streamed form: the encoded chunks (all
    // retained) plus the largest the per-user ingest buffers ever got.
    let stream_resident = stats.encoded_bytes + stats.peak_buffer_bytes;
    print_row(
        &mut rows,
        "stream_csv",
        records,
        csv.len(),
        wall,
        stream_resident,
    );

    let encoded_per_record = stats.encoded_bytes as f64 / records as f64;
    let ratio = stats.encoded_bytes as f64 / read_resident as f64;
    println!(
        "\nstore: {} chunks, {:.2} encoded bytes/record, {:.1}% of Vec<Record> form",
        stats.chunks,
        encoded_per_record,
        ratio * 100.0
    );
    assert!(
        ratio <= 0.5,
        "compression ratio {ratio:.3} exceeds the 0.5 gate"
    );

    let report = IngestReport {
        dataset: spec.name.clone(),
        scale_note: format!("scale {scale}"),
        rows,
        encoded_bytes_per_record: encoded_per_record,
        compression_ratio: ratio,
    };
    write_json(INGEST_PATH, &report).expect("write results");
    println!("wrote {INGEST_PATH}");
}

fn print_row(
    rows: &mut Vec<IngestRow>,
    mode: &str,
    records: usize,
    csv_bytes: usize,
    wall_s: f64,
    peak_resident_bytes: usize,
) {
    let mb_per_s = csv_bytes as f64 / 1e6 / wall_s;
    let records_per_s = records as f64 / wall_s;
    println!(
        "{mode:<12} {wall_s:>8.3} s   {mb_per_s:>7.1} MB/s   {records_per_s:>10.0} records/s   peak {peak_resident_bytes:>12} B",
    );
    rows.push(IngestRow {
        mode: mode.to_string(),
        records,
        csv_bytes,
        wall_s,
        mb_per_s,
        records_per_s,
        peak_resident_bytes,
    });
}
