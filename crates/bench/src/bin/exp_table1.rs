//! Table 1 — Description of datasets.
//!
//! Regenerates the paper's Table 1 for the four synthetic stand-ins:
//! user count, city, record count (plus the train/test split sizes the
//! experiments actually use).
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_table1 [--scale X]`

use serde::{Deserialize, Serialize};

use mood_bench::cli_options;
use mood_synth::presets;
use mood_trace::TimeDelta;

/// One Table 1 row, as written to `results/table1.json`.
#[derive(Serialize, Deserialize)]
struct DatasetRow {
    name: String,
    users: usize,
    location: String,
    records: usize,
    train_records: usize,
    test_records: usize,
}

fn main() {
    let (scale, _) = cli_options();
    println!("Table 1: Description of datasets (scale {scale})");
    println!(
        "{:<18} {:>7} {:<15} {:>10} {:>10} {:>10}",
        "Name", "#users", "location", "#records", "#train", "#test"
    );
    let mut rows = Vec::new();
    for spec in presets::all() {
        let spec = if scale < 1.0 {
            spec.scaled(scale)
        } else {
            spec
        };
        let ds = spec.generate();
        let (train, test) = ds.split_chronological(TimeDelta::from_days(15));
        println!(
            "{:<18} {:>7} {:<15} {:>10} {:>10} {:>10}",
            spec.name,
            ds.user_count(),
            spec.city.name(),
            ds.record_count(),
            train.record_count(),
            test.record_count()
        );
        rows.push(DatasetRow {
            name: spec.name.clone(),
            users: ds.user_count(),
            location: spec.city.name().to_string(),
            records: ds.record_count(),
            train_records: train.record_count(),
            test_records: test.record_count(),
        });
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/table1.json",
        serde_json::to_string_pretty(&rows).expect("serializable rows"),
    )
    .ok();
    println!("\npaper reference: Cabspotting 531/11,179,014 | Geolife 41/1,468,989 | MDC 141/904,282 | PrivaMov 41/948,965");
}
