//! Figure 9 — Utility of protected data: for every mechanism, the share
//! of protected users in each spatio-temporal-distortion band
//! (< 500 m, < 1 km, < 5 km, ≥ 5 km).
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_fig9 [--scale X] [--threads N]`

use mood_bench::{cli_options, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

const BANDS: [&str; 4] = ["Low", "Medium", "High", "ExtremelyHigh"];

fn main() {
    let (scale, threads) = cli_options();
    println!("Figure 9: utility of data protected with MooD vs. competitors");
    println!(
        "(bands: Low <500 m | Medium <1 km | High <5 km | ExtremelyHigh >=5 km; scale {scale})\n"
    );
    let mut all = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let figures = run_figures(&ctx, Adversary::All, threads);
        println!("--- {} ---", figures.dataset);
        println!(
            "{:<12} {:>10} {:>8} {:>8} {:>8} {:>14}",
            "mechanism", "protected", BANDS[0], BANDS[1], BANDS[2], BANDS[3]
        );
        for m in &figures.mechanisms {
            if m.mechanism == "no-LPPM" {
                continue;
            }
            let pct = |band: &str| -> f64 {
                if m.protected_users == 0 {
                    0.0
                } else {
                    *m.bands.get(band).unwrap_or(&0) as f64 / m.protected_users as f64 * 100.0
                }
            };
            println!(
                "{:<12} {:>10} {:>7.1}% {:>7.1}% {:>7.1}% {:>13.1}%",
                m.mechanism,
                m.protected_users,
                pct(BANDS[0]),
                pct(BANDS[1]),
                pct(BANDS[2]),
                pct(BANDS[3])
            );
        }
        println!();
        all.push(figures);
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig9.json",
        serde_json::to_string_pretty(&all).expect("serializable"),
    )
    .ok();
    println!("paper reference (share of protected users with distortion <500 m, all datasets):");
    println!("  Geo-I 38% | TRL 12% | HMC 45% | Hybrid 49% | MooD 53.47%  (<1 km: MooD 78%)");
}
