//! Compares freshly measured throughput results against the committed
//! baseline and prints an informational delta report — never fails,
//! because benchmark hardware varies (the CI runner is single-core).
//!
//! Usage (from the workspace root):
//!
//! * `bench_delta` — read `results/throughput.json`,
//!   `results/eval_throughput.json`, `results/serve_latency.json`,
//!   `results/candidate_scoring.json` and `results/ingest.json`,
//!   print deltas against
//!   `crates/bench/baseline/BENCH_throughput.json`;
//! * `bench_delta --record` — overwrite the committed baseline with the
//!   fresh results (run `exp_throughput`, `exp_eval_throughput`,
//!   `exp_serve_latency`, `exp_candidate_scoring` and `exp_ingest`
//!   first).

use mood_bench::perf::{
    delta_report, read_json, write_json, BenchBaseline, BASELINE_PATH, CANDIDATE_SCORING_PATH,
    EVAL_THROUGHPUT_PATH, INGEST_PATH, SERVE_LATENCY_PATH, THROUGHPUT_PATH,
};

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let current = BenchBaseline {
        throughput: read_json(THROUGHPUT_PATH),
        eval_throughput: read_json(EVAL_THROUGHPUT_PATH),
        serve_latency: read_json(SERVE_LATENCY_PATH),
        candidate_scoring: read_json(CANDIDATE_SCORING_PATH),
        ingest: read_json(INGEST_PATH),
    };

    if record {
        if current.throughput.is_none()
            && current.eval_throughput.is_none()
            && current.serve_latency.is_none()
            && current.candidate_scoring.is_none()
            && current.ingest.is_none()
        {
            eprintln!(
                "nothing to record: run exp_throughput / exp_eval_throughput / \
                 exp_serve_latency / exp_candidate_scoring / exp_ingest first \
                 (expected {THROUGHPUT_PATH}, {EVAL_THROUGHPUT_PATH}, \
                 {SERVE_LATENCY_PATH}, {CANDIDATE_SCORING_PATH} and {INGEST_PATH})"
            );
            return;
        }
        // Merge with the existing baseline: a section with no fresh run
        // keeps its previous recording instead of being wiped.
        let previous: Option<BenchBaseline> = read_json(BASELINE_PATH);
        let merged = BenchBaseline {
            throughput: current
                .throughput
                .or_else(|| previous.as_ref().and_then(|p| p.throughput.clone())),
            eval_throughput: current
                .eval_throughput
                .or_else(|| previous.as_ref().and_then(|p| p.eval_throughput.clone())),
            serve_latency: current
                .serve_latency
                .or_else(|| previous.as_ref().and_then(|p| p.serve_latency.clone())),
            candidate_scoring: current
                .candidate_scoring
                .or_else(|| previous.as_ref().and_then(|p| p.candidate_scoring.clone())),
            ingest: current.ingest.or_else(|| previous.and_then(|p| p.ingest)),
        };
        write_json(BASELINE_PATH, &merged).expect("write baseline");
        println!("recorded baseline -> {BASELINE_PATH}");
        return;
    }

    match read_json::<BenchBaseline>(BASELINE_PATH) {
        None => println!(
            "no committed baseline at {BASELINE_PATH}; run `bench_delta --record` to create one"
        ),
        Some(baseline) => {
            println!("=== throughput delta vs committed baseline (informational) ===");
            for line in delta_report(&baseline, &current) {
                println!("{line}");
            }
        }
    }
}
