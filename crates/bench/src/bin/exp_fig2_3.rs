//! Figures 2 & 3 — Ratio of non-protected users (Fig. 2) and data loss
//! (Fig. 3) with single state-of-the-art LPPMs and HybridLPPM, under the
//! three-attack adversary.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_fig2_3 [--scale X] [--threads N]`

use mood_bench::{cli_options, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("Figures 2 & 3: non-protected users and data loss, single LPPMs + HybridLPPM");
    println!("(adversary: POI + PIT + AP attacks; scale {scale})\n");
    let mut all = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let figures = run_figures(&ctx, Adversary::All, threads);
        println!("--- {} ({} users) ---", figures.dataset, figures.users);
        println!(
            "{:<12} {:>22} {:>17}",
            "LPPM", "non-protected (Fig.2)", "data loss (Fig.3)"
        );
        for m in &figures.mechanisms {
            if m.mechanism == "MooD" {
                continue; // Figs. 2/3 predate MooD in the paper's narrative
            }
            println!(
                "{:<12} {:>15} ({:>3.0}%) {:>16.1}%",
                m.mechanism,
                m.non_protected_users,
                m.non_protected_users as f64 / figures.users as f64 * 100.0,
                m.data_loss_percent
            );
        }
        println!();
        all.push(figures);
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig2_3.json",
        serde_json::to_string_pretty(&all).expect("serializable"),
    )
    .ok();
    println!("paper reference (Fig.2, non-protected %): MDC 76/61/46/36, Privamov 88/71/49/24, Geolife 66/54/37/24, Cabspotting 50/19/25/5 (Geo-I/TRL/HMC/Hybrid)");
}
