//! Runs every experiment (Table 1, Figures 2/3, 6, 7, 8, 9, 10) in one
//! go, sharing each dataset's context across figures so the suite
//! finishes in minutes at full scale.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_all [--scale X] [--threads N]`

use serde::{Deserialize, Serialize};

use mood_bench::{cli_options, print_bars, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

const BANDS: [&str; 4] = ["Low", "Medium", "High", "ExtremelyHigh"];

/// One Table 1 row, as written to `results/table1.json`.
#[derive(Serialize, Deserialize)]
struct Table1Row {
    name: String,
    users: usize,
    location: String,
    records: usize,
}

fn main() {
    let (scale, threads) = cli_options();
    let t0 = std::time::Instant::now();
    println!("=== MooD full experiment suite (scale {scale}, {threads} threads) ===\n");
    std::fs::create_dir_all("results").ok();

    // Table 1
    println!("## Table 1: datasets");
    let mut table1 = Vec::new();
    let mut contexts = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let full = ctx.train.record_count() + ctx.test.record_count();
        println!(
            "  {:<18} {:>4} users  {:<14} {:>9} records",
            ctx.spec.name,
            ctx.test.user_count(),
            ctx.spec.city.name(),
            full
        );
        table1.push(Table1Row {
            name: ctx.spec.name.clone(),
            users: ctx.test.user_count(),
            location: ctx.spec.city.name().to_string(),
            records: full,
        });
        contexts.push(ctx);
    }
    std::fs::write(
        "results/table1.json",
        serde_json::to_string_pretty(&table1).expect("serializable"),
    )
    .ok();

    // Figure 6 (AP only) and Figures 2/3/7/8/9/10 (all attacks)
    let mut fig6 = Vec::new();
    let mut fig7 = Vec::new();
    for ctx in &contexts {
        println!("\n## {} — Figure 6 (single attack: AP)", ctx.spec.name);
        let f6 = run_figures(ctx, Adversary::ApOnly, threads);
        print_bars(&f6);
        fig6.push(f6);

        println!("\n## {} — Figures 2/3/7/10 (multi-attack)", ctx.spec.name);
        let f7 = run_figures(ctx, Adversary::All, threads);
        print_bars(&f7);

        println!("   Figure 8 (fine-grained residual users):");
        if f7.fine_grained.is_empty() {
            println!("     none — composition search protected everyone");
        }
        for (i, row) in f7.fine_grained.iter().enumerate() {
            println!(
                "     USER {} ({}): {}/{} sub-traces ({:.0}%)",
                char::from(b'A' + (i % 26) as u8),
                row.user,
                row.sub_traces_protected,
                row.sub_traces_total,
                row.protected_percent
            );
        }

        println!("   Figure 9 (distortion bands, % of protected users):");
        for m in &f7.mechanisms {
            if m.mechanism == "no-LPPM" || m.protected_users == 0 {
                continue;
            }
            let pct: Vec<String> = BANDS
                .iter()
                .map(|b| {
                    format!(
                        "{:.0}%",
                        *m.bands.get(*b).unwrap_or(&0) as f64 / m.protected_users as f64 * 100.0
                    )
                })
                .collect();
            println!("     {:<12} {}", m.mechanism, pct.join(" / "));
        }
        fig7.push(f7);
    }
    std::fs::write(
        "results/fig6.json",
        serde_json::to_string_pretty(&fig6).expect("serializable"),
    )
    .ok();
    for (name, data) in [
        ("fig2_3", &fig7),
        ("fig7", &fig7),
        ("fig8", &fig7),
        ("fig9", &fig7),
        ("fig10", &fig7),
    ] {
        std::fs::write(
            format!("results/{name}.json"),
            serde_json::to_string_pretty(data).expect("serializable"),
        )
        .ok();
    }

    println!("\n=== suite finished in {:?} ===", t0.elapsed());
}
