//! Figure 8 — Fine-grained protection with MooD: for the residual users
//! the whole-trace composition search could not protect, the proportion
//! of their 24 h sub-traces that MooD protects.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_fig8 [--scale X] [--threads N]`

use mood_bench::{cli_options, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("Figure 8: fine-grained protection with MooD (residual users, 24 h sub-traces)");
    println!("(adversary: POI + PIT + AP; scale {scale})\n");
    let mut all = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let figures = run_figures(&ctx, Adversary::All, threads);
        println!("--- {} ---", figures.dataset);
        if figures.fine_grained.is_empty() {
            println!("  (no residual users: the composition search protected everyone)");
        }
        for (i, row) in figures.fine_grained.iter().enumerate() {
            let label = char::from(b'A' + (i % 26) as u8);
            println!(
                "  USER {label} ({}): {:>3}/{:<3} sub-traces protected ({:>5.1}%)",
                row.user, row.sub_traces_protected, row.sub_traces_total, row.protected_percent
            );
        }
        println!();
        all.push(figures);
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig8.json",
        serde_json::to_string_pretty(&all).expect("serializable"),
    )
    .ok();
    println!("paper reference: MDC users A/B/C -> 100/92/11 % protected sub-traces;");
    println!("  Privamov D/E/F -> 67/43/50 %; Geolife G/H -> 1 of 4 sub-traces protected");
}
