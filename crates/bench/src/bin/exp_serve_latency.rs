//! Serve-layer latency: an in-process `mood-serve` server driven over
//! loopback by concurrent keep-alive clients, recording p50/p99/mean
//! per endpoint into the BENCH JSON (`results/serve_latency.json`;
//! `bench_delta` compares requests/sec against the committed baseline).
//!
//! Two endpoints are measured:
//!
//! * `protect` — single-user requests round-robined over the test set
//!   from N concurrent keep-alive clients (the online, many-small-
//!   requests regime the persistent executor exists for);
//! * `protect_batch` — the whole test set in one request, fanned out
//!   through `protect_stream` on the server's executor.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_serve_latency
//!         [--scale X] [--threads N]`

use std::sync::Mutex;
use std::time::Instant;

use mood_bench::perf::{ServeLatencyReport, ServeLatencyRow, SERVE_LATENCY_PATH};
use mood_bench::{cli_options, Adversary, ExperimentContext};
use mood_serve::{
    BatchRequest, ChaosConfig, Client, EngineTemplate, MoodServer, ProtectRequest, ServeConfig,
};
use mood_synth::presets;
use mood_trace::Trace;

/// Latency of `sorted` at percentile `p` (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn row_from(
    endpoint: &str,
    concurrency: usize,
    mut latencies_ms: Vec<f64>,
    wall_s: f64,
) -> ServeLatencyRow {
    latencies_ms.sort_by(f64::total_cmp);
    let requests = latencies_ms.len();
    let mean = latencies_ms.iter().sum::<f64>() / requests.max(1) as f64;
    ServeLatencyRow {
        endpoint: endpoint.to_string(),
        concurrency,
        requests,
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        mean_ms: mean,
        requests_per_s: requests as f64 / wall_s.max(1e-9),
    }
}

fn main() {
    let (scale, threads) = cli_options();
    println!("=== mood-serve loopback latency (privamov-like, scale {scale}) ===");
    let ctx = ExperimentContext::load(&presets::privamov_like(), scale);
    let template = EngineTemplate::from_engine(&ctx.engine(Adversary::All));
    let traces: Vec<Trace> = ctx.test.iter().cloned().collect();
    let users = traces.len();

    let concurrency = threads.clamp(1, 8);
    let config = ServeConfig {
        connection_workers: concurrency + 1,
        executor_threads: threads.max(1),
        ..ServeConfig::default()
    };
    let server = MoodServer::start(config, template.clone()).expect("bind loopback server");
    let addr = server.local_addr();
    println!(
        "{users} users, {concurrency} concurrent clients -> http://{addr} \
         [persistent x{}]\n",
        threads.max(1)
    );

    // --- single-user protect: warmup, then measured round-robin ---
    let per_client = (users * 2).div_ceil(concurrency).max(8);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    {
        let mut warm = Client::connect(addr).expect("connect warmup client");
        for (i, trace) in traces.iter().take(concurrency.min(users)).enumerate() {
            let request = ProtectRequest {
                request_id: 1_000_000 + i as u64,
                trace: trace.clone(),
                budget: None,
            };
            let resp = warm
                .post_json("/v1/protect", &request)
                .expect("warmup request");
            assert_eq!(resp.status, 200, "warmup failed: {:?}", resp.text());
        }
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_idx in 0..concurrency {
            let latencies = &latencies;
            let traces = &traces;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect client");
                let mut own: Vec<f64> = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let trace = &traces[(client_idx + i * concurrency) % traces.len()];
                    let request = ProtectRequest {
                        request_id: (client_idx * per_client + i) as u64,
                        trace: trace.clone(),
                        budget: None,
                    };
                    let t0 = Instant::now();
                    let resp = client.post_json("/v1/protect", &request).expect("request");
                    assert_eq!(resp.status, 200, "protect failed: {:?}", resp.text());
                    own.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies.lock().expect("latency sink").extend(own);
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let protect_row = row_from(
        "protect",
        concurrency,
        latencies.into_inner().expect("latency sink"),
        wall,
    );

    // --- whole-set batch protect ---
    let rounds = 3;
    let mut batch_lat: Vec<f64> = Vec::with_capacity(rounds);
    let mut client = Client::connect(addr).expect("connect batch client");
    let batch_started = Instant::now();
    for round in 0..rounds {
        let request = BatchRequest {
            request_id: 5_000_000 + round as u64,
            traces: traces.clone(),
            budget: None,
        };
        let t0 = Instant::now();
        let resp = client
            .post_json("/v1/protect/batch", &request)
            .expect("batch request");
        assert_eq!(resp.status, 200, "batch failed: {:?}", resp.text());
        batch_lat.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let batch_wall = batch_started.elapsed().as_secs_f64();
    let batch_row = row_from("protect_batch", 1, batch_lat, batch_wall);

    // --- flight recorder export: the artifact CI uploads ---
    let resp = client
        .get("/v1/debug/trace?limit=64")
        .expect("flight recorder export");
    assert_eq!(resp.status, 200, "debug trace failed: {:?}", resp.text());
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/flight_recorder.json", &resp.body).expect("write flight recorder");

    // --- chaos_disabled_overhead: with `chaos: None` every injection
    // point is a cold `Option` check; measure the cheapest request we
    // have so any per-request cost shows up instead of drowning in
    // engine time. The zero-probability comparison server quantifies
    // the armed-but-silent path for context (printed, not recorded).
    let healthz_requests = 2_000;
    let mut healthz_lat: Vec<f64> = Vec::with_capacity(healthz_requests);
    let healthz_started = Instant::now();
    for _ in 0..healthz_requests {
        let t0 = Instant::now();
        let resp = client.get("/healthz").expect("healthz request");
        assert_eq!(resp.status, 200, "healthz failed: {:?}", resp.text());
        healthz_lat.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let healthz_wall = healthz_started.elapsed().as_secs_f64();
    let chaos_row = row_from("chaos_disabled_overhead", 1, healthz_lat, healthz_wall);

    let metrics = server.metrics();
    println!(
        "{:<14} x{:<2} {:>6} req   p50 {:>8.2} ms   p99 {:>8.2} ms   mean {:>8.2} ms   {:>8.2} req/s",
        protect_row.endpoint,
        protect_row.concurrency,
        protect_row.requests,
        protect_row.p50_ms,
        protect_row.p99_ms,
        protect_row.mean_ms,
        protect_row.requests_per_s
    );
    println!(
        "{:<14} x{:<2} {:>6} req   p50 {:>8.2} ms   p99 {:>8.2} ms   mean {:>8.2} ms   {:>8.2} req/s",
        batch_row.endpoint,
        batch_row.concurrency,
        batch_row.requests,
        batch_row.p50_ms,
        batch_row.p99_ms,
        batch_row.mean_ms,
        batch_row.requests_per_s
    );
    println!(
        "{:<14} x{:<2} {:>6} req   p50 {:>8.2} ms   p99 {:>8.2} ms   mean {:>8.2} ms   {:>8.2} req/s",
        "chaos_off",
        chaos_row.concurrency,
        chaos_row.requests,
        chaos_row.p50_ms,
        chaos_row.p99_ms,
        chaos_row.mean_ms,
        chaos_row.requests_per_s
    );
    println!(
        "\nserver: {} responses, {} users protected, {} scratch reuses, {} connections",
        metrics.responses_total(),
        metrics.users_protected_total(),
        metrics.scratch_reuses_total(),
        metrics.connections_total()
    );
    if let Some(recorder) = server.recorder() {
        println!("per-stage pipeline time (traced requests):");
        for histo in recorder.stage_histograms() {
            println!(
                "  {:<18} {:>8} obs {:>10.2} ms total",
                histo.stage,
                histo.count,
                histo.sum_us as f64 / 1e3
            );
        }
        println!(
            "flight recorder: {} traces recorded ({} slow) -> results/flight_recorder.json",
            recorder.recorded_total(),
            recorder.slow_total()
        );
    }
    server.shutdown();

    // Armed-but-silent comparison: chaos enabled with every probability
    // at zero must be indistinguishable from disabled.
    {
        let armed_config = ServeConfig {
            connection_workers: concurrency + 1,
            executor_threads: threads.max(1),
            chaos: Some(ChaosConfig {
                seed: 7,
                ..ChaosConfig::default()
            }),
            ..ServeConfig::default()
        };
        let armed = MoodServer::start(armed_config, template.clone()).expect("bind armed server");
        let mut armed_client = Client::connect(armed.local_addr()).expect("connect armed client");
        // The disabled loop above ran on a long-warmed server; give the
        // fresh one the same treatment before timing.
        for _ in 0..500 {
            let resp = armed_client.get("/healthz").expect("armed warmup");
            assert_eq!(resp.status, 200);
        }
        let armed_started = Instant::now();
        for _ in 0..healthz_requests {
            let resp = armed_client.get("/healthz").expect("armed healthz");
            assert_eq!(resp.status, 200);
        }
        let armed_wall = armed_started.elapsed().as_secs_f64();
        let armed_rps = healthz_requests as f64 / armed_wall.max(1e-9);
        println!(
            "chaos hooks: disabled {:.0} req/s vs armed-zero-probability {:.0} req/s ({:+.1}%)",
            chaos_row.requests_per_s,
            armed_rps,
            (armed_rps / chaos_row.requests_per_s.max(1e-9) - 1.0) * 100.0
        );
        armed.shutdown();
    }

    // --- tracing overhead: identical sequential protect workloads on
    // two fresh servers, tracing off vs on. The traced run is recorded
    // as `tracing_overhead`, so the committed baseline guards the cost
    // of the span layer on the request hot path.
    let overhead_requests = (users * 2).max(16);
    let measure_protect = |config: ServeConfig, label: &str| -> ServeLatencyRow {
        let server = MoodServer::start(config, template.clone()).expect("bind overhead server");
        let mut client = Client::connect(server.local_addr()).expect("connect overhead client");
        for (i, trace) in traces.iter().take(4.min(users)).enumerate() {
            let request = ProtectRequest {
                request_id: 2_000_000 + i as u64,
                trace: trace.clone(),
                budget: None,
            };
            let resp = client
                .post_json("/v1/protect", &request)
                .expect("overhead warmup");
            assert_eq!(
                resp.status,
                200,
                "overhead warmup failed: {:?}",
                resp.text()
            );
        }
        let started = Instant::now();
        let mut lat: Vec<f64> = Vec::with_capacity(overhead_requests);
        for i in 0..overhead_requests {
            let request = ProtectRequest {
                request_id: i as u64,
                trace: traces[i % traces.len()].clone(),
                budget: None,
            };
            let t0 = Instant::now();
            let resp = client
                .post_json("/v1/protect", &request)
                .expect("overhead request");
            assert_eq!(
                resp.status,
                200,
                "overhead request failed: {:?}",
                resp.text()
            );
            lat.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let wall = started.elapsed().as_secs_f64();
        server.shutdown();
        row_from(label, 1, lat, wall)
    };
    let untraced_row = measure_protect(
        ServeConfig {
            connection_workers: 2,
            executor_threads: threads.max(1),
            tracing: None,
            ..ServeConfig::default()
        },
        "protect_untraced",
    );
    let traced_row = measure_protect(
        ServeConfig {
            connection_workers: 2,
            executor_threads: threads.max(1),
            ..ServeConfig::default()
        },
        "tracing_overhead",
    );
    println!(
        "tracing: untraced p50 {:.2} ms vs traced p50 {:.2} ms ({:+.1}%)",
        untraced_row.p50_ms,
        traced_row.p50_ms,
        (traced_row.p50_ms / untraced_row.p50_ms.max(1e-9) - 1.0) * 100.0
    );

    let doc = ServeLatencyReport {
        dataset: ctx.spec.name.clone(),
        scale_note: format!("privamov-like scaled by {scale}"),
        rows: vec![protect_row, batch_row, chaos_row, untraced_row, traced_row],
    };
    mood_bench::perf::write_json(SERVE_LATENCY_PATH, &doc).expect("write serve latency results");
    println!(
        "\n{}",
        serde_json::to_string_pretty(&doc).expect("serializable rows")
    );
}
