//! Batch-protection throughput: users/second of the MooD pipeline per
//! execution backend, on the privamov-like preset.
//!
//! This is the perf trajectory the ROADMAP tracks PR over PR: the JSON
//! emitted to `results/throughput.json` (and echoed to stdout) lets
//! future changes prove their speedups against the committed baseline
//! (`bench_delta` prints the comparison).
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_throughput
//!         [--scale X] [--threads N]`

use std::time::Instant;

use mood_bench::perf::{ThroughputReport, ThroughputRow, THROUGHPUT_PATH};
use mood_bench::{cli_options, Adversary, ExperimentContext};
use mood_core::{protect_dataset_with, ExecutorKind};
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("=== protect_dataset throughput (privamov-like, scale {scale}) ===");
    let ctx = ExperimentContext::load(&presets::privamov_like(), scale);
    let engine = ctx.engine(Adversary::All);
    let users = ctx.test.user_count();
    let records = ctx.test.record_count();
    println!("{users} users / {records} records, up to {threads} threads\n");

    let configs: Vec<(ExecutorKind, usize)> = vec![
        (ExecutorKind::Sequential, 1),
        (ExecutorKind::ScopedPool, threads),
        (ExecutorKind::WorkStealing, threads),
        (ExecutorKind::Persistent, threads),
    ];

    let mut rows: Vec<ThroughputRow> = Vec::new();
    let mut sequential_wall = None;
    let mut reference = None;
    for (kind, t) in configs {
        // The persistent pool spawns its workers here, once; the scoped
        // backends re-spawn inside every for_each_index call. That
        // difference is exactly what this benchmark measures.
        let executor = kind.build(t);
        // warm-up run (page cache, branch predictors, allocator, and
        // the engine's scratch arenas)
        let warmup = protect_dataset_with(&engine, &ctx.test, executor.as_ref());
        let start = Instant::now();
        let report = protect_dataset_with(&engine, &ctx.test, executor.as_ref());
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(warmup, report, "non-deterministic protection on {kind}");
        match &reference {
            None => reference = Some(report),
            Some(r) => assert_eq!(r, &report, "{kind} diverged from sequential output"),
        }
        if kind == ExecutorKind::Sequential {
            sequential_wall = Some(wall);
        }
        let speedup = sequential_wall.map_or(1.0, |s| s / wall);
        println!(
            "{:<12} x{t:<2}  {wall:>8.2} s   {:>8.2} users/s   {:>10.0} records/s   {speedup:>5.2}x",
            kind.to_string(),
            users as f64 / wall,
            records as f64 / wall,
        );
        rows.push(ThroughputRow {
            executor: kind.to_string(),
            threads: t,
            users,
            records,
            wall_s: wall,
            users_per_s: users as f64 / wall,
            records_per_s: records as f64 / wall,
            speedup_vs_sequential: speedup,
        });
    }

    let doc = ThroughputReport {
        dataset: ctx.spec.name.clone(),
        scale_note: format!("privamov-like scaled by {scale}"),
        rows,
    };
    mood_bench::perf::write_json(THROUGHPUT_PATH, &doc).expect("write throughput results");
    println!(
        "\n{}",
        serde_json::to_string_pretty(&doc).expect("serializable rows")
    );
}
