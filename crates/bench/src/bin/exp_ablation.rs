//! Ablations beyond the paper: the design-choice sweeps DESIGN.md calls
//! out, run on the Privamov stand-in (the most vulnerable dataset):
//!
//! * composition length cap (1 / 2 / 3) — how much of MooD's power comes
//!   from deeper chains;
//! * recursion floor δ (2 h / 4 h / 8 h) — data loss vs. protection in
//!   the fine-grained stage;
//! * AP-Attack cell size (400 / 800 / 1600 m) — adversary strength;
//! * Geo-I ε sweep — the privacy/utility knob of the weakest LPPM.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_ablation [--scale X] [--threads N]`

use mood_attacks::{ApAttack, Attack, AttackSuite};
use mood_bench::{cli_options, ExperimentContext};
use mood_core::{protect_dataset, MoodConfig, MoodEngine};
use mood_lppm::{GeoI, Lppm};
use mood_metrics::spatio_temporal_distortion;
use mood_synth::presets;
use mood_trace::TimeDelta;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (scale, threads) = cli_options();
    let scale = if scale >= 1.0 { 0.5 } else { scale }; // ablations default to half scale
    println!("Ablations (privamov-like, scale {scale})\n");
    let ctx = ExperimentContext::load(&presets::privamov_like(), scale);

    // --- composition length cap ---
    println!("A1. MooD composition length cap (adversary: 3 attacks)");
    println!(
        "{:<10} {:>14} {:>11} {:>10}",
        "max len", "comp-unprot.", "data loss", "variants"
    );
    for cap in 1..=3usize {
        let mut config = MoodConfig::paper_default();
        config.max_composition_len = cap;
        let engine = MoodEngine::new(ctx.suite_all.clone(), ctx.lppms().to_vec(), config);
        let report = protect_dataset(&engine, &ctx.test, threads);
        println!(
            "{:<10} {:>14} {:>10.2}% {:>10}",
            cap,
            report.composition_unprotected().len(),
            report.data_loss.percent(),
            engine.lppms().len() + engine.compositions().len()
        );
    }

    // --- 4th LPPM (generalization family, paper §6 extension hook) ---
    println!("\nA1b. Extended LPPM set {{Geo-I, TRL, HMC, Cloaking}} (|C| = 64)");
    {
        let mut lppms = ctx.lppms().to_vec();
        lppms.push(std::sync::Arc::new(
            mood_lppm::SpatialCloaking::from_background(&ctx.train, 800.0),
        ));
        let engine = MoodEngine::new(ctx.suite_all.clone(), lppms, MoodConfig::paper_default());
        let report = protect_dataset(&engine, &ctx.test, threads);
        println!(
            "variants={}  comp-unprot.={}  data loss={:.2}%",
            engine.lppms().len() + engine.compositions().len(),
            report.composition_unprotected().len(),
            report.data_loss.percent()
        );
    }

    // --- delta sweep ---
    println!("\nA2. Fine-grained recursion floor delta");
    println!("{:<10} {:>14} {:>11}", "delta", "comp-unprot.", "data loss");
    for hours in [2i64, 4, 8] {
        let mut config = MoodConfig::paper_default();
        config.delta = TimeDelta::from_hours(hours);
        let engine = MoodEngine::new(ctx.suite_all.clone(), ctx.lppms().to_vec(), config);
        let report = protect_dataset(&engine, &ctx.test, threads);
        println!(
            "{:<10} {:>14} {:>10.2}%",
            format!("{hours}h"),
            report.composition_unprotected().len(),
            report.data_loss.percent()
        );
    }

    // --- split strategy (paper §6 future work) ---
    println!("\nA2b. Fine-grained split strategy (paper future work)");
    println!(
        "{:<14} {:>14} {:>11}",
        "strategy", "comp-unprot.", "data loss"
    );
    for strategy in [
        mood_core::SplitStrategy::Halving,
        mood_core::SplitStrategy::LargestGap,
        mood_core::SplitStrategy::InterPoi,
    ] {
        let mut config = MoodConfig::paper_default();
        config.split_strategy = strategy;
        let engine = MoodEngine::new(ctx.suite_all.clone(), ctx.lppms().to_vec(), config);
        let report = protect_dataset(&engine, &ctx.test, threads);
        println!(
            "{:<14} {:>14} {:>10.2}%",
            strategy.to_string(),
            report.composition_unprotected().len(),
            report.data_loss.percent()
        );
    }

    // --- AP cell size sweep ---
    println!("\nA3. AP-Attack cell size (no LPPM)");
    println!("{:<10} {:>14}", "cell", "re-identified");
    for cell in [400.0, 800.0, 1600.0] {
        let suite = AttackSuite::train(&[&ApAttack::new(cell) as &dyn Attack], &ctx.train);
        let eval = suite.evaluate(&ctx.test);
        println!(
            "{:<10} {:>10}/{:<3}",
            format!("{cell} m"),
            eval.non_protected_count(),
            eval.users_total
        );
    }

    // --- Geo-I epsilon sweep ---
    println!("\nA4. Geo-I epsilon sweep (3-attack adversary)");
    println!(
        "{:<10} {:>14} {:>12}",
        "epsilon", "re-identified", "mean STD"
    );
    for eps in [0.05, 0.01, 0.005, 0.001] {
        let geoi = GeoI::new(eps);
        let mut total_std = 0.0;
        let protected = {
            let traces: Vec<mood_trace::Trace> = ctx
                .test
                .iter()
                .map(|t| {
                    let mut rng = StdRng::seed_from_u64(0xAB1A ^ t.user().as_u64());
                    let p = geoi.protect(t, &mut rng);
                    total_std += spatio_temporal_distortion(t, &p);
                    p
                })
                .collect();
            mood_trace::Dataset::from_traces(traces).expect("unique users")
        };
        let eval = ctx.suite_all.evaluate(&protected);
        println!(
            "{:<10} {:>10}/{:<3} {:>9.0} m",
            eps,
            eval.non_protected_count(),
            eval.users_total,
            total_std / ctx.test.user_count() as f64
        );
    }
}
