//! Figure 6 — Resilience to **one** attack (AP-Attack): number of
//! non-protected users per mechanism, including MooD's multi-LPPM
//! composition.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_fig6 [--scale X] [--threads N]`

use mood_bench::{cli_options, print_bars, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("Figure 6: resilience to a single attack (AP-Attack) — MooD vs. competitors");
    println!("(scale {scale})\n");
    let mut all = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let figures = run_figures(&ctx, Adversary::ApOnly, threads);
        print_bars(&figures);
        println!();
        all.push(figures);
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig6.json",
        serde_json::to_string_pretty(&all).expect("serializable"),
    )
    .ok();
    println!("paper reference (#non-protected, no-LPPM/Geo-I/TRL/HMC/Hybrid/MooD):");
    println!("  MDC 96/95/79/14/10/0 | Privamov 32/31/26/9/4/2 | Geolife 32/32/32/4/4/1 | Cabspotting 242/207/56/12/4/0");
}
