//! Attack-evaluation throughput: records/second of
//! `AttackSuite::evaluate_with` per execution backend — the inner loop
//! of every benchmark figure (`no-LPPM` bars, per-mechanism bars, the
//! CLI's `mood attack`), measured in isolation.
//!
//! Every backend's result is asserted byte-identical to the sequential
//! reference before timing counts, so this doubles as a determinism
//! check for the per-worker accumulator merge.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_eval_throughput
//!         [--scale X] [--threads N]`

use std::time::Instant;

use mood_bench::perf::{EvalThroughputReport, EvalThroughputRow, EVAL_THROUGHPUT_PATH};
use mood_bench::{cli_options, ExperimentContext};
use mood_core::ExecutorKind;
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("=== AttackSuite::evaluate throughput (privamov-like, scale {scale}) ===");
    let ctx = ExperimentContext::load(&presets::privamov_like(), scale);
    let suite = &ctx.suite_all;
    let traces = ctx.test.user_count();
    let records = ctx.test.record_count();
    println!("{traces} traces / {records} records, 3 attacks, up to {threads} threads\n");

    let configs: Vec<(ExecutorKind, usize)> = vec![
        (ExecutorKind::Sequential, 1),
        (ExecutorKind::ScopedPool, threads),
        (ExecutorKind::WorkStealing, threads),
        (ExecutorKind::Persistent, threads),
    ];

    let mut rows: Vec<EvalThroughputRow> = Vec::new();
    let mut sequential_wall = None;
    let mut reference = None;
    for (kind, t) in configs {
        let executor = kind.build(t);
        let warmup = suite.evaluate_with(&ctx.test, executor.as_ref());
        // One evaluation pass is milliseconds at CI scale — far below
        // timer noise. Repeat until a minimum elapsed window and report
        // the per-iteration average so baseline deltas mean something.
        const MIN_ELAPSED_S: f64 = 1.0;
        const MIN_ITERS: u32 = 3;
        let start = Instant::now();
        let mut iters = 0u32;
        let eval = loop {
            let eval = suite.evaluate_with(&ctx.test, executor.as_ref());
            iters += 1;
            assert_eq!(warmup, eval, "non-deterministic evaluation on {kind}");
            if start.elapsed().as_secs_f64() >= MIN_ELAPSED_S && iters >= MIN_ITERS {
                break eval;
            }
        };
        let wall = start.elapsed().as_secs_f64() / f64::from(iters);
        match &reference {
            None => reference = Some(eval),
            Some(r) => assert_eq!(r, &eval, "{kind} diverged from sequential evaluation"),
        }
        if kind == ExecutorKind::Sequential {
            sequential_wall = Some(wall);
        }
        let speedup = sequential_wall.map_or(1.0, |s| s / wall);
        println!(
            "{:<12} x{t:<2}  {wall:>8.3} s   {:>8.2} traces/s   {:>10.0} records/s   {speedup:>5.2}x",
            kind.to_string(),
            traces as f64 / wall,
            records as f64 / wall,
        );
        rows.push(EvalThroughputRow {
            executor: kind.to_string(),
            threads: t,
            traces,
            records,
            wall_s: wall,
            traces_per_s: traces as f64 / wall,
            records_per_s: records as f64 / wall,
            speedup_vs_sequential: speedup,
        });
    }

    let doc = EvalThroughputReport {
        dataset: ctx.spec.name.clone(),
        scale_note: format!("privamov-like scaled by {scale}"),
        rows,
    };
    mood_bench::perf::write_json(EVAL_THROUGHPUT_PATH, &doc).expect("write eval results");
    println!(
        "\n{}",
        serde_json::to_string_pretty(&doc).expect("serializable rows")
    );
}
