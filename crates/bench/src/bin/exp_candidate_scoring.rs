//! Candidate-scoring throughput: candidates/second through the attack
//! suite's verdict path — the K×m inner loop of MooD's composition
//! search — measured with and without the scratch arena.
//!
//! Two modes score the identical candidate pool (raw test traces plus
//! one obfuscated variant per base LPPM, the shapes the engine actually
//! scores):
//!
//! * `predict` — `AttackSuite::first_reidentifying`, the allocating
//!   reference path (fresh heatmaps/POI clusters/Markov chains per
//!   call, full profile scans): the pre-scratch baseline;
//! * `scratch` — `AttackSuite::first_reidentifying_with` on one warm
//!   [`AttackScratch`]: per-worker feature buffers, shared rasterization
//!   cache, best-bound-pruned profile matching.
//!
//! Every pass asserts the two modes' verdicts are identical before
//! timing counts, so this doubles as a determinism gate for the scratch
//! path.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_candidate_scoring
//!         [--scale X]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::AttackScratch;
use mood_bench::perf::{CandidateScoringReport, CandidateScoringRow, CANDIDATE_SCORING_PATH};
use mood_bench::{cli_options, ExperimentContext};
use mood_synth::presets;
use mood_trace::Trace;

fn main() {
    let (scale, _threads) = cli_options();
    println!("=== candidate-scoring throughput (mdc-like/600s, scale {scale}) ===");
    // Candidate scoring is *matching*-bound in the serving regime: many
    // known users (profiles to scan per verdict) and moderate traces.
    // The stock presets at small scales invert that shape (a handful of
    // users with ~10k-record traces, where feature extraction drowns
    // out matching), so this bench takes the largest resident
    // population (mdc-like, 141 users at scale 1.0 — `--scale`
    // multiplies the user count) on a coarser 600 s sampling grid,
    // keeping traces around 1.5k records.
    let mut spec = presets::mdc_like();
    spec.sampling_interval_s = 600;
    let ctx = ExperimentContext::load(&spec, scale);
    let suite = &ctx.suite_all;

    // The candidate pool: raw traces + one protected variant per base
    // LPPM per user, under a fixed per-variant RNG derivation.
    let mut candidates: Vec<Trace> = ctx.test.iter().cloned().collect();
    for (v, lppm) in ctx.lppms().iter().enumerate() {
        for trace in ctx.test.iter() {
            let mut rng = StdRng::seed_from_u64(
                0xC0DE ^ (v as u64) << 32 ^ trace.user().as_u64().wrapping_mul(0x9e37_79b9),
            );
            candidates.push(lppm.protect(trace, &mut rng));
        }
    }
    let records: usize = candidates.iter().map(Trace::len).sum();
    println!(
        "{} candidates / {records} records, {} attacks\n",
        candidates.len(),
        suite.len()
    );

    // Verdict parity gate: both paths must agree on every candidate.
    let mut scratch = AttackScratch::new();
    let reference: Vec<Option<&str>> = candidates
        .iter()
        .map(|c| suite.first_reidentifying(c, c.user()))
        .collect();
    for (c, expected) in candidates.iter().zip(&reference) {
        let got = suite.first_reidentifying_with(c, c.user(), &mut scratch);
        assert_eq!(&got, expected, "scratch verdict diverged on {}", c.user());
    }
    println!(
        "parity pass OK; POI-profile cache: {} hits / {} misses\n",
        scratch.profile_cache_hits(),
        scratch.profile_cache_misses()
    );

    const MIN_ELAPSED_S: f64 = 1.0;
    const MIN_ITERS: u32 = 3;
    let mut rows: Vec<CandidateScoringRow> = Vec::new();
    let mut predict_wall = None;
    for mode in ["predict", "scratch"] {
        let start = Instant::now();
        let mut iters = 0u32;
        loop {
            let mut verdicts = 0usize;
            match mode {
                "predict" => {
                    for c in &candidates {
                        verdicts += usize::from(suite.first_reidentifying(c, c.user()).is_some());
                    }
                }
                _ => {
                    for c in &candidates {
                        verdicts += usize::from(
                            suite
                                .first_reidentifying_with(c, c.user(), &mut scratch)
                                .is_some(),
                        );
                    }
                }
            }
            let expected = reference.iter().filter(|v| v.is_some()).count();
            assert_eq!(verdicts, expected, "verdicts drifted in mode {mode}");
            iters += 1;
            if start.elapsed().as_secs_f64() >= MIN_ELAPSED_S && iters >= MIN_ITERS {
                break;
            }
        }
        let wall = start.elapsed().as_secs_f64() / f64::from(iters);
        if mode == "predict" {
            predict_wall = Some(wall);
        }
        let speedup = predict_wall.map_or(1.0, |p| p / wall);
        println!(
            "{mode:<8}  {wall:>8.3} s/pass   {:>10.1} candidates/s   {speedup:>5.2}x vs predict",
            candidates.len() as f64 / wall,
        );
        rows.push(CandidateScoringRow {
            mode: mode.to_string(),
            candidates: candidates.len(),
            records,
            wall_s: wall,
            candidates_per_s: candidates.len() as f64 / wall,
            speedup_vs_predict: speedup,
        });
    }

    let doc = CandidateScoringReport {
        dataset: ctx.spec.name.clone(),
        scale_note: format!("mdc-like @600s scaled by {scale}"),
        rows,
    };
    mood_bench::perf::write_json(CANDIDATE_SCORING_PATH, &doc).expect("write scoring results");
    println!(
        "\n{}",
        serde_json::to_string_pretty(&doc).expect("serializable rows")
    );
}
