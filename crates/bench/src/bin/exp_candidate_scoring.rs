//! Candidate-scoring throughput: candidates/second through the attack
//! suite's verdict path — the K×m inner loop of MooD's composition
//! search — measured with and without the scratch arena.
//!
//! Two modes score the identical candidate pool (raw test traces plus
//! one obfuscated variant per base LPPM, the shapes the engine actually
//! scores):
//!
//! * `predict` — `AttackSuite::first_reidentifying`, the allocating
//!   reference path (fresh heatmaps/POI clusters/Markov chains per
//!   call, full profile scans): the pre-scratch baseline;
//! * `scratch` — `AttackSuite::first_reidentifying_with` on one warm
//!   [`AttackScratch`]: per-worker feature buffers, shared rasterization
//!   cache, best-bound-pruned profile matching.
//!
//! Every pass asserts the two modes' verdicts are identical before
//! timing counts, so this doubles as a determinism gate for the scratch
//! path.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_candidate_scoring
//!         [--scale X]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::AttackScratch;
use mood_bench::perf::{
    CandidateScoringReport, CandidateScoringRow, KernelMicroRow, CANDIDATE_SCORING_PATH,
};
use mood_bench::{cli_options, ExperimentContext};
use mood_models::{kernels, Heatmap, MarkovChain, Poi, PoiExtractor, PoiProfile};
use mood_synth::presets;
use mood_trace::Trace;

/// Scalar reference of the SoA weighted-nearest kernel: the naive
/// per-pair walk the POI/PIT attacks used before the two-phase SoA
/// rewrite. The micro rows assert the kernel is bit-identical to this
/// before timing it.
fn scalar_weighted_nearest(anon: &[Poi], weights: &[f64], cand: &[Poi]) -> f64 {
    if cand.is_empty() {
        return f64::INFINITY;
    }
    let mut sum = 0.0;
    for (poi, w) in anon.iter().zip(weights.iter()) {
        let nearest = cand
            .iter()
            .map(|c| poi.centroid.approx_distance(&c.centroid))
            .fold(f64::INFINITY, f64::min);
        sum += w * nearest;
    }
    sum
}

/// Times `pass` (one full sweep of `calls` kernel invocations) and
/// reports nanoseconds per call. The returned accumulator is
/// `black_box`ed so the sweeps cannot be optimized away.
fn time_kernel(label: &str, calls: usize, mut pass: impl FnMut() -> f64) -> KernelMicroRow {
    std::hint::black_box(pass()); // warmup
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        std::hint::black_box(pass());
        iters += 1;
        if start.elapsed().as_secs_f64() >= 0.25 && iters >= 3 {
            break;
        }
    }
    let ns_per_call = start.elapsed().as_nanos() as f64 / (calls as f64 * f64::from(iters));
    println!("{label:<14} {ns_per_call:>9.1} ns/verdict   ({calls} calls/pass)");
    KernelMicroRow {
        kernel: label.to_string(),
        calls,
        ns_per_call,
    }
}

fn main() {
    let (scale, _threads) = cli_options();
    println!("=== candidate-scoring throughput (mdc-like/600s, scale {scale}) ===");
    // Candidate scoring is *matching*-bound in the serving regime: many
    // known users (profiles to scan per verdict) and moderate traces.
    // The stock presets at small scales invert that shape (a handful of
    // users with ~10k-record traces, where feature extraction drowns
    // out matching), so this bench takes the largest resident
    // population (mdc-like, 141 users at scale 1.0 — `--scale`
    // multiplies the user count) on a coarser 600 s sampling grid,
    // keeping traces around 1.5k records.
    let mut spec = presets::mdc_like();
    spec.sampling_interval_s = 600;
    let ctx = ExperimentContext::load(&spec, scale);
    let suite = &ctx.suite_all;

    // The candidate pool: raw traces + one protected variant per base
    // LPPM per user, under a fixed per-variant RNG derivation.
    let mut candidates: Vec<Trace> = ctx.test.iter().cloned().collect();
    for (v, lppm) in ctx.lppms().iter().enumerate() {
        for trace in ctx.test.iter() {
            let mut rng = StdRng::seed_from_u64(
                0xC0DE ^ (v as u64) << 32 ^ trace.user().as_u64().wrapping_mul(0x9e37_79b9),
            );
            candidates.push(lppm.protect(trace, &mut rng));
        }
    }
    let records: usize = candidates.iter().map(Trace::len).sum();
    println!(
        "{} candidates / {records} records, {} attacks\n",
        candidates.len(),
        suite.len()
    );

    // Verdict parity gate: both paths must agree on every candidate.
    let mut scratch = AttackScratch::new();
    let reference: Vec<Option<&str>> = candidates
        .iter()
        .map(|c| suite.first_reidentifying(c, c.user()))
        .collect();
    for (c, expected) in candidates.iter().zip(&reference) {
        let got = suite.first_reidentifying_with(c, c.user(), &mut scratch);
        assert_eq!(&got, expected, "scratch verdict diverged on {}", c.user());
    }
    println!(
        "parity pass OK; POI-profile cache: {} hits / {} misses\n",
        scratch.profile_cache_hits(),
        scratch.profile_cache_misses()
    );

    const MIN_ELAPSED_S: f64 = 1.0;
    const MIN_ITERS: u32 = 3;
    let mut rows: Vec<CandidateScoringRow> = Vec::new();
    let mut predict_wall = None;
    for mode in ["predict", "scratch"] {
        let start = Instant::now();
        let mut iters = 0u32;
        loop {
            let mut verdicts = 0usize;
            match mode {
                "predict" => {
                    for c in &candidates {
                        verdicts += usize::from(suite.first_reidentifying(c, c.user()).is_some());
                    }
                }
                _ => {
                    for c in &candidates {
                        verdicts += usize::from(
                            suite
                                .first_reidentifying_with(c, c.user(), &mut scratch)
                                .is_some(),
                        );
                    }
                }
            }
            let expected = reference.iter().filter(|v| v.is_some()).count();
            assert_eq!(verdicts, expected, "verdicts drifted in mode {mode}");
            iters += 1;
            if start.elapsed().as_secs_f64() >= MIN_ELAPSED_S && iters >= MIN_ITERS {
                break;
            }
        }
        let wall = start.elapsed().as_secs_f64() / f64::from(iters);
        if mode == "predict" {
            predict_wall = Some(wall);
        }
        let speedup = predict_wall.map_or(1.0, |p| p / wall);
        println!(
            "{mode:<8}  {wall:>8.3} s/pass   {:>10.1} candidates/s   {speedup:>5.2}x vs predict",
            candidates.len() as f64 / wall,
        );
        rows.push(CandidateScoringRow {
            mode: mode.to_string(),
            candidates: candidates.len(),
            records,
            wall_s: wall,
            candidates_per_s: candidates.len() as f64 / wall,
            speedup_vs_predict: speedup,
        });
    }

    // --- model-kernel micro rows ---------------------------------
    // ns per verdict-sized call through the three SoA hot loops, each
    // gated bit-for-bit against its scalar reference (SoA ≡ scalar) and
    // against its unbounded form (pruned ≡ unpruned) before timing.
    println!("\n--- model kernels ---");
    let extractor = PoiExtractor::paper_default();
    let hm_set = ctx.store.heatmaps(&ctx.train, 800.0);
    let poi_set = ctx.store.poi_profiles(&ctx.train, &extractor);
    let chain_set = ctx.store.markov_chains(&ctx.train, &extractor);

    let sample: Vec<&Trace> = ctx.test.iter().take(8).collect();
    let anon_heatmaps: Vec<Heatmap> = sample
        .iter()
        .map(|t| Heatmap::from_trace(hm_set.grid(), t))
        .filter(|h| !h.is_empty())
        .collect();
    let anon_profiles: Vec<PoiProfile> = sample
        .iter()
        .map(|t| extractor.extract_profile(t))
        .filter(|p| !p.is_empty())
        .collect();
    let anon_chains: Vec<MarkovChain> = anon_profiles
        .iter()
        .map(MarkovChain::from_profile)
        .filter(|c| !c.is_empty())
        .collect();

    for anon in &anon_heatmaps {
        for (_, profile) in hm_set.iter() {
            let bounded = anon.topsoe_bounded(profile, f64::INFINITY);
            assert_eq!(
                bounded.map(f64::to_bits),
                anon.topsoe(profile).map(f64::to_bits),
                "bounded Topsoe diverged from the unbounded walk"
            );
        }
    }
    for anon in &anon_profiles {
        let weights = anon.weights();
        for (_, profile, soa) in poi_set.iter() {
            let got = kernels::weighted_nearest_bounded(anon.pois(), &weights, soa, None, 1.0)
                .expect("unbounded kernel never prunes");
            let want = scalar_weighted_nearest(anon.pois(), &weights, profile.pois());
            assert_eq!(got.to_bits(), want.to_bits(), "POI kernel diverged");
        }
    }
    for anon in &anon_chains {
        let pi = anon.stationary();
        for (_, chain, soa) in chain_set.iter() {
            let got = kernels::weighted_nearest_bounded(anon.states(), pi, soa, None, 0.5)
                .expect("unbounded kernel never prunes");
            let want = scalar_weighted_nearest(anon.states(), pi, chain.states());
            assert_eq!(got.to_bits(), want.to_bits(), "PIT kernel diverged");
        }
    }
    println!("kernel parity OK (SoA ≡ scalar, pruned ≡ unpruned)\n");

    let mut kernel_rows = Vec::new();
    if !anon_heatmaps.is_empty() {
        kernel_rows.push(time_kernel(
            "kernel_topsoe",
            anon_heatmaps.len() * hm_set.len(),
            || {
                let mut acc = 0.0;
                for anon in &anon_heatmaps {
                    for (_, profile) in hm_set.iter() {
                        acc += anon.topsoe_bounded(profile, f64::INFINITY).unwrap_or(0.0);
                    }
                }
                acc
            },
        ));
    }
    if !anon_profiles.is_empty() {
        let weights: Vec<Vec<f64>> = anon_profiles.iter().map(|p| p.weights()).collect();
        kernel_rows.push(time_kernel(
            "kernel_poi",
            anon_profiles.len() * poi_set.len(),
            || {
                let mut acc = 0.0;
                for (anon, w) in anon_profiles.iter().zip(&weights) {
                    for (_, _, soa) in poi_set.iter() {
                        acc += kernels::weighted_nearest_bounded(anon.pois(), w, soa, None, 1.0)
                            .unwrap_or(0.0);
                    }
                }
                acc
            },
        ));
    }
    if !anon_chains.is_empty() {
        kernel_rows.push(time_kernel(
            "kernel_pit",
            anon_chains.len() * chain_set.len(),
            || {
                let mut acc = 0.0;
                for anon in &anon_chains {
                    let pi = anon.stationary();
                    for (_, _, soa) in chain_set.iter() {
                        acc += kernels::weighted_nearest_bounded(anon.states(), pi, soa, None, 0.5)
                            .unwrap_or(0.0);
                    }
                }
                acc
            },
        ));
    }

    let doc = CandidateScoringReport {
        dataset: ctx.spec.name.clone(),
        scale_note: format!("mdc-like @600s scaled by {scale}"),
        rows,
        kernels: kernel_rows,
    };
    mood_bench::perf::write_json(CANDIDATE_SCORING_PATH, &doc).expect("write scoring results");
    println!(
        "\n{}",
        serde_json::to_string_pretty(&doc).expect("serializable rows")
    );
}
