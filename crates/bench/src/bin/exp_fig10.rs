//! Figure 10 — Data loss: the share of records that must be erased per
//! mechanism (records of users the adversary still re-identifies; for
//! MooD, records erased by fine-grained protection), per dataset.
//!
//! Usage: `cargo run --release -p mood-bench --bin exp_fig10 [--scale X] [--threads N]`

use mood_bench::{cli_options, run_figures, Adversary, ExperimentContext};
use mood_synth::presets;

fn main() {
    let (scale, threads) = cli_options();
    println!("Figure 10: ratio of data loss — MooD vs. competitors");
    println!("(adversary: POI + PIT + AP; scale {scale})\n");
    let mut all = Vec::new();
    for spec in presets::all() {
        let ctx = ExperimentContext::load(&spec, scale);
        let figures = run_figures(&ctx, Adversary::All, threads);
        println!("--- {} ({} records) ---", figures.dataset, figures.records);
        for m in &figures.mechanisms {
            if m.mechanism == "no-LPPM" {
                continue;
            }
            println!(
                "  {:<12} {:>7.2}% data loss",
                m.mechanism, m.data_loss_percent
            );
        }
        println!();
        all.push(figures);
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write(
        "results/fig10.json",
        serde_json::to_string_pretty(&all).expect("serializable"),
    )
    .ok();
    println!("paper reference (data loss %, Geo-I/TRL/HMC/Hybrid/MooD):");
    println!("  MDC 88/73/53/42/0.33 | Privamov 95/70/46/30/2.5 | Geolife 68/60/14/9/0.37 | Cabspotting 52/13/25/5/0.0");
}
