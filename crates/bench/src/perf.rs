//! Shared machinery for the perf-trajectory benchmarks: the serialized
//! row formats of `exp_throughput` (batch protection, users/sec) and
//! `exp_eval_throughput` (attack evaluation, records/sec), the combined
//! baseline document committed under `crates/bench/baseline/`, and the
//! delta report `bench_delta` prints in CI.
//!
//! The baseline exists so every PR's CI log shows *where the hot paths
//! moved*: the comparison is informational (hardware varies, the CI
//! runner is single-core), but the trajectory — users/sec and
//! records/sec per executor — is recorded run over run.

use serde::{Deserialize, Serialize};

/// Where the committed baseline lives, relative to the workspace root.
pub const BASELINE_PATH: &str = "crates/bench/baseline/BENCH_throughput.json";
/// Where `exp_throughput` writes its fresh results.
pub const THROUGHPUT_PATH: &str = "results/throughput.json";
/// Where `exp_eval_throughput` writes its fresh results.
pub const EVAL_THROUGHPUT_PATH: &str = "results/eval_throughput.json";
/// Where `exp_serve_latency` writes its fresh results.
pub const SERVE_LATENCY_PATH: &str = "results/serve_latency.json";
/// Where `exp_candidate_scoring` writes its fresh results.
pub const CANDIDATE_SCORING_PATH: &str = "results/candidate_scoring.json";
/// Where `exp_ingest` writes its fresh results.
pub const INGEST_PATH: &str = "results/ingest.json";

/// One measured batch-protection configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Backend label (`sequential`, `pool`, `steal`, `persistent`).
    pub executor: String,
    /// Thread budget given to the backend.
    pub threads: usize,
    /// Users protected per run.
    pub users: usize,
    /// Records protected per run.
    pub records: usize,
    /// Wall-clock seconds of the measured run.
    pub wall_s: f64,
    /// Users per second.
    pub users_per_s: f64,
    /// Records per second.
    pub records_per_s: f64,
    /// Speedup relative to the sequential row of the same document.
    pub speedup_vs_sequential: f64,
}

/// The document `exp_throughput` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Dataset name.
    pub dataset: String,
    /// Human note about the scale factor.
    pub scale_note: String,
    /// One row per measured configuration.
    pub rows: Vec<ThroughputRow>,
}

/// One measured attack-evaluation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalThroughputRow {
    /// Backend label (`sequential`, `pool`, `steal`, `persistent`).
    pub executor: String,
    /// Thread budget given to the backend.
    pub threads: usize,
    /// Traces evaluated per run.
    pub traces: usize,
    /// Records covered per run.
    pub records: usize,
    /// Wall-clock seconds of the measured run.
    pub wall_s: f64,
    /// Traces per second.
    pub traces_per_s: f64,
    /// Records per second — the headline metric of `exp_eval_throughput`.
    pub records_per_s: f64,
    /// Speedup relative to the sequential row of the same document.
    pub speedup_vs_sequential: f64,
}

/// The document `exp_eval_throughput` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalThroughputReport {
    /// Dataset name.
    pub dataset: String,
    /// Human note about the scale factor.
    pub scale_note: String,
    /// One row per measured configuration.
    pub rows: Vec<EvalThroughputRow>,
}

/// One measured serve-latency configuration (loopback, in-process
/// server driven by `exp_serve_latency`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLatencyRow {
    /// Endpoint label (`protect`, `protect_batch`).
    pub endpoint: String,
    /// Concurrent keep-alive clients driving the endpoint.
    pub concurrency: usize,
    /// Requests measured (after warmup).
    pub requests: usize,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Aggregate requests per second across all clients — the headline
    /// rate `bench_delta` compares.
    pub requests_per_s: f64,
}

/// The document `exp_serve_latency` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLatencyReport {
    /// Dataset name.
    pub dataset: String,
    /// Human note about the scale factor.
    pub scale_note: String,
    /// One row per measured configuration.
    pub rows: Vec<ServeLatencyRow>,
}

/// One measured candidate-scoring mode (`exp_candidate_scoring`):
/// attack-suite verdicts per second through `first_reidentifying`
/// (allocating `predict` path) vs. `first_reidentifying_with`
/// (scratch-arena path with pruned profile matching).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateScoringRow {
    /// Scoring mode (`predict` = the pre-scratch reference path,
    /// `scratch` = per-worker arenas + best-bound pruning).
    pub mode: String,
    /// Candidate traces scored per pass.
    pub candidates: usize,
    /// Records covered per pass.
    pub records: usize,
    /// Wall-clock seconds per pass (averaged over iterations).
    pub wall_s: f64,
    /// Candidates per second — the headline rate `bench_delta` compares.
    pub candidates_per_s: f64,
    /// Speedup relative to the `predict` row of the same document.
    pub speedup_vs_predict: f64,
}

/// One measured model kernel (`exp_candidate_scoring`'s micro section):
/// nanoseconds per verdict-sized call through the SoA hot loops —
/// Topsoe over sorted heatmap cells, the POI weighted nearest-distance,
/// and the PIT stationary half. Each timed pass first asserts the
/// kernel's result is bit-identical to the scalar reference walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelMicroRow {
    /// Kernel label (`kernel_topsoe`, `kernel_poi`, `kernel_pit`).
    pub kernel: String,
    /// Kernel calls per timed pass.
    pub calls: usize,
    /// Nanoseconds per call — the rate `bench_delta` compares.
    pub ns_per_call: f64,
}

/// The document `exp_candidate_scoring` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateScoringReport {
    /// Dataset name.
    pub dataset: String,
    /// Human note about the scale factor.
    pub scale_note: String,
    /// One row per measured mode.
    pub rows: Vec<CandidateScoringRow>,
    /// One row per measured model kernel.
    pub kernels: Vec<KernelMicroRow>,
}

/// One measured CSV-ingestion mode (`exp_ingest`): `read_csv` parses
/// into a fully materialized [`mood_trace::Dataset`]-shaped map;
/// `stream_csv` parses the same bytes straight into the compressed
/// chunked `TraceStore`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestRow {
    /// Ingestion mode (`read_csv` or `stream_csv`).
    pub mode: String,
    /// Records parsed per pass.
    pub records: usize,
    /// CSV payload size in bytes.
    pub csv_bytes: usize,
    /// Wall-clock seconds per pass (averaged over iterations).
    pub wall_s: f64,
    /// CSV megabytes parsed per second — the headline rate
    /// `bench_delta` compares.
    pub mb_per_s: f64,
    /// Records parsed per second.
    pub records_per_s: f64,
    /// Peak resident bytes of the destination during the pass: the full
    /// decoded dataset for `read_csv`, ingest buffers + encoded chunks
    /// for `stream_csv`.
    pub peak_resident_bytes: usize,
}

/// The document `exp_ingest` emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Dataset name.
    pub dataset: String,
    /// Human note about the scale factor.
    pub scale_note: String,
    /// One row per measured mode.
    pub rows: Vec<IngestRow>,
    /// Encoded chunk bytes per record in the streamed store.
    pub encoded_bytes_per_record: f64,
    /// Encoded size over in-memory `Vec<Record>` size (must stay
    /// ≤ 0.5 — asserted by `exp_ingest` itself).
    pub compression_ratio: f64,
}

/// The combined baseline document (`BENCH_throughput.json`): every
/// benchmark report, any of which may be absent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// Batch-protection throughput at recording time.
    pub throughput: Option<ThroughputReport>,
    /// Attack-evaluation throughput at recording time.
    pub eval_throughput: Option<EvalThroughputReport>,
    /// HTTP serve latency at recording time.
    pub serve_latency: Option<ServeLatencyReport>,
    /// Candidate-scoring throughput at recording time.
    pub candidate_scoring: Option<CandidateScoringReport>,
    /// CSV-ingestion throughput at recording time.
    pub ingest: Option<IngestReport>,
}

/// Reads and parses a JSON document, `None` when the file is missing or
/// unparsable (the delta report is informational and must never fail a
/// build over a stale artifact).
pub fn read_json<T: Deserialize>(path: &str) -> Option<T> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Serializes `value` to `path` (pretty-printed), creating parent
/// directories as needed.
pub fn write_json<T: Serialize>(path: &str, value: &T) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

/// Formats one delta line: `label: baseline -> current (+x.x%)`.
fn delta_line(label: &str, unit: &str, baseline: f64, current: f64) -> String {
    let delta = if baseline > 0.0 {
        (current / baseline - 1.0) * 100.0
    } else {
        0.0
    };
    format!("  {label:<18} {baseline:>10.1} -> {current:>10.1} {unit}  ({delta:+.1}%)")
}

/// Renders one benchmark section of the delta report: rows matched by
/// `(executor, threads)`, with the compared rate picked by `key`.
fn section_report<R>(
    out: &mut Vec<String>,
    title: &str,
    unit: &str,
    baseline: Option<(&[R], &str)>,
    current: Option<&[R]>,
    key: impl Fn(&R) -> (&str, usize, f64),
) {
    let (Some((base_rows, scale_note)), Some(cur_rows)) = (baseline, current) else {
        out.push(format!("{title}: no baseline or no fresh run"));
        return;
    };
    out.push(format!("{title} (baseline: {scale_note}):"));
    for row in cur_rows {
        let (executor, threads, current_rate) = key(row);
        let label = format!("{executor} x{threads}");
        match base_rows
            .iter()
            .map(&key)
            .find(|&(e, t, _)| e == executor && t == threads)
        {
            Some((_, _, baseline_rate)) => {
                out.push(delta_line(&label, unit, baseline_rate, current_rate))
            }
            None => out.push(format!("  {label:<18} (no baseline row)")),
        }
    }
}

/// Renders the informational delta report between the committed
/// baseline and freshly measured documents. Rows are matched by
/// `(executor, threads)`; rows present on only one side are noted, not
/// errors.
pub fn delta_report(baseline: &BenchBaseline, current: &BenchBaseline) -> Vec<String> {
    let mut out = Vec::new();
    section_report(
        &mut out,
        "protect_dataset throughput",
        "users/s",
        baseline
            .throughput
            .as_ref()
            .map(|r| (r.rows.as_slice(), r.scale_note.as_str())),
        current.throughput.as_ref().map(|r| r.rows.as_slice()),
        |r| (r.executor.as_str(), r.threads, r.users_per_s),
    );
    section_report(
        &mut out,
        "attack evaluation throughput",
        "records/s",
        baseline
            .eval_throughput
            .as_ref()
            .map(|r| (r.rows.as_slice(), r.scale_note.as_str())),
        current.eval_throughput.as_ref().map(|r| r.rows.as_slice()),
        |r| (r.executor.as_str(), r.threads, r.records_per_s),
    );
    section_report(
        &mut out,
        "serve latency (loopback)",
        "req/s",
        baseline
            .serve_latency
            .as_ref()
            .map(|r| (r.rows.as_slice(), r.scale_note.as_str())),
        current.serve_latency.as_ref().map(|r| r.rows.as_slice()),
        |r| (r.endpoint.as_str(), r.concurrency, r.requests_per_s),
    );
    section_report(
        &mut out,
        "candidate scoring",
        "cand/s",
        baseline
            .candidate_scoring
            .as_ref()
            .map(|r| (r.rows.as_slice(), r.scale_note.as_str())),
        current
            .candidate_scoring
            .as_ref()
            .map(|r| r.rows.as_slice()),
        |r| (r.mode.as_str(), 1, r.candidates_per_s),
    );
    section_report(
        &mut out,
        "csv ingestion",
        "MB/s",
        baseline
            .ingest
            .as_ref()
            .map(|r| (r.rows.as_slice(), r.scale_note.as_str())),
        current.ingest.as_ref().map(|r| r.rows.as_slice()),
        |r| (r.mode.as_str(), 1, r.mb_per_s),
    );
    section_report(
        &mut out,
        "model kernels (lower is better)",
        "ns/call",
        baseline
            .candidate_scoring
            .as_ref()
            .map(|r| (r.kernels.as_slice(), r.scale_note.as_str())),
        current
            .candidate_scoring
            .as_ref()
            .map(|r| r.kernels.as_slice()),
        |r| (r.kernel.as_str(), 1, r.ns_per_call),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(executor: &str, threads: usize, users_per_s: f64) -> ThroughputRow {
        ThroughputRow {
            executor: executor.into(),
            threads,
            users: 100,
            records: 1000,
            wall_s: 1.0,
            users_per_s,
            records_per_s: users_per_s * 10.0,
            speedup_vs_sequential: 1.0,
        }
    }

    fn baseline_with(rows: Vec<ThroughputRow>) -> BenchBaseline {
        BenchBaseline {
            throughput: Some(ThroughputReport {
                dataset: "privamov-like".into(),
                scale_note: "scale 0.3".into(),
                rows,
            }),
            eval_throughput: None,
            serve_latency: None,
            candidate_scoring: None,
            ingest: None,
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let doc = baseline_with(vec![row("persistent", 4, 12.5)]);
        let json = serde_json::to_string_pretty(&doc).unwrap();
        let back: BenchBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn delta_report_matches_rows_by_executor_and_threads() {
        let base = baseline_with(vec![row("persistent", 4, 10.0), row("steal", 4, 8.0)]);
        let cur = baseline_with(vec![row("persistent", 4, 12.0), row("pool", 4, 9.0)]);
        let lines = delta_report(&base, &cur);
        let text = lines.join("\n");
        assert!(text.contains("persistent x4"), "{text}");
        assert!(text.contains("+20.0%"), "{text}");
        assert!(text.contains("pool x4"), "{text}");
        assert!(text.contains("no baseline row"), "{text}");
        assert!(
            text.contains("no baseline or no fresh run"),
            "eval section absent: {text}"
        );
    }

    #[test]
    fn read_json_tolerates_missing_files() {
        assert!(read_json::<BenchBaseline>("/nonexistent/path.json").is_none());
    }
}
