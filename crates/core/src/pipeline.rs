use std::collections::BTreeMap;

use mood_trace::{Dataset, PseudonymFactory, UserId};

use crate::{MoodEngine, ProtectionReport, UserProtection};

/// Protects every user of `dataset` with `engine`, fanning users out to
/// `threads` worker threads (1 = sequential), and assembles the
/// [`ProtectionReport`].
///
/// Results are deterministic regardless of `threads`: every user's
/// randomness derives from the engine seed, and outcomes are re-sorted
/// by user before reporting.
///
/// # Panics
///
/// Panics when `threads` is zero.
///
/// # Examples
///
/// ```
/// use mood_core::{protect_dataset, MoodEngine};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let engine = MoodEngine::paper_default(&background);
/// let report = protect_dataset(&engine, &test, 2);
/// assert_eq!(report.users_total, test.user_count());
/// ```
pub fn protect_dataset(engine: &MoodEngine, dataset: &Dataset, threads: usize) -> ProtectionReport {
    assert!(threads > 0, "need at least one worker thread");
    let traces: Vec<&mood_trace::Trace> = dataset.iter().collect();
    let mut outcomes: Vec<UserProtection> = if threads == 1 || traces.len() <= 1 {
        traces.iter().map(|t| engine.protect_user(t)).collect()
    } else {
        let (tx, rx) = crossbeam_channel::unbounded::<&mood_trace::Trace>();
        for t in &traces {
            tx.send(t).expect("channel open");
        }
        drop(tx);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads.min(traces.len()) {
                let rx = rx.clone();
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Ok(trace) = rx.recv() {
                        local.push(engine.protect_user(trace));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    outcomes.sort_by_key(|o| o.user);
    ProtectionReport::from_outcomes(outcomes)
}

/// Assembles the publishable dataset from protection outcomes: every
/// published (sub-)trace receives a fresh pseudonym (`renew_Ids` of
/// Algorithm 1). Returns the pseudonymized dataset and the
/// pseudonym → original-user ground-truth map (kept by the data curator,
/// never published).
pub fn publish(outcomes: &[UserProtection]) -> (Dataset, BTreeMap<UserId, UserId>) {
    let mut factory = PseudonymFactory::new();
    let mut dataset = Dataset::new();
    let mut ground_truth = BTreeMap::new();
    for outcome in outcomes {
        for protected in outcome.outcome.published() {
            let pseudo = factory.next_id();
            ground_truth.insert(pseudo, outcome.user);
            dataset
                .insert(protected.trace.with_user(pseudo))
                .expect("pseudonyms are unique");
        }
    }
    (dataset, ground_truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::TimeDelta;

    fn mini_world() -> (Dataset, Dataset) {
        let ds = mood_synth::presets::privamov_like().scaled(0.2).generate();
        ds.split_chronological(TimeDelta::from_days(15))
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let seq = protect_dataset(&engine, &test, 1);
        let par = protect_dataset(&engine, &test, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn report_covers_every_user() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let report = protect_dataset(&engine, &test, 2);
        assert_eq!(report.users_total, test.user_count());
        assert_eq!(report.outcomes().len(), test.user_count());
        assert_eq!(
            report.data_loss.total_records(),
            test.record_count(),
            "data loss accounting must cover the whole dataset"
        );
    }

    #[test]
    fn publish_assigns_unique_pseudonyms() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let report = protect_dataset(&engine, &test, 2);
        let (published, ground_truth) = publish(report.outcomes());
        assert_eq!(published.user_count(), ground_truth.len());
        for id in published.user_ids() {
            assert!(id.is_pseudonym());
            assert!(ground_truth.contains_key(&id));
        }
    }

    #[test]
    fn published_dataset_resists_the_suite_under_ground_truth() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let report = protect_dataset(&engine, &test, 2);
        let (published, ground_truth) = publish(report.outcomes());
        for trace in published.iter() {
            let original = ground_truth[&trace.user()];
            assert!(
                engine.suite().protects(trace, original),
                "published trace {} links back to {original}",
                trace.user()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        protect_dataset(&engine, &test, 0);
    }
}
