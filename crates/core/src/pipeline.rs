use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use mood_trace::{Dataset, PseudonymFactory, Trace, TraceStore, UserId};

use crate::exec::{map_indexed, Executor, ExecutorKind};
use crate::{MoodEngine, ProtectionReport, UserProtection};

/// Why [`protect_stream`] could not complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The caller's sink panicked. Protection itself still completed
    /// (the executor is not poisoned and stays reusable), but the sink
    /// was not invoked again after the panic; the payload's message is
    /// carried here.
    SinkPanic(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::SinkPanic(msg) => write!(f, "stream sink panicked: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Renders a panic payload's message, for error reporting.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Protects every user of `dataset` with `engine`, fanning users out to
/// `threads` workers of a persistent pool executor (spawned once for
/// the call, amortized across both the user fan-out and every candidate
/// batch inside it), and assembles the [`ProtectionReport`].
///
/// This is the convenience entry point; [`protect_dataset_with`] takes
/// an explicit [`Executor`] and [`protect_stream`] yields per-user
/// results as they complete. Results are deterministic regardless of
/// backend and thread count: every user's randomness derives from the
/// engine seed, and outcomes are keyed by user before reporting.
///
/// # Panics
///
/// Panics when `threads` is zero.
///
/// # Examples
///
/// ```
/// use mood_core::{protect_dataset, MoodEngine};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let engine = MoodEngine::paper_default(&background);
/// let report = protect_dataset(&engine, &test, 2);
/// assert_eq!(report.users_total, test.user_count());
/// ```
pub fn protect_dataset(engine: &MoodEngine, dataset: &Dataset, threads: usize) -> ProtectionReport {
    assert!(threads > 0, "need at least one worker thread");
    let executor = ExecutorKind::Persistent.build(threads);
    protect_dataset_with(engine, dataset, executor.as_ref())
}

/// Protects every user of `dataset`, running users on `executor` — the
/// outer level of MooD's two-level parallelism (the inner level, across
/// candidate variants, runs on the engine's own executor).
pub fn protect_dataset_with(
    engine: &MoodEngine,
    dataset: &Dataset,
    executor: &dyn Executor,
) -> ProtectionReport {
    let traces: Vec<&Trace> = dataset.iter().collect();
    protect_indexed(engine, traces.len(), |i| traces[i], executor)
}

/// Protects every user of a compressed [`TraceStore`], decoding each
/// user's chunks through the store's byte-budgeted cache as workers
/// pull them — the decoded working set never exceeds the cache budget
/// plus one in-flight trace per worker. The report is byte-identical
/// to [`protect_dataset_with`] on the decoded form of the store,
/// whatever the executor or thread count.
///
/// # Panics
///
/// Panics when the store is unfinished.
pub fn protect_store_with(
    engine: &MoodEngine,
    store: &TraceStore,
    executor: &dyn Executor,
) -> ProtectionReport {
    let users = store.user_ids();
    protect_indexed(engine, users.len(), |i| store.trace(users[i]), executor)
}

/// The shared fan-out: protect `n` users fetched by `get`, sort by
/// user, report. `H` lets callers hand over either borrowed traces
/// (in-memory datasets) or `Arc`s fresh from a store's decode cache.
fn protect_indexed<H, G>(
    engine: &MoodEngine,
    n: usize,
    get: G,
    executor: &dyn Executor,
) -> ProtectionReport
where
    H: std::ops::Deref<Target = Trace>,
    G: Fn(usize) -> H + Sync,
{
    let mut outcomes = map_indexed(executor, n, |i| engine.protect_user(&get(i)));
    outcomes.sort_by_key(|o| o.user);
    ProtectionReport::from_outcomes(outcomes)
}

/// Protects every user of `dataset`, invoking `sink` with each
/// [`UserProtection`] **as it completes** — completion order, not user
/// order — before assembling the final report.
///
/// This is the streaming entry point for the CLI's live progress and
/// for service layers that forward per-user results while a large batch
/// is still running. The sink is serialized (called under a lock), so
/// it may hold `&mut` state without further synchronization; keep it
/// cheap, since a slow sink backpressures the workers.
///
/// The returned report is identical to [`protect_dataset_with`] on the
/// same engine and dataset, whatever the executor.
///
/// A panicking sink cannot poison the executor: the panic is caught,
/// the sink is simply not invoked again, every user still gets
/// protected, and the panic surfaces as [`StreamError::SinkPanic`] —
/// long-running services sharing one executor across requests survive
/// a misbehaving callback.
///
/// # Errors
///
/// Returns [`StreamError::SinkPanic`] when the sink panicked (carrying
/// the first panic's message).
pub fn protect_stream<F>(
    engine: &MoodEngine,
    dataset: &Dataset,
    executor: &dyn Executor,
    sink: F,
) -> Result<ProtectionReport, StreamError>
where
    F: FnMut(&UserProtection) + Send,
{
    let traces: Vec<&Trace> = dataset.iter().collect();
    protect_indexed_stream(engine, traces.len(), |i| traces[i], executor, sink)
}

/// Streaming protection over a compressed [`TraceStore`]: like
/// [`protect_stream`], but users decode through the store's cache on
/// demand. The report equals [`protect_store_with`] (and the in-memory
/// paths) byte-for-byte.
///
/// # Errors
///
/// Returns [`StreamError::SinkPanic`] when the sink panicked (carrying
/// the first panic's message).
///
/// # Panics
///
/// Panics when the store is unfinished.
pub fn protect_store_stream<F>(
    engine: &MoodEngine,
    store: &TraceStore,
    executor: &dyn Executor,
    sink: F,
) -> Result<ProtectionReport, StreamError>
where
    F: FnMut(&UserProtection) + Send,
{
    let users = store.user_ids();
    protect_indexed_stream(
        engine,
        users.len(),
        |i| store.trace(users[i]),
        executor,
        sink,
    )
}

/// The shared streaming fan-out behind [`protect_stream`] and
/// [`protect_store_stream`]; see [`protect_indexed`] for the `H`/`G`
/// shape.
fn protect_indexed_stream<H, G, F>(
    engine: &MoodEngine,
    n: usize,
    get: G,
    executor: &dyn Executor,
    sink: F,
) -> Result<ProtectionReport, StreamError>
where
    H: std::ops::Deref<Target = Trace>,
    G: Fn(usize) -> H + Sync,
    F: FnMut(&UserProtection) + Send,
{
    let sink = Mutex::new(sink);
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<String>> = Mutex::new(None);
    let mut outcomes = map_indexed(executor, n, |i| {
        let outcome = engine.protect_user(&get(i));
        if !panicked.load(Ordering::Acquire) {
            // The panic is caught *inside* the guard's scope, so the
            // unwind never crosses the lock and the mutex cannot be
            // poisoned — the flag alone retires the sink.
            let mut guard = sink.lock().expect("sink lock");
            // Re-check under the lock so the sink is never re-entered
            // after a panic observed by another worker.
            if !panicked.load(Ordering::Acquire) {
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| (guard)(&outcome))) {
                    panicked.store(true, Ordering::Release);
                    payload
                        .lock()
                        .expect("panic payload lock")
                        .get_or_insert(panic_message(p.as_ref()));
                }
            }
        }
        outcome
    });
    outcomes.sort_by_key(|o| o.user);
    let report = ProtectionReport::from_outcomes(outcomes);
    match payload.into_inner().expect("panic payload lock") {
        Some(message) => Err(StreamError::SinkPanic(message)),
        None => Ok(report),
    }
}

/// Assembles the publishable dataset from protection outcomes: every
/// published (sub-)trace receives a fresh pseudonym (`renew_Ids` of
/// Algorithm 1). Returns the pseudonymized dataset and the
/// pseudonym → original-user ground-truth map (kept by the data curator,
/// never published).
pub fn publish(outcomes: &[UserProtection]) -> (Dataset, BTreeMap<UserId, UserId>) {
    let mut factory = PseudonymFactory::new();
    let mut dataset = Dataset::new();
    let mut ground_truth = BTreeMap::new();
    for outcome in outcomes {
        for protected in outcome.outcome.published() {
            let pseudo = factory.next_id();
            ground_truth.insert(pseudo, outcome.user);
            dataset
                .insert(protected.trace.with_user(pseudo))
                .expect("pseudonyms are unique");
        }
    }
    (dataset, ground_truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::TimeDelta;

    fn mini_world() -> (Dataset, Dataset) {
        let ds = mood_synth::presets::privamov_like().scaled(0.2).generate();
        ds.split_chronological(TimeDelta::from_days(15))
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let seq = protect_dataset(&engine, &test, 1);
        let par = protect_dataset(&engine, &test, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn report_covers_every_user() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let report = protect_dataset(&engine, &test, 2);
        assert_eq!(report.users_total, test.user_count());
        assert_eq!(report.outcomes().len(), test.user_count());
        assert_eq!(
            report.data_loss.total_records(),
            test.record_count(),
            "data loss accounting must cover the whole dataset"
        );
    }

    #[test]
    fn publish_assigns_unique_pseudonyms() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let report = protect_dataset(&engine, &test, 2);
        let (published, ground_truth) = publish(report.outcomes());
        assert_eq!(published.user_count(), ground_truth.len());
        for id in published.user_ids() {
            assert!(id.is_pseudonym());
            assert!(ground_truth.contains_key(&id));
        }
    }

    #[test]
    fn published_dataset_resists_the_suite_under_ground_truth() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let report = protect_dataset(&engine, &test, 2);
        let (published, ground_truth) = publish(report.outcomes());
        for trace in published.iter() {
            let original = ground_truth[&trace.user()];
            assert!(
                engine.suite().protects(trace, original),
                "published trace {} links back to {original}",
                trace.user()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        protect_dataset(&engine, &test, 0);
    }

    #[test]
    fn explicit_executors_match_the_convenience_entry_point() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let reference = protect_dataset(&engine, &test, 1);
        for kind in ExecutorKind::all() {
            let executor = kind.build(4);
            let report = protect_dataset_with(&engine, &test, executor.as_ref());
            assert_eq!(report, reference, "{kind} diverged");
        }
    }

    #[test]
    fn stream_sees_every_user_once_and_matches_batch() {
        use std::collections::BTreeSet;

        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let batch = protect_dataset(&engine, &test, 2);

        let executor = ExecutorKind::WorkStealing.build(4);
        let mut seen: Vec<UserId> = Vec::new();
        let streamed = crate::protect_stream(&engine, &test, executor.as_ref(), |outcome| {
            seen.push(outcome.user);
        })
        .expect("sink does not panic");
        assert_eq!(streamed, batch);
        // completion order is arbitrary, but coverage is exact
        let unique: BTreeSet<UserId> = seen.iter().copied().collect();
        assert_eq!(seen.len(), test.user_count());
        assert_eq!(unique.len(), test.user_count());
    }

    #[test]
    fn store_backed_protection_matches_in_memory() {
        use mood_trace::StoreConfig;

        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let reference = protect_dataset(&engine, &test, 1);
        // Tiny cache budget: workers constantly decode and evict, yet
        // the report must stay byte-identical to the in-memory run.
        let config = StoreConfig::default()
            .with_seal_records(64)
            .with_chunk_records(256)
            .with_cache_budget(16 << 10);
        let store = mood_trace::TraceStore::from_dataset(&test, config);
        for kind in ExecutorKind::all() {
            let executor = kind.build(4);
            let batch = protect_store_with(&engine, &store, executor.as_ref());
            assert_eq!(batch, reference, "{kind} store batch diverged");
            let streamed = protect_store_stream(&engine, &store, executor.as_ref(), |_| {})
                .expect("sink does not panic");
            assert_eq!(streamed, reference, "{kind} store stream diverged");
        }
        let stats = store.stats();
        assert!(
            stats.resident_bytes <= stats.budget_bytes,
            "cache over budget: {stats:?}"
        );
    }

    #[test]
    fn panicking_sink_becomes_an_error_and_spares_the_executor() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let batch = protect_dataset(&engine, &test, 2);

        for kind in ExecutorKind::all() {
            // One long-lived executor across both calls — the regime a
            // service runs in: a panicking callback in request 1 must
            // not poison request 2.
            let executor = kind.build(4);
            let mut calls = 0usize;
            let err = protect_stream(&engine, &test, executor.as_ref(), |_| {
                calls += 1;
                if calls == 2 {
                    panic!("sink exploded on purpose");
                }
            })
            .expect_err("the sink panic must surface as an error");
            assert_eq!(
                err,
                StreamError::SinkPanic("sink exploded on purpose".to_string()),
                "{kind}"
            );
            assert!(err.to_string().contains("sink exploded"), "{kind}");

            // The executor survives and the next stream is untouched.
            let streamed = protect_stream(&engine, &test, executor.as_ref(), |_| {})
                .expect("well-behaved sink");
            assert_eq!(streamed, batch, "{kind} poisoned by earlier sink panic");
        }
    }
}
