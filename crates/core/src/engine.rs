use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use mood_attacks::{ApAttack, Attack, AttackSuite, PitAttack, PoiAttack};
use mood_lppm::{enumerate_compositions, Composition, GeoI, Hmc, Lppm, Trl};
use mood_metrics::spatio_temporal_distortion;
use mood_trace::{Dataset, Trace};

use crate::{
    FineGrainedStats, MoodConfig, ProtectedTrace, ProtectionOutcome, UserClass, UserProtection,
};

/// The MooD engine: Algorithm 1 of the paper, wired to an attack suite,
/// a base LPPM set and a configuration.
///
/// The engine is immutable and `Sync`; [`crate::protect_dataset`] runs it
/// from many threads at once.
///
/// # Examples
///
/// ```
/// use mood_core::{MoodEngine, UserClass};
/// use mood_synth::presets;
/// use mood_trace::TimeDelta;
///
/// let ds = presets::privamov_like().scaled(0.15).generate();
/// let (background, test) = ds.split_chronological(TimeDelta::from_days(15));
/// let engine = MoodEngine::paper_default(&background);
/// let victim = test.iter().next().unwrap();
/// let result = engine.protect_user(victim);
/// assert_eq!(result.user, victim.user());
/// assert!(result.original_records > 0);
/// ```
pub struct MoodEngine {
    suite: Arc<AttackSuite>,
    base: Vec<Arc<dyn Lppm>>,
    compositions: Vec<Composition>,
    config: MoodConfig,
}

impl MoodEngine {
    /// Creates an engine from a trained attack suite, a base LPPM set
    /// `L`, and a configuration. The composition space `C − L` is
    /// enumerated eagerly (it is tiny: 12 chains for n = 3).
    ///
    /// # Panics
    ///
    /// Panics when `base` is empty or the configuration is invalid.
    pub fn new(suite: Arc<AttackSuite>, base: Vec<Arc<dyn Lppm>>, config: MoodConfig) -> Self {
        assert!(!base.is_empty(), "MooD needs at least one LPPM");
        config.validate();
        let max_len = config.max_composition_len.min(base.len());
        let compositions = if max_len >= 2 {
            enumerate_compositions(&base, 2, max_len)
        } else {
            Vec::new()
        };
        Self {
            suite,
            base,
            compositions,
            config,
        }
    }

    /// The paper's full setup: POI/PIT/AP attacks trained on
    /// `background`, the LPPM set {Geo-I, TRL, HMC} with the paper's
    /// parameters, and [`MoodConfig::paper_default`].
    ///
    /// # Panics
    ///
    /// Panics when `background` is empty.
    pub fn paper_default(background: &Dataset) -> Self {
        let suite = AttackSuite::train(
            &[
                &PoiAttack::paper_default() as &dyn Attack,
                &PitAttack::paper_default(),
                &ApAttack::paper_default(),
            ],
            background,
        );
        let base: Vec<Arc<dyn Lppm>> = vec![
            Arc::new(GeoI::paper_default()),
            Arc::new(Trl::paper_default()),
            Arc::new(Hmc::paper_default(background)),
        ];
        Self::new(Arc::new(suite), base, MoodConfig::paper_default())
    }

    /// The trained attack suite driving the resilience checks.
    pub fn suite(&self) -> &AttackSuite {
        &self.suite
    }

    /// A shareable handle to the suite, for building sibling engines
    /// (different configs against the same adversary) without retraining.
    pub fn shared_suite(&self) -> Arc<AttackSuite> {
        Arc::clone(&self.suite)
    }

    /// The base LPPM set `L`.
    pub fn lppms(&self) -> &[Arc<dyn Lppm>] {
        &self.base
    }

    /// The enumerated composition space `C − L` (length ≥ 2 chains).
    pub fn compositions(&self) -> &[Composition] {
        &self.compositions
    }

    /// The engine configuration.
    pub fn config(&self) -> &MoodConfig {
        &self.config
    }

    /// Deterministic RNG for one (trace, variant) application: derived
    /// from the engine seed, the trace's user, its start time (so each
    /// sub-trace draws fresh noise) and the variant index.
    fn variant_rng(&self, trace: &Trace, variant_idx: usize) -> StdRng {
        let mut h = self.config.seed;
        for v in [
            trace.user().as_u64(),
            trace.start_time().as_unix() as u64,
            variant_idx as u64,
        ] {
            h ^= mix64(v);
            h = mix64(h);
        }
        StdRng::seed_from_u64(h)
    }

    /// Tries every variant in `variants`, keeping the resilient one with
    /// the lowest spatio-temporal distortion (Best LPPM Selection,
    /// §3.5). Variant indices offset by `idx_base` keep single and
    /// composition RNG streams disjoint.
    fn best_resilient<'a, I>(&self, trace: &Trace, variants: I, idx_base: usize) -> Option<ProtectedTrace>
    where
        I: IntoIterator<Item = &'a dyn Lppm>,
    {
        let mut best: Option<ProtectedTrace> = None;
        for (i, lppm) in variants.into_iter().enumerate() {
            let mut rng = self.variant_rng(trace, idx_base + i);
            let candidate = lppm.protect(trace, &mut rng);
            if !self.suite.protects(&candidate, trace.user()) {
                continue;
            }
            let distortion = spatio_temporal_distortion(trace, &candidate);
            if best.as_ref().is_none_or(|b| distortion < b.distortion_m) {
                best = Some(ProtectedTrace {
                    trace: candidate,
                    lppm: lppm.name().to_string(),
                    distortion_m: distortion,
                });
            }
        }
        best
    }

    /// Single-LPPM stage (Algorithm 1 lines 4–14): the resilient single
    /// LPPM with the lowest distortion, if any.
    pub fn search_single(&self, trace: &Trace) -> Option<ProtectedTrace> {
        self.best_resilient(trace, self.base.iter().map(|l| l as &dyn Lppm), 0)
    }

    /// Composition stage (lines 16–26): the resilient composition with
    /// the lowest distortion, if any.
    ///
    /// Note: the paper's line 26 reads `argmax M`; we interpret `M`
    /// uniformly as a distortion to minimize (the paper's own §3.5:
    /// "the lower the distortion the better"). See DESIGN.md.
    pub fn search_composition(&self, trace: &Trace) -> Option<ProtectedTrace> {
        self.best_resilient(
            trace,
            self.compositions.iter().map(|c| c as &dyn Lppm),
            self.base.len(),
        )
    }

    /// The whole-trace Multi-LPPM Composition Search: singles first,
    /// compositions only when no single works (Algorithm 1's ordering).
    /// The boolean reports whether a composition was needed.
    pub fn search_whole(&self, trace: &Trace) -> Option<(ProtectedTrace, bool)> {
        if let Some(p) = self.search_single(trace) {
            return Some((p, false));
        }
        self.search_composition(trace).map(|p| (p, true))
    }

    /// Recursive fine-grained protection (lines 27–36): whole-trace
    /// search on the sub-trace; on failure split in half by time and
    /// recurse while the sub-trace spans at least δ; below δ the records
    /// are erased.
    fn protect_recursive(
        &self,
        trace: &Trace,
        published: &mut Vec<ProtectedTrace>,
        stats: &mut FineGrainedStats,
    ) {
        stats.sub_traces_total += 1;
        if let Some((p, _)) = self.search_whole(trace) {
            stats.sub_traces_protected += 1;
            stats.records_published += trace.len();
            published.push(p);
            return;
        }
        if trace.duration() >= self.config.delta {
            // A degenerate split (all records at one instant) yields
            // nothing to recurse on; treat the sub-trace as
            // unprotectable rather than looping.
            match self.config.split_strategy.split(trace) {
                Some((l, r)) => {
                    self.protect_recursive(&l, published, stats);
                    self.protect_recursive(&r, published, stats);
                }
                None => stats.records_dropped += trace.len(),
            }
        } else {
            stats.records_dropped += trace.len();
        }
    }

    /// Protects one user's trace end to end (Algorithm 1 plus the §4.2
    /// experimental protocol) and classifies the user.
    pub fn protect_user(&self, trace: &Trace) -> UserProtection {
        let naturally_protected = self.suite.protects(trace, trace.user());

        // Whole-trace search: singles, then compositions.
        let single = self.search_single(trace);
        let whole = match single {
            Some(p) => Some((p, false)),
            None => self.search_composition(trace).map(|p| (p, true)),
        };

        if let Some((protected, via_composition)) = whole {
            let class = if naturally_protected {
                UserClass::NaturallyProtected
            } else if via_composition {
                UserClass::MultiLppm
            } else {
                UserClass::SingleLppm
            };
            return UserProtection {
                user: trace.user(),
                class,
                outcome: ProtectionOutcome::Whole(protected),
                original_records: trace.len(),
            };
        }

        // Fine-grained stage: initial windows (24 h in the paper), then
        // recursive halving with the δ floor.
        let mut published = Vec::new();
        let mut stats = FineGrainedStats::default();
        match self.config.initial_window {
            Some(window) => {
                for sub in trace.windows(window) {
                    self.protect_recursive(&sub, &mut published, &mut stats);
                }
            }
            None => self.protect_recursive(trace, &mut published, &mut stats),
        }

        let class = if naturally_protected {
            UserClass::NaturallyProtected
        } else if published.is_empty() {
            UserClass::Unprotectable
        } else {
            UserClass::FineGrained
        };
        UserProtection {
            user: trace.user(),
            class,
            outcome: ProtectionOutcome::FineGrained { published, stats },
            original_records: trace.len(),
        }
    }
}

/// SplitMix64 finalizer for deterministic RNG stream derivation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mood_trace::{TimeDelta, UserId};

    fn mini_world() -> (Dataset, Dataset) {
        let ds = mood_synth::presets::privamov_like().scaled(0.25).generate();
        ds.split_chronological(TimeDelta::from_days(15))
    }

    #[test]
    fn paper_default_wiring() {
        let (bg, _) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        assert_eq!(engine.lppms().len(), 3);
        assert_eq!(engine.compositions().len(), 12); // C - L for n = 3
        assert_eq!(engine.suite().len(), 3);
    }

    #[test]
    fn protect_user_is_deterministic() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        let a = engine.protect_user(trace);
        let b = engine.protect_user(trace);
        assert_eq!(a, b);
    }

    #[test]
    fn published_variants_resist_the_suite() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter().take(6) {
            let result = engine.protect_user(trace);
            for p in result.outcome.published() {
                assert!(
                    engine.suite().protects(&p.trace, trace.user()),
                    "published variant of {} re-identified",
                    trace.user()
                );
                assert!(p.distortion_m.is_finite() && p.distortion_m >= 0.0);
                assert!(!p.lppm.is_empty());
            }
        }
    }

    #[test]
    fn single_stage_preferred_over_composition() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter().take(6) {
            if let Some(p_single) = engine.search_single(trace) {
                let (p, via_comp) = engine.search_whole(trace).unwrap();
                assert!(!via_comp);
                assert_eq!(p.lppm, p_single.lppm);
                // single names contain no chain arrow
                assert!(!p.lppm.contains('→'));
            }
        }
    }

    #[test]
    fn selection_minimizes_distortion_among_singles() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        if let Some(best) = engine.search_single(trace) {
            // re-derive every resilient single's distortion and check min
            for (i, lppm) in engine.lppms().iter().enumerate() {
                let mut rng = engine.variant_rng(trace, i);
                let cand = lppm.protect(trace, &mut rng);
                if engine.suite().protects(&cand, trace.user()) {
                    let d = spatio_temporal_distortion(trace, &cand);
                    assert!(best.distortion_m <= d + 1e-9);
                }
            }
        }
    }

    #[test]
    fn fine_grained_accounts_every_record() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter() {
            let result = engine.protect_user(trace);
            if let ProtectionOutcome::FineGrained { stats, .. } = &result.outcome {
                assert_eq!(
                    stats.records_published + stats.records_dropped,
                    trace.len(),
                    "record accounting broken for {}",
                    trace.user()
                );
                assert!(stats.sub_traces_protected <= stats.sub_traces_total);
            }
        }
    }

    #[test]
    fn classes_are_consistent_with_outcomes() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        for trace in test.iter() {
            let r = engine.protect_user(trace);
            match (&r.class, &r.outcome) {
                (UserClass::SingleLppm | UserClass::MultiLppm, ProtectionOutcome::Whole(_)) => {}
                (UserClass::NaturallyProtected, _) => {}
                (UserClass::FineGrained, ProtectionOutcome::FineGrained { published, .. }) => {
                    assert!(!published.is_empty());
                }
                (UserClass::Unprotectable, ProtectionOutcome::FineGrained { published, .. }) => {
                    assert!(published.is_empty());
                }
                (class, outcome) => {
                    panic!("inconsistent class {class:?} for outcome {outcome:?}")
                }
            }
        }
    }

    #[test]
    fn max_composition_len_one_disables_compositions() {
        let (bg, _) = mini_world();
        let full = MoodEngine::paper_default(&bg);
        let mut config = MoodConfig::paper_default();
        config.max_composition_len = 1;
        let engine = MoodEngine::new(
            Arc::new(AttackSuite::train(
                &[&ApAttack::paper_default() as &dyn Attack],
                &bg,
            )),
            full.lppms().to_vec(),
            config,
        );
        assert!(engine.compositions().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one LPPM")]
    fn rejects_empty_lppm_set() {
        let (bg, _) = mini_world();
        let suite = Arc::new(AttackSuite::train(
            &[&ApAttack::paper_default() as &dyn Attack],
            &bg,
        ));
        MoodEngine::new(suite, vec![], MoodConfig::paper_default());
    }

    #[test]
    fn algorithm1_verbatim_mode_without_initial_window() {
        // initial_window = None runs Algorithm 1 exactly as printed:
        // recursive halving starts on the whole trace.
        let (bg, test) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        let mut config = MoodConfig::paper_default();
        config.initial_window = None;
        let engine = MoodEngine::new(
            Arc::new(AttackSuite::train(
                &[&ApAttack::paper_default() as &dyn Attack],
                &bg,
            )),
            base.lppms().to_vec(),
            config,
        );
        for trace in test.iter().take(3) {
            let r = engine.protect_user(trace);
            if let crate::ProtectionOutcome::FineGrained { stats, .. } = &r.outcome {
                assert_eq!(
                    stats.records_published + stats.records_dropped,
                    trace.len()
                );
            }
        }
    }

    #[test]
    fn split_strategies_all_account_records() {
        let (bg, test) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        for strategy in [
            crate::SplitStrategy::Halving,
            crate::SplitStrategy::LargestGap,
            crate::SplitStrategy::InterPoi,
        ] {
            let mut config = MoodConfig::paper_default();
            config.split_strategy = strategy;
            let engine = MoodEngine::new(base.shared_suite(), base.lppms().to_vec(), config);
            for trace in test.iter().take(4) {
                let r = engine.protect_user(trace);
                if let crate::ProtectionOutcome::FineGrained { stats, .. } = &r.outcome {
                    assert_eq!(
                        stats.records_published + stats.records_dropped,
                        trace.len(),
                        "{strategy}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_lppm_engine_enumerates_the_full_space() {
        // extending the base set with a 4th LPPM (the paper's §6
        // extension hook) grows |C| to Σ 4!/(4-i)! = 64
        let (bg, test) = mini_world();
        let base = MoodEngine::paper_default(&bg);
        let mut lppms = base.lppms().to_vec();
        lppms.push(Arc::new(mood_lppm::SpatialCloaking::from_background(
            &bg, 800.0,
        )));
        let engine = MoodEngine::new(base.shared_suite(), lppms, MoodConfig::paper_default());
        assert_eq!(engine.lppms().len(), 4);
        assert_eq!(engine.lppms().len() + engine.compositions().len(), 64);
        // and the bigger search space still produces resilient output
        let trace = test.iter().next().unwrap();
        let r = engine.protect_user(trace);
        for p in r.outcome.published() {
            assert!(engine.suite().protects(&p.trace, trace.user()));
        }
    }

    #[test]
    fn user_ids_preserved_in_outcomes() {
        let (bg, test) = mini_world();
        let engine = MoodEngine::paper_default(&bg);
        let trace = test.iter().next().unwrap();
        let r = engine.protect_user(trace);
        assert_eq!(r.user, trace.user());
        for p in r.outcome.published() {
            assert_eq!(p.trace.user(), trace.user());
        }
        assert_ne!(r.user, UserId::new(999_999));
    }
}
